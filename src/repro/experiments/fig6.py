"""Figure 6: baseband closed-loop transfer ``|H00(j omega)|`` vs loop speed.

For each ``omega_UG / omega_0`` ratio: the solid HTM curve (eq. 38 evaluated
with the exact coth aliasing sums) on a dense normalised grid, plus
time-marching simulation marks at a handful of frequencies — the exact
protocol of the paper's Fig. 6.  As the ratio grows, the effective bandwidth
shifts right and the passband-edge peaking worsens.

Note on ratios: the paper's scanned ratios are garbled in the available
text ("omega_UG/omega = , and 5"); the loop with the Fig. 5 characteristic
(separation 4) goes *unstable* near ``omega_UG/omega_0 ~ 0.28`` (confirmed
independently by the z-domain baseline), so the default sweep uses
{0.05, 0.1, 0.2} which spans deep-LTI to visibly-time-varying behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro._errors import ConvergenceError
from repro._validation import check_order, check_positive
from repro.core.grid import FrequencyGrid
from repro.lti.bode import bandwidth_3db, peaking_db
from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.design import design_typical_loop


@dataclass(frozen=True)
class Fig6Curve:
    """One ratio's curve: HTM line plus simulation marks."""

    ratio: float  # omega_UG / omega_0
    omega_normalized: np.ndarray  # omega / omega_UG
    h00_db: np.ndarray
    lti_db: np.ndarray  # classical A/(1+A) for contrast
    mark_omega_normalized: np.ndarray
    mark_h00_db: np.ndarray
    mark_relative_error: np.ndarray  # |sim - htm| / |htm| at the marks
    bandwidth_normalized: float  # -3 dB bandwidth / omega_UG
    peaking_db: float


@dataclass(frozen=True)
class Fig6Result:
    """All curves of the figure."""

    separation: float
    curves: list[Fig6Curve] = field(default_factory=list)

    def max_mark_error(self) -> float:
        """Worst HTM-vs-simulation relative error across all marks (claim C1)."""
        return float(max(np.max(c.mark_relative_error) for c in self.curves))


def run_fig6(
    ratios: Sequence[float] = (0.05, 0.1, 0.2),
    separation: float = 4.0,
    omega0: float = 2 * np.pi,
    points: int = 160,
    mark_points: int = 6,
    measure_cycles: int = 200,
    discard_cycles: int = 150,
) -> Fig6Result:
    """Generate the Fig. 6 curves with simulation verification marks."""
    from repro.simulator.transfer_extraction import measure_closed_loop_transfer

    check_positive("omega0", omega0)
    check_order("points", points, minimum=8)
    check_order("mark_points", mark_points, minimum=1)
    curves = []
    for ratio in ratios:
        check_positive("ratio", ratio)
        omega_ug = ratio * omega0
        pll = design_typical_loop(omega0=omega0, omega_ug=omega_ug, separation=separation)
        closed = ClosedLoopHTM(pll)
        # Dense HTM curve on omega / omega_UG in [0.03, min(4, Nyquist margin)].
        upper = min(4.0, 0.49 / ratio)
        omega_grid = FrequencyGrid.log(0.03 * omega_ug, upper * omega_ug, points)
        grid_norm = omega_grid.omega / omega_ug
        h00 = closed.frequency_response(omega_grid)
        from repro.baselines.lti_approx import ClassicalLTIAnalysis

        lti = ClassicalLTIAnalysis(pll).closed_loop_response(omega_grid.omega)
        # Simulation marks, log-spaced across the same span.
        mark_norm = np.logspace(np.log10(0.1), np.log10(min(2.5, 0.45 / ratio)), mark_points)
        mark_vals = []
        mark_err = []
        actual_norm = []
        for wn in mark_norm:
            meas = measure_closed_loop_transfer(
                pll,
                wn * omega_ug,
                measure_cycles=measure_cycles,
                discard_cycles=discard_cycles,
            )
            predicted = closed.h00(1j * meas.omega)
            mark_vals.append(abs(meas.response))
            mark_err.append(abs(meas.response - predicted) / abs(predicted))
            actual_norm.append(meas.omega / omega_ug)
        try:
            bw = bandwidth_3db(closed, omega_grid[0], omega_grid[-1]) / omega_ug
        except ConvergenceError:
            # Very fast loops stay above -3 dB all the way to the alias fold.
            bw = float("nan")
        pk = peaking_db(closed, omega_grid[0], omega_grid[-1])
        curves.append(
            Fig6Curve(
                ratio=float(ratio),
                omega_normalized=grid_norm,
                h00_db=20.0 * np.log10(np.abs(h00)),
                lti_db=20.0 * np.log10(np.abs(lti)),
                mark_omega_normalized=np.asarray(actual_norm),
                mark_h00_db=20.0 * np.log10(np.asarray(mark_vals)),
                mark_relative_error=np.asarray(mark_err),
                bandwidth_normalized=float(bw),
                peaking_db=float(pk),
            )
        )
    return Fig6Result(separation=separation, curves=curves)


def format_table(result: Fig6Result) -> str:
    """Summary table: bandwidth shift, peaking and verification error."""
    lines = [
        "Fig. 6 — baseband closed-loop transfer H00 (HTM vs time-marching)",
        f"{'wUG/w0':>8} {'BW/wUG':>8} {'peak (dB)':>10} {'max mark err':>13}",
    ]
    for c in result.curves:
        lines.append(
            f"{c.ratio:>8.3g} {c.bandwidth_normalized:>8.3f} {c.peaking_db:>10.2f} "
            f"{100 * float(np.max(c.mark_relative_error)):>12.3f}%"
        )
    return "\n".join(lines)
