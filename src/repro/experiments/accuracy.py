"""In-text evaluation claims: accuracy (C1), speed (C2), margin loss (C3).

* **C1**: "Both are within 2%" — HTM prediction vs time-marching marks.
* **C2**: "evaluating (38) is only a matter of seconds while it takes
  several minutes for the time-marching simulations" — we time both paths
  on the same operating points; the absolute numbers differ from 2003-era
  Matlab, so the claim is reported as a speedup factor.
* **C3**: "For omega_UG/omega_0 = 0.1 this phase margin is already 9% worse
  than predicted by LTI analysis" (the ratio digit is garbled in the
  available text; 0.1 is the reading consistent with our sweep).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.design import design_typical_loop
from repro.simulator.transfer_extraction import measure_closed_loop_transfer


@dataclass(frozen=True)
class AccuracyResult:
    """Per-point HTM-vs-simulation agreement (claim C1)."""

    ratios: tuple[float, ...]
    omega_normalized: tuple[float, ...]
    relative_errors: tuple[float, ...]

    @property
    def max_relative_error(self) -> float:
        """Worst disagreement across all measured points."""
        return max(self.relative_errors)

    def within_paper_claim(self, threshold: float = 0.02) -> bool:
        """True when every point agrees within the paper's 2%."""
        return self.max_relative_error <= threshold


@dataclass(frozen=True)
class SpeedupResult:
    """HTM-vs-simulation runtime comparison (claim C2)."""

    htm_seconds: float
    simulation_seconds: float
    frequency_points: int

    @property
    def speedup(self) -> float:
        """Simulation time divided by HTM time."""
        return self.simulation_seconds / max(self.htm_seconds, 1e-12)


def run_accuracy_claim(
    ratios: Sequence[float] = (0.05, 0.1, 0.2),
    omega_normalized: Sequence[float] = (0.3, 1.0, 2.0),
    omega0: float = 2 * np.pi,
    separation: float = 4.0,
    measure_cycles: int = 300,
    discard_cycles: int = 200,
) -> AccuracyResult:
    """Measure HTM-vs-simulation agreement over a grid of operating points."""
    out_ratios: list[float] = []
    out_omega: list[float] = []
    out_err: list[float] = []
    for ratio in ratios:
        pll = design_typical_loop(omega0=omega0, omega_ug=ratio * omega0, separation=separation)
        closed = ClosedLoopHTM(pll)
        for wn in omega_normalized:
            omega = wn * ratio * omega0
            if omega >= 0.49 * omega0:
                continue
            meas = measure_closed_loop_transfer(
                pll, omega, measure_cycles=measure_cycles, discard_cycles=discard_cycles
            )
            predicted = closed.h00(1j * meas.omega)
            out_ratios.append(float(ratio))
            out_omega.append(float(wn))
            out_err.append(abs(meas.response - predicted) / abs(predicted))
    return AccuracyResult(
        ratios=tuple(out_ratios),
        omega_normalized=tuple(out_omega),
        relative_errors=tuple(out_err),
    )


def run_speedup_claim(
    ratio: float = 0.1,
    frequency_points: int = 8,
    omega0: float = 2 * np.pi,
    separation: float = 4.0,
    measure_cycles: int = 300,
    discard_cycles: int = 200,
) -> SpeedupResult:
    """Time an H00 frequency sweep via HTM vs via transient simulation."""
    pll = design_typical_loop(omega0=omega0, omega_ug=ratio * omega0, separation=separation)
    omegas = np.logspace(np.log10(0.1), np.log10(2.0), frequency_points) * ratio * omega0

    start = time.perf_counter()
    closed = ClosedLoopHTM(pll)
    closed.frequency_response(omegas)
    htm_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for omega in omegas:
        measure_closed_loop_transfer(
            pll, float(omega), measure_cycles=measure_cycles, discard_cycles=discard_cycles
        )
    sim_seconds = time.perf_counter() - start
    return SpeedupResult(
        htm_seconds=htm_seconds,
        simulation_seconds=sim_seconds,
        frequency_points=frequency_points,
    )
