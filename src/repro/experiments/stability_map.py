"""Stability map over the (separation, omega_UG/omega_0) design plane.

An extension experiment: chart the maximum stable bandwidth ratio of the
sampled loop as a function of the zero/pole separation (i.e. of the LTI
phase margin), using the z-domain pole test.  This is the modern form of
Gardner's stability-limit analysis (the paper's ref. [3]) produced directly
from our baselines, and the design chart the paper's method motivates:
LTI analysis draws no boundary anywhere on this plane.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_float_array
from repro.baselines.zdomain import stability_limit_ratio
from repro.pll.design import design_typical_loop, shape_phase_margin_deg


@dataclass(frozen=True)
class StabilityMapResult:
    """The boundary curve over the design plane."""

    separations: np.ndarray
    lti_phase_margins_deg: np.ndarray
    stability_limits: np.ndarray  # max stable omega_UG / omega_0 per separation

    def as_rows(self) -> list[tuple[float, float, float]]:
        """``(separation, LTI PM, limit)`` rows."""
        return [
            (float(s), float(pm), float(lim))
            for s, pm, lim in zip(
                self.separations, self.lti_phase_margins_deg, self.stability_limits
            )
        ]


def run_stability_map(
    separations=(1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0),
    omega0: float = 2 * np.pi,
    tol: float = 1e-3,
) -> StabilityMapResult:
    """Compute the stability boundary for each separation."""
    seps = as_float_array("separations", separations)
    margins = np.array([shape_phase_margin_deg(float(s)) for s in seps])
    limits = np.empty(seps.size)
    for i, sep in enumerate(seps):

        def designer(ratio: float, sep=float(sep)):
            return design_typical_loop(
                omega0=omega0, omega_ug=ratio * omega0, separation=sep
            )

        limits[i] = stability_limit_ratio(designer, tol=tol)
    return StabilityMapResult(
        separations=seps, lti_phase_margins_deg=margins, stability_limits=limits
    )


def format_table(result: StabilityMapResult) -> str:
    """Printable design chart."""
    lines = [
        "Stability map — max stable wUG/w0 vs zero/pole separation",
        f"{'separation':>11} {'LTI PM (deg)':>13} {'max wUG/w0':>11}",
    ]
    for sep, pm, lim in result.as_rows():
        lines.append(f"{sep:>11.2f} {pm:>13.2f} {lim:>11.4f}")
    lines.append("(classical LTI analysis: stable at every point of this plane)")
    return "\n".join(lines)
