"""Stability map over the (separation, omega_UG/omega_0) design plane.

An extension experiment: chart the maximum stable bandwidth ratio of the
sampled loop as a function of the zero/pole separation (i.e. of the LTI
phase margin), using the z-domain pole test.  This is the modern form of
Gardner's stability-limit analysis (the paper's ref. [3]) produced directly
from our baselines, and the design chart the paper's method motivates:
LTI analysis draws no boundary anywhere on this plane.

The map executes as a :mod:`repro.campaign` campaign (task
``"stability_limit"``): ``run_stability_map(workers=4)`` bisects the
separations in parallel, ``store_path=`` makes the run resumable after a
crash, and a failed bisection at one separation records NaN instead of
aborting the whole chart.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro._errors import ValidationError
from repro._validation import as_float_array


@dataclass(frozen=True)
class StabilityMapResult:
    """The boundary curve over the design plane."""

    separations: np.ndarray
    lti_phase_margins_deg: np.ndarray
    stability_limits: np.ndarray  # max stable omega_UG / omega_0 per separation

    def as_rows(self) -> list[tuple[float, float, float]]:
        """``(separation, LTI PM, limit)`` rows."""
        return [
            (float(s), float(pm), float(lim))
            for s, pm, lim in zip(
                self.separations, self.lti_phase_margins_deg, self.stability_limits
            )
        ]


def stability_map_spec(
    separations=(1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0),
    omega0: float = 2 * np.pi,
    tol: float = 1e-3,
):
    """The stability map as a campaign spec (for the CLI / benchmarks)."""
    from repro.campaign import CampaignSpec, ListSpace

    seps = as_float_array("separations", separations)
    return CampaignSpec.create(
        name="stability-map",
        space=ListSpace.of([{"separation": float(s)} for s in seps]),
        task="stability_limit",
        defaults={"omega0": float(omega0), "tol": float(tol)},
    )


def run_stability_map(
    separations=(1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0),
    omega0: float = 2 * np.pi,
    tol: float = 1e-3,
    *,
    workers: int = 1,
    store_path: str | Path | None = None,
    **campaign_kwargs: Any,
) -> StabilityMapResult:
    """Compute the stability boundary for each separation.

    Runs through the campaign engine; ``workers`` / ``store_path`` and any
    :class:`repro.campaign.ExecutionPolicy` field are forwarded.  A
    separation whose bisection fails (no bracket) records NaN.
    """
    from repro.campaign import run_campaign

    seps = as_float_array("separations", separations)
    spec = stability_map_spec(separations=seps, omega0=omega0, tol=tol)
    result = run_campaign(
        spec, store_path, workers=workers, **campaign_kwargs
    )
    return stability_map_from_records(result.records, separations=seps)


def stability_map_from_records(
    records, separations=None
) -> StabilityMapResult:
    """Assemble a :class:`StabilityMapResult` from campaign point records."""
    records = list(records)
    if not records:
        raise ValidationError("no stability-map point records")
    seps = (
        as_float_array("separations", separations)
        if separations is not None
        else np.array([float(r["params"]["separation"]) for r in records])
    )
    by_sep = {float(r["params"]["separation"]): r for r in records}
    margins = np.full(seps.size, np.nan)
    limits = np.full(seps.size, np.nan)
    for i, sep in enumerate(seps):
        record = by_sep.get(float(sep))
        metrics = (record or {}).get("metrics") or {}
        margins[i] = metrics.get("lti_phase_margin_deg", np.nan)
        limits[i] = metrics.get("stability_limit", np.nan)
    return StabilityMapResult(
        separations=seps, lti_phase_margins_deg=margins, stability_limits=limits
    )


def format_table(result: StabilityMapResult) -> str:
    """Printable design chart."""
    lines = [
        "Stability map — max stable wUG/w0 vs zero/pole separation",
        f"{'separation':>11} {'LTI PM (deg)':>13} {'max wUG/w0':>11}",
    ]
    for sep, pm, lim in result.as_rows():
        lines.append(f"{sep:>11.2f} {pm:>13.2f} {lim:>11.4f}")
    lines.append("(classical LTI analysis: stable at every point of this plane)")
    return "\n".join(lines)
