"""Figure 5: the typical open-loop gain characteristic ``A(j omega)``.

Three poles (two at DC) and one zero, frequency axis normalised to the
unity-gain frequency ``omega_UG`` — magnitude falls at -40 dB/dec, flattens
to -20 dB/dec between the zero and the high-frequency pole (where the phase
margin peaks), then returns to -40 dB/dec.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_order, check_positive
from repro.lti.bode import gain_crossover, phase_margin
from repro.pll.design import typical_open_loop_shape


@dataclass(frozen=True)
class Fig5Result:
    """Sampled Bode characteristic of the normalised loop gain."""

    omega_normalized: np.ndarray  # omega / omega_UG
    magnitude_db: np.ndarray
    phase_deg: np.ndarray
    separation: float
    unity_gain_check: float  # measured w_UG / requested w_UG (should be 1)
    phase_margin_deg: float

    def as_rows(self) -> list[tuple[float, float, float]]:
        """``(omega/omega_UG, |A| dB, arg A deg)`` rows for tabulation."""
        return [
            (float(w), float(m), float(p))
            for w, m, p in zip(self.omega_normalized, self.magnitude_db, self.phase_deg)
        ]


def run_fig5(
    separation: float = 4.0,
    decades_below: float = 2.0,
    decades_above: float = 2.0,
    points: int = 200,
) -> Fig5Result:
    """Generate the Fig. 5 characteristic on a normalised log grid.

    ``omega_UG = 1`` without loss of generality (the shape is scale-free).
    """
    check_positive("separation", separation)
    check_order("points", points, minimum=8)
    a = typical_open_loop_shape(omega_ug=1.0, separation=separation)
    grid = np.logspace(-decades_below, decades_above, points)
    response = a.frequency_response(grid)
    magnitude_db = 20.0 * np.log10(np.abs(response))
    phase_deg = np.degrees(np.unwrap(np.angle(response)))
    w_ug = gain_crossover(a, grid[0], grid[-1])
    pm = phase_margin(a, grid[0], grid[-1])
    return Fig5Result(
        omega_normalized=grid,
        magnitude_db=magnitude_db,
        phase_deg=phase_deg,
        separation=separation,
        unity_gain_check=w_ug,
        phase_margin_deg=pm,
    )


def format_table(result: Fig5Result, stride: int = 20) -> str:
    """Printable table of the characteristic (every ``stride``-th point)."""
    lines = [
        f"Fig. 5 — open-loop gain A(j w), separation={result.separation:g}, "
        f"PM={result.phase_margin_deg:.2f} deg, wUG check={result.unity_gain_check:.6f}",
        f"{'w/wUG':>10} {'|A| (dB)':>10} {'arg A (deg)':>12}",
    ]
    rows = result.as_rows()
    for row in rows[::stride] + [rows[-1]]:
        lines.append(f"{row[0]:>10.4g} {row[1]:>10.2f} {row[2]:>12.2f}")
    return "\n".join(lines)
