"""Closed-loop band-conversion map — the paper's Fig. 2 picture, quantified.

For the closed loop the rank-one structure gives band transfers
``H_{n,0}(j w) = V_n(j w) / (1 + lambda(j w))``: reference-band content
re-emerges around *every* VCO harmonic.  This experiment tabulates the peak
conversion gain per output band versus loop speed — the frequency-conversion
behaviour that distinguishes the LPTV description from any LTI model (whose
map would be a single diagonal entry).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_order
from repro.core.grid import FrequencyGrid
from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.design import design_typical_loop


@dataclass(frozen=True)
class BandMapResult:
    """Peak |H_{n,0}| per output band and ratio."""

    ratios: np.ndarray
    bands: np.ndarray  # output band indices n
    peak_gains: np.ndarray  # shape (len(ratios), len(bands))

    def row(self, ratio: float) -> dict[int, float]:
        """Mapping ``n -> peak gain`` for the given (exact) ratio."""
        idx = int(np.argmin(np.abs(self.ratios - ratio)))
        return {int(n): float(g) for n, g in zip(self.bands, self.peak_gains[idx])}


def run_band_map(
    ratios=(0.05, 0.1, 0.2),
    bands: int = 3,
    omega0: float = 2 * np.pi,
    points: int = 120,
    backend: str | None = None,
) -> BandMapResult:
    """Sweep |H_{n,0}(j w)| over the baseband and record per-band peaks.

    ``backend`` is forwarded to :class:`ClosedLoopHTM` for any structured
    grid evaluation underneath.
    """
    check_order("bands", bands, minimum=1)
    ratios_arr = np.asarray(ratios, dtype=float)
    band_idx = np.arange(-bands, bands + 1)
    peaks = np.zeros((ratios_arr.size, band_idx.size))
    grid = FrequencyGrid.linear(0.01 * omega0, 0.49 * omega0, points)
    for i, ratio in enumerate(ratios_arr):
        pll = design_typical_loop(omega0=omega0, omega_ug=float(ratio) * omega0)
        closed = ClosedLoopHTM(pll, backend=backend)
        lam = closed.effective_gain_response(grid)
        # One batched column evaluation covers every output band at once.
        cols = closed.vtilde_grid(grid, bands)
        peaks[i] = np.max(np.abs(cols / (1.0 + lam)[:, None]), axis=0)
    return BandMapResult(ratios=ratios_arr, bands=band_idx, peak_gains=peaks)


def format_table(result: BandMapResult) -> str:
    """Printable map: rows = ratios, columns = output bands."""
    header = "  ".join(f"n={int(n):+d}" for n in result.bands)
    lines = [
        "Band-conversion map — peak |H_{n,0}| over the baseband",
        f"{'wUG/w0':>8}  {header}",
    ]
    for ratio, row in zip(result.ratios, result.peak_gains):
        cells = "  ".join(f"{g:6.3f}" for g in row)
        lines.append(f"{ratio:>8.3g}  {cells}")
    lines.append("(an LTI model has a single non-zero column: n = 0)")
    return "\n".join(lines)
