"""Finite Fourier series of T-periodic signals.

A :class:`FourierSeries` stores the complex coefficients ``c_k`` for
``k = -K .. K`` of ``p(t) = sum_k c_k exp(j k w0 t)``.  It supports exact
algebra (addition, multiplication = coefficient convolution, derivative),
evaluation, and the Toeplitz matrix ``P_{n-m}`` that is the HTM of the
memoryless multiplication operator ``y(t) = p(t) u(t)`` (paper eq. 13).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro._errors import ValidationError
from repro._validation import check_order, check_positive


class FourierSeries:
    """A truncated Fourier series on the fundamental ``omega0``.

    Parameters
    ----------
    coefficients:
        Complex coefficients ordered ``c_{-K} .. c_0 .. c_{K}`` (odd length).
    omega0:
        Fundamental angular frequency in rad/s.
    """

    __slots__ = ("_coeffs", "_omega0")

    def __init__(self, coefficients: Sequence[complex] | np.ndarray, omega0: float):
        coeffs = np.atleast_1d(np.asarray(coefficients, dtype=complex))
        if coeffs.ndim != 1 or coeffs.size % 2 == 0:
            raise ValidationError(
                f"coefficients must be a 1-D odd-length array (-K..K), got shape {coeffs.shape}"
            )
        if not np.all(np.isfinite(coeffs)):
            raise ValidationError("coefficients must be finite")
        self._coeffs = coeffs.copy()
        self._omega0 = check_positive("omega0", omega0)

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_function(
        cls, func: Callable[[np.ndarray], np.ndarray], omega0: float, order: int, samples: int = 0
    ) -> "FourierSeries":
        """Numerically project a T-periodic function onto ``-order..order``.

        Uses a uniform-grid FFT projection, which is exact for band-limited
        functions sampled above Nyquist.  ``samples`` defaults to
        ``8 * (2*order + 1)``.
        """
        omega0 = check_positive("omega0", omega0)
        order = check_order("order", order, minimum=0)
        n = samples or 8 * (2 * order + 1)
        if n < 2 * order + 1:
            raise ValidationError(f"samples must be >= {2 * order + 1} for order {order}")
        period = 2 * np.pi / omega0
        t = np.arange(n) * (period / n)
        values = np.asarray(func(t), dtype=complex)
        if values.shape != t.shape:
            raise ValidationError("func must return one value per sample time")
        spectrum = np.fft.fft(values) / n
        coeffs = np.zeros(2 * order + 1, dtype=complex)
        for k in range(-order, order + 1):
            coeffs[k + order] = spectrum[k % n]
        return cls(coeffs, omega0)

    @classmethod
    def from_samples(
        cls, samples: Sequence[complex] | np.ndarray, omega0: float, order: int
    ) -> "FourierSeries":
        """Project uniform samples of one period onto harmonics ``-order..order``.

        The samples are taken at ``t_k = k T / N``; exact for signals
        band-limited within the retained harmonics when ``N >= 2*order + 1``.
        """
        omega0 = check_positive("omega0", omega0)
        order = check_order("order", order, minimum=0)
        values = np.atleast_1d(np.asarray(samples, dtype=complex))
        if values.ndim != 1 or values.size < 2 * order + 1:
            raise ValidationError(
                f"need at least {2 * order + 1} samples for order {order}, got {values.size}"
            )
        spectrum = np.fft.fft(values) / values.size
        coeffs = np.zeros(2 * order + 1, dtype=complex)
        for k in range(-order, order + 1):
            coeffs[k + order] = spectrum[k % values.size]
        return cls(coeffs, omega0)

    @classmethod
    def constant(cls, value: complex, omega0: float) -> "FourierSeries":
        """The constant function ``value`` (only the DC coefficient set)."""
        return cls([value], omega0)

    # -- accessors -----------------------------------------------------------

    @property
    def omega0(self) -> float:
        """Fundamental angular frequency (rad/s)."""
        return self._omega0

    @property
    def period(self) -> float:
        """Fundamental period ``T = 2 pi / omega0`` in seconds."""
        return 2 * np.pi / self._omega0

    @property
    def order(self) -> int:
        """Highest retained harmonic index K."""
        return (self._coeffs.size - 1) // 2

    @property
    def coefficients(self) -> np.ndarray:
        """Copy of the coefficient vector ``c_{-K} .. c_{K}``."""
        return self._coeffs.copy()

    def coefficient(self, k: int) -> complex:
        """Coefficient ``c_k``; zero outside the stored truncation."""
        if abs(k) > self.order:
            return 0.0 + 0.0j
        return complex(self._coeffs[k + self.order])

    def is_real_signal(self, tol: float = 1e-12) -> bool:
        """True when the time-domain signal is real: ``c_{-k} = conj(c_k)``."""
        flipped = np.conj(self._coeffs[::-1])
        scale = max(np.max(np.abs(self._coeffs)), 1.0)
        return bool(np.allclose(self._coeffs, flipped, rtol=0, atol=tol * scale))

    def mean(self) -> complex:
        """DC value ``c_0``."""
        return self.coefficient(0)

    def power(self) -> float:
        """Mean-square value over one period (Parseval)."""
        return float(np.sum(np.abs(self._coeffs) ** 2))

    # -- evaluation -----------------------------------------------------------

    def __call__(self, t: float | np.ndarray) -> complex | np.ndarray:
        """Evaluate the series at time(s) ``t``."""
        t_arr = np.asarray(t, dtype=float)
        k = np.arange(-self.order, self.order + 1)
        phases = np.exp(1j * self._omega0 * np.multiply.outer(t_arr, k))
        values = phases @ self._coeffs
        if np.isscalar(t) or t_arr.ndim == 0:
            return complex(values)
        return values

    def sample(self, n: int) -> np.ndarray:
        """Evaluate on ``n`` uniform samples over one period."""
        n = check_order("n", n, minimum=1)
        t = np.arange(n) * (self.period / n)
        return np.asarray(self(t), dtype=complex)

    # -- algebra ---------------------------------------------------------------

    def _check_compatible(self, other: "FourierSeries") -> None:
        if abs(self._omega0 - other._omega0) > 1e-12 * self._omega0:
            raise ValidationError(
                f"fundamental mismatch: {self._omega0} vs {other._omega0}"
            )

    def __add__(self, other) -> "FourierSeries":
        if isinstance(other, (int, float, complex)):
            coeffs = self._coeffs.copy()
            coeffs[self.order] += other
            return FourierSeries(coeffs, self._omega0)
        self._check_compatible(other)
        order = max(self.order, other.order)
        coeffs = np.zeros(2 * order + 1, dtype=complex)
        coeffs[order - self.order : order + self.order + 1] += self._coeffs
        coeffs[order - other.order : order + other.order + 1] += other._coeffs
        return FourierSeries(coeffs, self._omega0)

    __radd__ = __add__

    def __neg__(self) -> "FourierSeries":
        return FourierSeries(-self._coeffs, self._omega0)

    def __sub__(self, other) -> "FourierSeries":
        return self + (-other if isinstance(other, FourierSeries) else -complex(other))

    def __mul__(self, other) -> "FourierSeries":
        if isinstance(other, (int, float, complex)):
            return FourierSeries(self._coeffs * other, self._omega0)
        self._check_compatible(other)
        coeffs = np.convolve(self._coeffs, other._coeffs)
        return FourierSeries(coeffs, self._omega0)

    __rmul__ = __mul__

    def conjugate(self) -> "FourierSeries":
        """Series of the complex-conjugate signal."""
        return FourierSeries(np.conj(self._coeffs[::-1]), self._omega0)

    def derivative(self) -> "FourierSeries":
        """Series of ``dp/dt``: multiplies ``c_k`` by ``j k omega0``."""
        k = np.arange(-self.order, self.order + 1)
        return FourierSeries(self._coeffs * 1j * k * self._omega0, self._omega0)

    def delayed(self, tau: float) -> "FourierSeries":
        """Series of ``p(t - tau)``: multiplies ``c_k`` by ``exp(-j k w0 tau)``."""
        k = np.arange(-self.order, self.order + 1)
        return FourierSeries(self._coeffs * np.exp(-1j * k * self._omega0 * tau), self._omega0)

    def truncated(self, order: int) -> "FourierSeries":
        """Keep only harmonics ``-order..order`` (pads with zeros if larger)."""
        order = check_order("order", order, minimum=0)
        coeffs = np.zeros(2 * order + 1, dtype=complex)
        span = min(order, self.order)
        coeffs[order - span : order + span + 1] = self._coeffs[
            self.order - span : self.order + span + 1
        ]
        return FourierSeries(coeffs, self._omega0)

    # -- HTM bridge ---------------------------------------------------------------

    def toeplitz(self, size: int) -> np.ndarray:
        """Dense Toeplitz matrix ``M[n, m] = c_{n-m}`` of given odd ``size``.

        This is the HTM of multiplication by this signal (paper eq. 13),
        truncated to harmonics ``-(size-1)/2 .. (size-1)/2``.
        """
        if size % 2 == 0 or size < 1:
            raise ValidationError(f"toeplitz size must be odd and positive, got {size}")
        # Gather pass: pad the coefficients to differences -(size-1)..(size-1),
        # then index M[i, j] = c_{i-j} in one vectorized take.
        padded = np.zeros(2 * size - 1, dtype=complex)
        span = min(self.order, size - 1)
        padded[size - 1 - span : size + span] = self._coeffs[
            self.order - span : self.order + span + 1
        ]
        idx = np.arange(size)
        return padded[idx[:, None] - idx[None, :] + size - 1]

    def __repr__(self) -> str:
        return f"FourierSeries(order={self.order}, omega0={self._omega0:.6g})"
