"""Baseband-equivalent signal vectors (paper eqs. 7–9).

A signal ``u(t) = sum_m u_m(t) exp(j m w0 t)`` with band-limited envelopes
``u_m`` is represented by the vector of envelope spectra
``U_B(jw) = [U_{-K}(jw) .. U_{K}(jw)]``.  Applying an HTM evaluated at
``s = jw`` to this vector gives the output envelope vector (eq. 9); this is
the semantic ground truth the HTM tests validate against time-domain LPTV
filtering.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._errors import ValidationError
from repro._validation import check_order, check_positive


class BasebandVector:
    """Envelope spectra of a multi-band signal around harmonics of ``omega0``.

    Parameters
    ----------
    omega:
        Baseband frequency grid (rad/s); must lie within
        ``(-omega0/2, omega0/2)`` so the bands do not overlap.
    envelopes:
        Array of shape ``(2K+1, len(omega))``; row ``m + K`` is the spectrum
        of the envelope riding on carrier ``m * omega0``.
    omega0:
        Carrier spacing in rad/s.
    """

    __slots__ = ("omega", "envelopes", "omega0")

    def __init__(self, omega: np.ndarray, envelopes: np.ndarray, omega0: float):
        self.omega0 = check_positive("omega0", omega0)
        omega = np.asarray(omega, dtype=float)
        envelopes = np.asarray(envelopes, dtype=complex)
        if omega.ndim != 1:
            raise ValidationError("omega must be 1-D")
        if np.any(np.abs(omega) >= omega0 / 2):
            raise ValidationError("baseband grid must lie strictly inside (-omega0/2, omega0/2)")
        if envelopes.ndim != 2 or envelopes.shape[1] != omega.size:
            raise ValidationError(
                f"envelopes must have shape (2K+1, {omega.size}), got {envelopes.shape}"
            )
        if envelopes.shape[0] % 2 == 0:
            raise ValidationError("envelope count must be odd (bands -K..K)")
        self.omega = omega.copy()
        self.envelopes = envelopes.copy()

    @property
    def order(self) -> int:
        """Band truncation K."""
        return (self.envelopes.shape[0] - 1) // 2

    def band(self, m: int) -> np.ndarray:
        """Envelope spectrum of the band around ``m * omega0``."""
        if abs(m) > self.order:
            raise ValidationError(f"band index {m} outside truncation ±{self.order}")
        return self.envelopes[m + self.order].copy()

    def apply_matrix(self, matrices: np.ndarray) -> "BasebandVector":
        """Apply one ``(2K+1, 2K+1)`` matrix per frequency point (eq. 9).

        ``matrices`` has shape ``(len(omega), 2K+1, 2K+1)`` — typically an
        HTM evaluated on ``j * omega``.
        """
        matrices = np.asarray(matrices, dtype=complex)
        size = self.envelopes.shape[0]
        if matrices.shape != (self.omega.size, size, size):
            raise ValidationError(
                f"matrices must have shape ({self.omega.size}, {size}, {size}), "
                f"got {matrices.shape}"
            )
        out = np.einsum("fnm,mf->nf", matrices, self.envelopes)
        return BasebandVector(self.omega, out, self.omega0)

    def total_power(self) -> float:
        """Sum of squared envelope magnitudes over all bands and frequencies."""
        return float(np.sum(np.abs(self.envelopes) ** 2))


def band_decompose(
    signal: Sequence[float] | np.ndarray,
    dt: float,
    omega0: float,
    order: int,
) -> BasebandVector:
    """Split a uniformly-sampled signal into band-limited envelope spectra.

    The FFT of the signal is sliced into windows of width ``omega0`` centred
    on each harmonic ``m * omega0`` for ``|m| <= order``; each slice becomes
    the envelope spectrum of that band, shifted down to baseband.  Content
    beyond ``(order + 1/2) * omega0`` is discarded, so reassembly is exact
    only for signals band-limited to the retained harmonics.
    """
    values = np.asarray(signal, dtype=complex)
    if values.ndim != 1 or values.size < 2:
        raise ValidationError("signal must be a 1-D array with at least 2 samples")
    dt = check_positive("dt", dt)
    omega0 = check_positive("omega0", omega0)
    order = check_order("order", order, minimum=0)
    n = values.size
    freqs = 2 * np.pi * np.fft.fftfreq(n, d=dt)
    spectrum = np.fft.fft(values)
    nyquist = np.pi / dt
    if (order + 0.5) * omega0 > nyquist:
        raise ValidationError(
            f"sampling too coarse: need Nyquist >= {(order + 0.5) * omega0:.3g}, have {nyquist:.3g}"
        )
    half = omega0 / 2
    # Build a common baseband grid from the band around DC.
    base_mask = np.abs(freqs) < half
    base_order = np.argsort(freqs[base_mask])
    omega_grid = freqs[base_mask][base_order]
    envelopes = np.zeros((2 * order + 1, omega_grid.size), dtype=complex)
    for m in range(-order, order + 1):
        shifted = freqs - m * omega0
        mask = np.abs(shifted) < half
        # Guard against off-by-one bin counts at band edges.
        vals = spectrum[mask]
        grid = shifted[mask]
        sorter = np.argsort(grid)
        vals = vals[sorter]
        grid = grid[sorter]
        if grid.size == omega_grid.size:
            envelopes[m + order] = vals
        else:
            envelopes[m + order] = np.interp(omega_grid, grid, vals.real) + 1j * np.interp(
                omega_grid, grid, vals.imag
            )
    return BasebandVector(omega_grid, envelopes, omega0)


def band_reassemble(vector: BasebandVector, dt: float, n: int) -> np.ndarray:
    """Inverse of :func:`band_decompose`: rebuild ``n`` time samples.

    Each envelope spectrum is placed back around its carrier in a length-``n``
    FFT buffer and inverse-transformed.
    """
    dt = check_positive("dt", dt)
    n = check_order("n", n, minimum=2)
    freqs = 2 * np.pi * np.fft.fftfreq(n, d=dt)
    spectrum = np.zeros(n, dtype=complex)
    half = vector.omega0 / 2
    for m in range(-vector.order, vector.order + 1):
        shifted = freqs - m * vector.omega0
        mask = np.abs(shifted) < half
        grid = shifted[mask]
        env = vector.band(m)
        spectrum[mask] += np.interp(grid, vector.omega, env.real) + 1j * np.interp(
            grid, vector.omega, env.imag
        )
    return np.fft.ifft(spectrum)
