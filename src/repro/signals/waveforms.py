"""Analytic Fourier coefficients of standard T-periodic waveforms.

Each helper returns a :class:`~repro.signals.fourier.FourierSeries` whose
coefficients are the closed-form values, so the numerical projection path in
``FourierSeries.from_function`` can be cross-validated against them in the
test suite.

Conventions: all waveforms have period ``T = 2 pi / omega0`` and are defined
on ``t in [0, T)`` as stated per function.
"""

from __future__ import annotations

import numpy as np

from repro._errors import ValidationError
from repro._validation import check_fraction, check_order, check_positive
from repro.signals.fourier import FourierSeries


def sine_coefficients(omega0: float, amplitude: float = 1.0, phase: float = 0.0) -> FourierSeries:
    """``amplitude * sin(omega0 t + phase)`` — only the ``k = ±1`` lines."""
    check_positive("omega0", omega0)
    c1 = amplitude * np.exp(1j * phase) / 2j
    return FourierSeries([np.conj(c1), 0.0, c1], omega0)


def square_coefficients(omega0: float, order: int, amplitude: float = 1.0) -> FourierSeries:
    """Odd square wave: ``+A`` on the first half-period, ``-A`` on the second.

    ``c_k = 2A / (j pi k)`` for odd ``k``, zero otherwise.
    """
    check_positive("omega0", omega0)
    order = check_order("order", order, minimum=1)
    coeffs = np.zeros(2 * order + 1, dtype=complex)
    for k in range(-order, order + 1):
        if k != 0 and k % 2 != 0:
            coeffs[k + order] = 2 * amplitude / (1j * np.pi * k)
    return FourierSeries(coeffs, omega0)


def sawtooth_coefficients(omega0: float, order: int, amplitude: float = 1.0) -> FourierSeries:
    """Sawtooth rising from ``-A`` to ``+A`` over each period, mean zero.

    ``x(t) = A (2 t / T - 1)`` on ``[0, T)``; ``c_k = j A / (pi k)`` for
    ``k != 0``.
    """
    check_positive("omega0", omega0)
    order = check_order("order", order, minimum=1)
    coeffs = np.zeros(2 * order + 1, dtype=complex)
    for k in range(-order, order + 1):
        if k != 0:
            coeffs[k + order] = 1j * amplitude / (np.pi * k)
    return FourierSeries(coeffs, omega0)


def triangle_coefficients(omega0: float, order: int, amplitude: float = 1.0) -> FourierSeries:
    """Even triangle wave peaking at ``+A`` at ``t = 0``, ``-A`` at ``t = T/2``.

    ``c_k = 4A / (pi k)^2`` for odd ``k``, zero otherwise.
    """
    check_positive("omega0", omega0)
    order = check_order("order", order, minimum=1)
    coeffs = np.zeros(2 * order + 1, dtype=complex)
    for k in range(-order, order + 1):
        if k % 2 != 0:
            coeffs[k + order] = 4 * amplitude / (np.pi * k) ** 2
    return FourierSeries(coeffs, omega0)


def pulse_train_coefficients(
    omega0: float, order: int, duty: float, amplitude: float = 1.0
) -> FourierSeries:
    """Rectangular pulse train: ``A`` on ``[0, duty*T)``, ``0`` elsewhere.

    ``c_k = A * duty * sinc(k * duty) * exp(-j pi k duty)`` with the
    normalised sinc.  As ``duty -> 0`` with ``A = 1/(duty*T)`` this tends to
    the Dirac comb of :func:`dirac_comb_coefficients` — the limit underlying
    the paper's impulse-train PFD model (Fig. 4).
    """
    check_positive("omega0", omega0)
    order = check_order("order", order, minimum=1)
    duty = check_fraction("duty", duty)
    coeffs = np.zeros(2 * order + 1, dtype=complex)
    for k in range(-order, order + 1):
        coeffs[k + order] = (
            amplitude * duty * np.sinc(k * duty) * np.exp(-1j * np.pi * k * duty)
        )
    return FourierSeries(coeffs, omega0)


def dirac_comb_coefficients(omega0: float, order: int) -> FourierSeries:
    """Dirac impulse train ``sum_m delta(t - m T)``: every ``c_k = 1/T = w0/2pi``.

    This is the multiplication kernel of the sampling PFD (paper eq. 17); its
    Toeplitz HTM is the all-ones rank-one matrix scaled by ``w0/2pi``
    (eq. 19).
    """
    check_positive("omega0", omega0)
    order = check_order("order", order, minimum=0)
    value = omega0 / (2 * np.pi)
    return FourierSeries(np.full(2 * order + 1, value, dtype=complex), omega0)


def pulse_train_samples(t: np.ndarray, period: float, duty: float, amplitude: float = 1.0) -> np.ndarray:
    """Time-domain samples of the rectangular pulse train (for cross-checks)."""
    if period <= 0:
        raise ValidationError(f"period must be positive, got {period}")
    duty = check_fraction("duty", duty)
    frac = np.mod(np.asarray(t, dtype=float), period) / period
    return np.where(frac < duty, amplitude, 0.0)
