"""Impulse sensitivity function (ISF) models for controlled oscillators.

Following Demir, Mehrotra & Roychowdhury (the paper's ref. [1]), a small
perturbation ``du(t)`` on the oscillator control input shifts the oscillator
phase (expressed in *seconds*) according to

    d theta / dt = v(t + theta) * du(t)  ~  v(t) * du(t)        (paper eq. 22-24)

where ``v(t)`` is the T-periodic ISF associated with that input.  The HTM of
the resulting LPTV operator is built in :mod:`repro.blocks.vco`; this module
only models ``v(t)`` itself.

For the common "time-invariant VCO" abstraction with voltage-to-frequency
gain ``K_v`` (Hz per input unit) running at ``f0`` Hz, the phase-in-seconds
convention gives a *constant* ISF ``v(t) = v0 = K_v / f0``: the instantaneous
period scales as ``1 + theta'``, so ``theta' = (K_v / f0) du``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._errors import ValidationError
from repro._validation import check_positive
from repro.signals.fourier import FourierSeries


class ImpulseSensitivity:
    """The periodic ISF ``v(t)`` of a controlled oscillator input.

    Wraps a :class:`FourierSeries` and exposes the pieces the VCO HTM needs:
    the coefficient vector ``v_k`` and the DC sensitivity ``v0``.
    """

    __slots__ = ("_series",)

    def __init__(self, series: FourierSeries):
        if not isinstance(series, FourierSeries):
            raise ValidationError("ImpulseSensitivity requires a FourierSeries")
        self._series = series

    # -- constructors ------------------------------------------------------

    @classmethod
    def constant(cls, v0: float, omega0: float) -> "ImpulseSensitivity":
        """Time-invariant sensitivity ``v(t) = v0`` — the paper's sec. 5 case."""
        check_positive("omega0", omega0)
        return cls(FourierSeries([complex(v0)], omega0))

    @classmethod
    def from_vco_gain(cls, kvco_hz_per_unit: float, f0_hz: float, omega0: float) -> "ImpulseSensitivity":
        """Constant ISF from a conventional VCO gain ``K_v`` (Hz/unit) at ``f0``.

        ``v0 = K_v / f0`` converts frequency sensitivity into the
        phase-in-seconds convention of the paper (see module docstring).
        """
        check_positive("f0_hz", f0_hz)
        return cls.constant(kvco_hz_per_unit / f0_hz, omega0)

    @classmethod
    def from_coefficients(
        cls, coefficients: Sequence[complex] | np.ndarray, omega0: float
    ) -> "ImpulseSensitivity":
        """LPTV sensitivity from explicit Fourier coefficients ``v_{-K}..v_K``."""
        return cls(FourierSeries(coefficients, omega0))

    @classmethod
    def sinusoidal(
        cls, v0: float, ripple: float, omega0: float, phase: float = 0.0
    ) -> "ImpulseSensitivity":
        """``v(t) = v0 (1 + ripple * cos(omega0 t + phase))``.

        A one-harmonic LPTV model: the simplest oscillator whose sensitivity
        depends on where in its cycle the perturbation lands — the case the
        paper's general eq. (25) covers beyond its time-invariant experiments.
        """
        c1 = v0 * ripple * np.exp(1j * phase) / 2
        return cls(FourierSeries([np.conj(c1), complex(v0), c1], omega0))

    # -- accessors -----------------------------------------------------------

    @property
    def series(self) -> FourierSeries:
        """The underlying Fourier series of ``v(t)``."""
        return self._series

    @property
    def omega0(self) -> float:
        """Fundamental angular frequency (rad/s)."""
        return self._series.omega0

    @property
    def order(self) -> int:
        """Highest retained ISF harmonic."""
        return self._series.order

    @property
    def v0(self) -> complex:
        """DC (time-average) sensitivity — the LTI-approximation VCO gain."""
        return self._series.coefficient(0)

    def coefficient(self, k: int) -> complex:
        """Harmonic coefficient ``v_k``."""
        return self._series.coefficient(k)

    def is_time_invariant(self, tol: float = 1e-12) -> bool:
        """True when all harmonics other than ``v_0`` vanish."""
        coeffs = self._series.coefficients
        center = self._series.order
        others = np.delete(coeffs, center)
        scale = max(abs(coeffs[center]), 1.0)
        return bool(np.all(np.abs(others) <= tol * scale))

    def __call__(self, t: float | np.ndarray) -> complex | np.ndarray:
        """Evaluate ``v(t)``."""
        return self._series(t)

    def __repr__(self) -> str:
        kind = "time-invariant" if self.is_time_invariant() else f"order-{self.order} LPTV"
        return f"ImpulseSensitivity({kind}, v0={self.v0:.6g})"
