"""Periodic-signal substrate: Fourier series, waveforms, ISF models, spectra.

The HTM formalism manipulates T-periodic kernels through their Fourier
coefficients; this subpackage provides those coefficients for the waveforms
appearing in the paper — the reference/VCO carriers ``x_ref``/``x_osc``
(eqs. 4–5), the PFD's Dirac impulse train (eq. 17) and the oscillator's
impulse sensitivity function ``v(t)`` (eq. 22, after Demir et al.).
"""

from repro.signals.fourier import FourierSeries
from repro.signals.waveforms import (
    dirac_comb_coefficients,
    pulse_train_coefficients,
    sawtooth_coefficients,
    sine_coefficients,
    square_coefficients,
    triangle_coefficients,
)
from repro.signals.isf import ImpulseSensitivity
from repro.signals.spectra import BasebandVector, band_decompose, band_reassemble

__all__ = [
    "FourierSeries",
    "dirac_comb_coefficients",
    "pulse_train_coefficients",
    "sawtooth_coefficients",
    "sine_coefficients",
    "square_coefficients",
    "triangle_coefficients",
    "ImpulseSensitivity",
    "BasebandVector",
    "band_decompose",
    "band_reassemble",
]
