"""Integration: VCO-referred disturbance transfer vs the HTM sensitivity.

Inject a sinusoidal per-cycle VCO frequency disturbance and compare the
measured output-phase component with the prediction through the sensitivity
``S00 = 1 - H00`` (eq. 32): the highpass shaping of VCO-referred noise.
The per-cycle hold makes the injected waveform a staircase, bounding the
agreement at the few-percent level for moderate modulation frequencies and
tightening as the modulation slows.
"""

import numpy as np
import pytest

from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.design import design_typical_loop
from repro.simulator.engine import BehavioralPLLSimulator, SimulationConfig

W0 = 2 * np.pi
MEASURE, DISCARD, OVERSAMPLE = 256, 128, 16


def measured_sensitivity(pll, k_bin, amplitude=1e-4):
    """Measured S00 at the bin-aligned frequency ``k_bin * w0 / MEASURE``."""
    wm = k_bin * W0 / MEASURE

    def offset_fn(n: int) -> float:
        # Midpoint sampling of the target sinusoid over cycle [n-1, n].
        return amplitude * np.cos(wm * (n - 0.5))

    sim = BehavioralPLLSimulator(
        pll,
        config=SimulationConfig(cycles=MEASURE + DISCARD, oversample=OVERSAMPLE),
        frequency_offset_fn=offset_fn,
    )
    result = sim.run()
    mask = result.times > DISCARD + 0.5 / OVERSAMPLE
    times = result.times[mask]
    theta = result.theta[mask]
    c_out = np.sum(theta * np.exp(-1j * wm * times)) / times.size
    # Injected VCO phase: integral of the disturbance, positive-frequency
    # amplitude (a/2) / (j wm).
    c_vco = (amplitude / 2.0) / (1j * wm)
    return wm, c_out / c_vco


@pytest.fixture(scope="module")
def pll():
    return design_typical_loop(omega0=W0, omega_ug=0.1 * W0)


class TestVCOSensitivity:
    def test_matches_htm_prediction(self, pll):
        closed = ClosedLoopHTM(pll)
        wm, s_meas = measured_sensitivity(pll, k_bin=20)
        s_pred = closed.sensitivity_element(1j * wm, 0, 0)
        assert abs(s_meas - s_pred) / abs(s_pred) < 0.05

    def test_tighter_at_lower_frequency(self, pll):
        """Staircase error shrinks with modulation frequency."""
        closed = ClosedLoopHTM(pll)
        errs = []
        for k_bin in (40, 10):
            wm, s_meas = measured_sensitivity(pll, k_bin=k_bin)
            s_pred = closed.sensitivity_element(1j * wm, 0, 0)
            errs.append(abs(s_meas - s_pred) / abs(s_pred))
        assert errs[1] < errs[0]

    def test_highpass_shape(self, pll):
        """In-band VCO disturbances are suppressed; out-of-band pass through."""
        _, s_low = measured_sensitivity(pll, k_bin=3)
        _, s_high = measured_sensitivity(pll, k_bin=100)
        assert abs(s_low) < 0.3
        assert abs(s_high) > 0.7

    def test_complements_reference_transfer(self, pll):
        """Measured S00 + predicted H00 ~= 1 — the closed-loop identity,
        verified across the two independent injection points."""
        closed = ClosedLoopHTM(pll)
        wm, s_meas = measured_sensitivity(pll, k_bin=20)
        h_pred = closed.h00(1j * wm)
        assert s_meas + h_pred == pytest.approx(1.0, abs=0.03)
