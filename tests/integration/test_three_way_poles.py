"""Integration: closed-loop poles agree across three independent routes.

1. **s-domain**: Newton roots of the characteristic function
   ``1 + lambda(s) = 0`` with exact coth derivatives (the HTM route);
2. **z-domain**: poles of the impulse-invariant ``G_z/(1 + G_z)``;
3. **Floquet**: eigenvalues of the numerically-linearised one-cycle return
   map of the *nonlinear event-driven engine*.

And a fourth, fully physical check: the measured decay rate of a transient
in the behavioural simulator matches the dominant pole's damping constant.
"""

import numpy as np
import pytest

from repro.baselines.zdomain import closed_loop_z, sampled_open_loop
from repro.pll.design import design_typical_loop
from repro.pll.poles import dominant_pole, find_closed_loop_poles
from repro.simulator.engine import BehavioralPLLSimulator, SimulationConfig
from repro.simulator.floquet import floquet_multipliers

W0 = 2 * np.pi


def designer(ratio):
    return design_typical_loop(omega0=W0, omega_ug=ratio * W0)


@pytest.mark.parametrize("ratio", [0.05, 0.1, 0.2])
class TestThreeWayIdentity:
    def test_s_domain_vs_z_domain(self, ratio):
        pll = designer(ratio)
        s_mult = np.sort_complex(
            np.array([p.multiplier for p in find_closed_loop_poles(pll)])
        )
        z_poles = np.sort_complex(closed_loop_z(sampled_open_loop(pll)).poles())
        assert np.allclose(s_mult, z_poles, atol=1e-9)

    def test_s_domain_vs_floquet(self, ratio):
        pll = designer(ratio)
        s_mult = np.sort_complex(
            np.array([p.multiplier for p in find_closed_loop_poles(pll)])
        )
        flo = np.sort_complex(floquet_multipliers(pll).multipliers)
        assert np.allclose(s_mult, flo, atol=2e-3)


class TestPhysicalDecayRate:
    def test_transient_decay_matches_dominant_pole(self):
        """Kick the loop, fit the exponential tail of the per-cycle error,
        compare the decay-per-cycle with |e^{s1 T}| of the dominant pole."""
        pll = designer(0.1)
        pole = dominant_pole(pll)
        expected_per_cycle = abs(pole.multiplier)

        cfg = SimulationConfig(cycles=120, frequency_offset=1e-4)
        result = BehavioralPLLSimulator(pll, config=cfg).run()
        errors = np.abs(result.phase_errors)
        # Fit log-linear decay on a clean mid-transient window.
        window = slice(20, 60)
        cycles = np.arange(120)[window]
        logs = np.log(errors[window])
        slope = np.polyfit(cycles, logs, 1)[0]
        measured_per_cycle = float(np.exp(slope))
        assert measured_per_cycle == pytest.approx(expected_per_cycle, rel=0.05)

    def test_unstable_growth_rate_matches(self):
        """Past the boundary the limit-cycle onset grows at the unstable
        multiplier's rate while still small."""
        pll = designer(0.29)
        pole = dominant_pole(pll)
        assert abs(pole.multiplier) > 1.0
        cfg = SimulationConfig(cycles=200, frequency_offset=1e-7)
        result = BehavioralPLLSimulator(pll, config=cfg).run()
        errors = np.abs(result.phase_errors)
        # Growth phase: pick a window where the error is still tiny
        # (linear regime) but past the initial transient.
        window = slice(40, 120)
        logs = np.log(errors[window])
        slope = np.polyfit(np.arange(200)[window], logs, 1)[0]
        measured = float(np.exp(slope))
        assert measured == pytest.approx(abs(pole.multiplier), rel=0.05)
