"""Integration: the paper's claim C1 — HTM within 2% of time-marching.

This is the headline verification of the whole pipeline: the exact coth
aliasing sums + rank-one SMW closure against an independent event-driven
simulation whose only shared code with the HTM path is the loop *parameters*.
"""

import numpy as np
import pytest

from repro.experiments.accuracy import run_accuracy_claim, run_speedup_claim

W0 = 2 * np.pi


@pytest.fixture(scope="module")
def accuracy():
    return run_accuracy_claim(
        ratios=(0.05, 0.1, 0.2),
        omega_normalized=(0.3, 1.0, 2.0),
        measure_cycles=200,
        discard_cycles=150,
    )


class TestClaimC1:
    def test_within_two_percent(self, accuracy):
        assert accuracy.within_paper_claim(0.02)

    def test_actually_much_tighter(self, accuracy):
        """Our simulator integrates exactly, so agreement is ~0.1%, not 2%."""
        assert accuracy.max_relative_error < 0.01

    def test_covers_all_operating_points(self, accuracy):
        assert len(accuracy.relative_errors) >= 8
        assert set(accuracy.ratios) == {0.05, 0.1, 0.2}

    def test_errors_grow_with_ratio(self, accuracy):
        """Faster loops stress the impulse-train approximation harder."""
        errs = np.asarray(accuracy.relative_errors)
        ratios = np.asarray(accuracy.ratios)
        slow = errs[ratios == 0.05].max()
        fast = errs[ratios == 0.2].max()
        assert fast > slow


class TestClaimC2:
    def test_speedup_at_least_order_of_magnitude(self):
        result = run_speedup_claim(frequency_points=5, measure_cycles=150, discard_cycles=100)
        assert result.speedup > 10.0
        assert result.htm_seconds < 1.0
