"""End-to-end distributed trace: serve -> spill -> lease workers -> collector.

The acceptance scenario for the tracing PR, run exactly the way a cluster
would: an :class:`AnalysisServer` receives a ``/v1/stability_map`` request
carrying a W3C ``traceparent``, spills it to a prepared (not autostarted)
campaign job, and two **separate** ``repro campaign worker`` processes
drain the lease plan.  The collector then merges the server's span log
with both workers' shards into one Chrome trace and the test asserts the
whole story hangs off the client's single ``trace_id``:

* the 202 response echoes the request id and propagates the trace id,
* both worker processes inherit the context from the frozen lease plan
  (no environment variable or flag hand-off),
* the merged document has a server lane plus two worker lanes, and
* the critical-path summary attributes time to ``evaluate`` and ``spill``.

``--basetemp dist-artifacts/trace`` in CI pins ``tmp_path`` where the
artifact upload and the ``repro obs trace`` merge step expect the files:
``<basetemp>/<test>0/jobs/<job>.jsonl`` and ``<basetemp>/<test>0/serve.trace.jsonl``.
"""

import asyncio
import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign.store import ResultStore
from repro.obs import trace as obs_trace
from repro.serve import AnalysisServer, ServerConfig

pytestmark = pytest.mark.campaign

SPACE = {"separation": [2.0, 4.0], "ratio": [0.05, 0.1, 0.15]}  # 6 cells
DEFAULTS = {"points": 200}
TRACE_ID = "ab" * 16
CLIENT_PARENT = f"00-{TRACE_ID}-000000000000cafe-01"
REQUEST_ID = "req-e2e-1"

SRC = str(Path(__file__).resolve().parents[2] / "src")


async def _request(port, method, path, body=None, headers=None):
    """Minimal HTTP/1.1 client with custom-header support."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b""
    if body is not None:
        payload = body if isinstance(body, bytes) else json.dumps(body).encode()
    lines = [f"{method} {path} HTTP/1.1", "Host: t"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    lines += [f"Content-Length: {len(payload)}", "Connection: close", "", ""]
    writer.write("\r\n".join(lines).encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except Exception:
        pass
    head, _, rest = raw.partition(b"\r\n\r\n")
    head_lines = head.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split(" ")[1])
    resp_headers = {}
    for line in head_lines[1:]:
        name, _, value = line.partition(":")
        resp_headers[name.strip().lower()] = value.strip()
    return status, resp_headers, json.loads(rest) if rest else None


def _spill_request(tmp_path):
    """Run the server just long enough to accept + spill one traced request."""

    config = ServerConfig(
        port=0,
        spill_threshold=4,
        jobs_dir=str(tmp_path / "jobs"),
        job_autostart=False,  # the lease-worker fleet does the work
        job_lease_batch=2,
        trace_log=str(tmp_path / "serve.trace.jsonl"),
    )

    async def main():
        server = AnalysisServer(config)
        await server.start()
        try:
            return await _request(
                server.port,
                "POST",
                "/v1/stability_map",
                {"space": SPACE, "defaults": DEFAULTS},
                headers={"traceparent": CLIENT_PARENT, "X-Request-Id": REQUEST_ID},
            )
        finally:
            await server.stop()

    return asyncio.run(main())


def _spawn_worker(store):
    env = dict(os.environ)
    env["REPRO_OBS"] = "1"
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "campaign",
            "worker",
            str(store),
            "--max-idle",
            "5",
            "--poll-interval",
            "0.2",
            "--quiet",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def test_trace_spans_three_processes(tmp_path):
    status, headers, body = _spill_request(tmp_path)

    # -- satellite: request-id echo + trace propagation on the 202 itself
    assert status == 202, body
    assert headers["x-request-id"] == REQUEST_ID
    assert TRACE_ID in headers["traceparent"]
    store = tmp_path / "jobs" / f"{body['job_id']}.jsonl"
    assert store.exists(), "prepare-only spill must create the store"

    serve_log = tmp_path / "serve.trace.jsonl"
    serve_events = obs_trace.read_trace_events(serve_log)
    assert {e["trace_id"] for e in serve_events} == {TRACE_ID}
    assert any(e["name"] == "serve.job.spill" for e in serve_events)

    # -- two lease workers in separate processes drain the frozen plan
    procs = [_spawn_worker(store) for _ in range(2)]
    for proc in procs:
        out, _ = proc.communicate(timeout=300)
        assert proc.returncode == 0, out
    merged = ResultStore.open(store).merged_status()
    assert merged["complete"], merged

    # -- every worker span carries the client's trace id, via plan only
    worker_events = obs_trace.load_store_events(store)
    assert worker_events, "workers recorded no span events"
    assert {e["trace_id"] for e in worker_events} == {TRACE_ID}
    lanes = {e["worker"] for e in worker_events if e["name"] == "lease.worker"}
    assert len(lanes) == 2, f"expected two worker lanes, got {lanes}"
    assert any(e["name"].startswith("campaign.point") for e in worker_events)

    # -- the collector merges all three processes into one Chrome trace
    doc = obs_trace.build_chrome_trace(store, serve_logs=[serve_log])
    assert doc["traceIds"] == [TRACE_ID]
    slices = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
    names = {ev["name"] for ev in slices}
    assert "serve.job.spill" in names and "lease.worker" in names
    worker_lanes = {
        (ev["pid"], ev["tid"]) for ev in slices if ev["name"] == "lease.worker"
    }
    assert len(worker_lanes) == 2
    buckets = doc["criticalPath"]["buckets"]
    assert set(buckets) >= {"queue", "evaluate", "spill", "lease_reclaim"}
    assert buckets["evaluate"]["seconds"] > 0.0
    assert buckets["spill"]["seconds"] > 0.0 and buckets["spill"]["events"] == 1


PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})?'
    r" (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]?Inf|NaN)$"
)


def test_metricsz_parses_under_prometheus_grammar():
    async def main():
        server = AnalysisServer(ServerConfig(port=0))
        await server.start()
        try:
            await _request(server.port, "POST", "/v1/margins", {"design": {}})
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(
                b"GET /v1/metricsz HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 0\r\nConnection: close\r\n\r\n"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw
        finally:
            await server.stop()

    raw = asyncio.run(main())
    head, _, text = raw.partition(b"\r\n\r\n")
    assert b" 200 " in head.split(b"\r\n", 1)[0]
    assert b"text/plain; version=0.0.4" in head
    lines = text.decode().splitlines()
    assert any(line.startswith("repro_serve_requests") for line in lines)
    for line in lines:
        if not line or line.startswith("#"):
            continue
        assert PROM_LINE.match(line), f"not valid Prometheus text: {line!r}"
