"""End-to-end continuous profiling: serve -> spill -> lease worker -> collector.

The acceptance scenario for the profiling PR, mirroring the trace e2e:
an :class:`AnalysisServer` running with ``--profile`` accepts a traced
``/v1/stability_map`` request and spills it to a prepared job; a separate
``repro campaign worker`` process drains the plan with
``REPRO_OBS_PROFILE=1``.  The worker samples itself and flushes its shard
to ``<store>.profile/<worker>.json``; the server flushes its own capture
to ``--profile-log``.  The collector merges both and the test asserts:

* the worker shard exists, parses, and recorded CPU samples,
* at least one sample attributes to a ``dense_grid``/``evaluate`` span
  path carrying the client's ``trace_id`` — the samples tell the same
  story as the trace, and
* ``repro obs profile`` merges shards + serve capture into collapsed
  text and a flamegraph HTML artifact.

``--basetemp dist-artifacts/profile`` in CI pins ``tmp_path`` where the
artifact upload and the ``repro obs profile`` merge step expect the
files: ``<basetemp>/<test>0/jobs/<job>.jsonl`` (and its ``.profile/``
sibling) plus ``<basetemp>/<test>0/serve.profile.json``.
"""

import asyncio
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign.store import ResultStore
from repro.cli import main
from repro.obs import profile as obs_profile
from repro.serve import AnalysisServer, ServerConfig

pytestmark = pytest.mark.campaign

SPACE = {"separation": [2.0, 4.0], "ratio": [0.05, 0.1, 0.15]}  # 6 cells
# band_map on the scalar path spends its CPU inside core.dense_grid /
# core.evaluate spans (the vectorized batch adapters collapse everything
# into one campaign.point_batch span); 2000 points/cell gives the 397 Hz
# sampler a comfortable number of ticks inside those spans.
TASK = "band_map"
DEFAULTS = {"points": 2000}
TRACE_ID = "cd" * 16
CLIENT_PARENT = f"00-{TRACE_ID}-000000000000beef-01"

SRC = str(Path(__file__).resolve().parents[2] / "src")


async def _request(port, method, path, body=None, headers=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b""
    if body is not None:
        payload = body if isinstance(body, bytes) else json.dumps(body).encode()
    lines = [f"{method} {path} HTTP/1.1", "Host: t"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    lines += [f"Content-Length: {len(payload)}", "Connection: close", "", ""]
    writer.write("\r\n".join(lines).encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except Exception:
        pass
    head, _, rest = raw.partition(b"\r\n\r\n")
    status = int(head.decode("latin-1").split("\r\n")[0].split(" ")[1])
    return status, json.loads(rest) if rest else None


def _spill_request(tmp_path):
    """Serve one traced request with the profiler on; flush its capture."""

    config = ServerConfig(
        port=0,
        spill_threshold=4,
        jobs_dir=str(tmp_path / "jobs"),
        job_autostart=False,  # the lease worker does the work
        job_lease_batch=6,
        profile=True,
        profile_hz=397,
        profile_log=str(tmp_path / "serve.profile.json"),
    )

    async def main():
        server = AnalysisServer(config)
        await server.start()
        try:
            return await _request(
                server.port,
                "POST",
                "/v1/stability_map",
                {"space": SPACE, "defaults": DEFAULTS, "task": TASK},
                headers={"traceparent": CLIENT_PARENT},
            )
        finally:
            await server.stop()  # stops the profiler, flushing the final shard

    return asyncio.run(main())


def _spawn_worker(store):
    env = dict(os.environ)
    env["REPRO_OBS"] = "1"
    env["REPRO_OBS_PROFILE"] = "1"
    env["REPRO_OBS_PROFILE_HZ"] = "397"  # dense sampling keeps the test short
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign", "worker", str(store),
            "--max-idle", "5", "--poll-interval", "0.2", "--quiet",
            "--no-vectorize",  # scalar path: samples land in core.* spans
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def test_profile_attributes_samples_across_processes(tmp_path, capsys):
    status, body = _spill_request(tmp_path)
    assert status == 202, body
    store = tmp_path / "jobs" / f"{body['job_id']}.jsonl"
    assert store.exists(), "prepare-only spill must create the store"

    # The server's own profiler flushed a capture on stop.
    serve_profile = tmp_path / "serve.profile.json"
    serve_prof = obs_profile.read_profile(serve_profile)
    assert serve_prof is not None and serve_prof["kind"] == "profile"

    # -- one lease worker drains the plan while sampling itself
    proc = _spawn_worker(store)
    out, _ = proc.communicate(timeout=300)
    assert proc.returncode == 0, out
    merged_status = ResultStore.open(store).merged_status()
    assert merged_status["complete"], merged_status

    shards = obs_profile.load_store_profiles(store)
    assert shards, "worker must flush a shard to <store>.profile/"
    merged = obs_profile.merge_profiles(shards + [serve_prof])
    assert merged["samples"] > 0, "no samples despite 6 x 300-point cells"
    assert merged["workers"], "shards must carry worker identities"

    # -- acceptance: samples attribute to the evaluation spans AND the
    #    client's trace id, with no flag hand-off beyond the lease plan.
    hot = [
        e for e in merged["stacks"]
        if "dense_grid" in e["span"] or "evaluate" in e["span"]
    ]
    assert hot, f"no samples in evaluation spans: {merged['stacks'][:5]}"
    assert any(TRACE_ID in e["trace_ids"] for e in hot), (
        "evaluation samples must carry the request's trace id"
    )

    # -- the collector merges shards + serve capture into artifacts
    html = tmp_path / "flamegraph.html"
    out_txt = tmp_path / "profile.txt"
    code = main([
        "obs", "profile", str(store),
        "--serve-profile", str(serve_profile),
        "--out", str(out_txt), "--html", str(html), "--top", "3",
    ])
    assert code == 0
    printed = capsys.readouterr().out
    assert "sample(s) at 397 Hz" in printed
    collapsed = out_txt.read_text()
    assert collapsed.strip(), "collapsed output must not be empty"
    assert any("span:" in line for line in collapsed.splitlines())
    assert "flamegraph" in html.read_text()

    # -- json mode round-trips the merged document
    code = main(["obs", "profile", str(store), "--json"])
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["kind"] == "profile" and doc["samples"] > 0
