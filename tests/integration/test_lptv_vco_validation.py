"""Integration: the general LPTV-VCO model (eq. 25) validated end to end.

The paper derives the HTM loop closure for arbitrary periodic ISFs but only
*experiments* with the time-invariant case.  Here the behavioural engine's
closed-form LPTV segment integration (linearised ``theta' = v(t) u``,
eq. 24) provides the independent time-domain reference, and the per-ISF-
harmonic coth closed form is checked against it — including the conversion
sidebands ``H_{±1,0}`` whose *asymmetry* (upper vs lower) is a pure LPTV
signature no time-invariant model can produce.
"""

import numpy as np
import pytest

from repro.blocks.vco import VCO
from repro.pll.architecture import PLL
from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.design import design_typical_loop
from repro.signals.isf import ImpulseSensitivity
from repro.simulator.transfer_extraction import measure_closed_loop_transfer

W0 = 2 * np.pi


@pytest.fixture(scope="module")
def base():
    return design_typical_loop(omega0=W0, omega_ug=0.08 * W0)


def lptv_pll(base, ripple, phase=0.0):
    return PLL(
        pfd=base.pfd,
        charge_pump=base.charge_pump,
        filter_impedance=base.filter_impedance,
        vco=VCO(ImpulseSensitivity.sinusoidal(1.0, ripple, W0, phase=phase)),
    )


class TestLPTVEngineBasics:
    def test_zero_ripple_limit_equals_lti_engine(self, base):
        """The LPTV segment formulas reduce exactly to the expm path."""
        pll0 = lptv_pll(base, ripple=1e-12)
        m_lptv = measure_closed_loop_transfer(
            pll0, 0.06 * W0, measure_cycles=100, discard_cycles=80
        )
        m_lti = measure_closed_loop_transfer(
            base, 0.06 * W0, measure_cycles=100, discard_cycles=80
        )
        assert m_lptv.response == pytest.approx(m_lti.response, rel=1e-9)

    def test_locked_fixed_point(self, base):
        from repro.simulator.engine import BehavioralPLLSimulator, SimulationConfig

        sim = BehavioralPLLSimulator(
            lptv_pll(base, 0.4), config=SimulationConfig(cycles=20)
        )
        result = sim.run()
        assert np.max(np.abs(result.theta)) == 0.0

    def test_acquisition_with_ripple(self, base):
        from repro.simulator.engine import BehavioralPLLSimulator, SimulationConfig

        sim = BehavioralPLLSimulator(
            lptv_pll(base, 0.3),
            config=SimulationConfig(cycles=400, frequency_offset=0.005),
        )
        result = sim.run()
        assert abs(result.final_phase_error()) < 1e-5


class TestLPTVClosedFormValidation:
    @pytest.fixture(scope="class")
    def measured(self, base):
        pll = lptv_pll(base, ripple=0.5, phase=0.7)
        closed = ClosedLoopHTM(pll)
        meas = measure_closed_loop_transfer(
            pll,
            0.06 * W0,
            measure_cycles=250,
            discard_cycles=200,
            sideband_orders=(-1, 1),
        )
        return closed, meas

    def test_baseband_transfer(self, measured):
        closed, meas = measured
        predicted = closed.h00(1j * meas.omega)
        assert abs(meas.response - predicted) / abs(predicted) < 2e-3

    def test_conversion_sidebands(self, measured):
        closed, meas = measured
        for n in (-1, 1):
            predicted = closed.element(1j * meas.omega, n, 0)
            assert abs(meas.sidebands[n] - predicted) / abs(predicted) < 0.02

    def test_isf_moves_the_sideband_ratio(self, measured, base):
        """The sampler alone fixes the upper/lower conversion ratio (set by
        |A| at w -/+ w0); the rippled ISF shifts it substantially — the
        LPTV-VCO signature."""
        closed, meas = measured
        ratio_lptv = abs(meas.sidebands[1]) / abs(meas.sidebands[-1])
        ti = ClosedLoopHTM(base)
        s = 1j * meas.omega
        ratio_ti = abs(ti.element(s, 1, 0)) / abs(ti.element(s, -1, 0))
        assert abs(ratio_lptv - ratio_ti) > 0.5 * ratio_ti

    def test_ripple_phase_moves_sidebands(self, base):
        """Rotating the ISF phase changes the conversion products (the ISF
        path interferes with the phase-invariant sampler path, so the total
        shifts in both magnitude and angle)."""
        closed_a = ClosedLoopHTM(lptv_pll(base, 0.4, phase=0.0))
        closed_b = ClosedLoopHTM(lptv_pll(base, 0.4, phase=1.5))
        s = 1j * 0.05 * W0
        a = closed_a.element(s, 1, 0)
        b = closed_b.element(s, 1, 0)
        assert abs(b - a) > 0.3 * abs(a)
        # The conversion products are far more phase-sensitive than the
        # baseband transfer.
        h_a = closed_a.h00(s)
        h_b = closed_b.h00(s)
        assert abs(h_b - h_a) / abs(h_a) < 0.5 * abs(b - a) / abs(a)
