"""Golden-number regression tests.

Pin the canonical quantities of the reference loop (ratio 0.1, separation 4,
omega0 = 2 pi) to the values measured at release.  Any numerical regression
anywhere in the pipeline — partial fractions, coth sums, SMW closure, margin
search — trips one of these before subtler behavioural tests would.
"""

import numpy as np
import pytest

from repro.baselines.zdomain import closed_loop_z, sampled_open_loop, stability_limit_ratio
from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.design import design_typical_loop
from repro.pll.margins import compare_margins
from repro.pll.poles import find_closed_loop_poles

W0 = 2 * np.pi


@pytest.fixture(scope="module")
def pll():
    return design_typical_loop(omega0=W0, omega_ug=0.1 * W0, separation=4.0)


class TestGoldenNumbers:
    def test_effective_gain_at_reference_point(self, pll):
        lam = ClosedLoopHTM(pll).effective_gain(1j * 0.13 * W0)
        assert lam == pytest.approx(-0.483112 - 0.641771j, abs=1e-5)

    def test_h00_at_reference_point(self, pll):
        h00 = ClosedLoopHTM(pll).h00(1j * 0.13 * W0)
        assert abs(h00) == pytest.approx(0.904044, abs=1e-4)

    def test_margins(self, pll):
        m = compare_margins(pll)
        assert m.phase_margin_lti_deg == pytest.approx(61.93, abs=0.02)
        assert m.phase_margin_eff_deg == pytest.approx(55.48, abs=0.05)
        assert m.bandwidth_extension == pytest.approx(1.0533, abs=0.002)

    def test_z_domain_poles(self, pll):
        poles = np.sort(np.abs(closed_loop_z(sampled_open_loop(pll)).poles()))
        assert poles == pytest.approx([0.294634, 0.341659, 0.804679], abs=1e-5)

    def test_s_domain_dominant_pole(self, pll):
        dominant = find_closed_loop_poles(pll)[0]
        assert dominant.s.real == pytest.approx(-0.21726, abs=1e-4)
        assert abs(dominant.s.imag) < 1e-6

    def test_stability_limit(self):
        limit = stability_limit_ratio(
            lambda r: design_typical_loop(omega0=W0, omega_ug=r * W0)
        )
        assert limit == pytest.approx(0.27616, abs=5e-4)

    def test_margin_loss_at_0p1_claim(self, pll):
        m = compare_margins(pll)
        assert m.margin_degradation == pytest.approx(0.1041, abs=0.002)
