"""Integration: Fig. 7 claims — margin collapse and stability consistency.

Three independent models must tell one coherent story:

1. the effective open-loop gain lambda(s) (HTM closed form) predicts the
   phase margin collapsing toward zero as w_UG/w0 grows;
2. the z-domain baseline predicts a hard stability boundary;
3. the behavioural simulator develops a limit cycle past that boundary.
"""

import numpy as np
import pytest

from repro.baselines.zdomain import closed_loop_z, sampled_open_loop, stability_limit_ratio
from repro.pll.design import design_typical_loop, shape_phase_margin_deg
from repro.pll.margins import compare_margins

W0 = 2 * np.pi


def designer(ratio):
    return design_typical_loop(omega0=W0, omega_ug=ratio * W0)


class TestClaimC3:
    def test_nine_percent_degradation_at_0p1(self):
        m = compare_margins(designer(0.1))
        # Paper: "already 9% worse"; we measure ~10.5% on our loop shape.
        assert 0.07 <= m.margin_degradation <= 0.14

    def test_lti_line_is_horizontal(self):
        """The LTI phase margin does not depend on w_UG/w0 at all."""
        pms = [compare_margins(designer(r)).phase_margin_lti_deg for r in (0.02, 0.1, 0.2)]
        assert np.ptp(pms) < 0.1
        assert pms[0] == pytest.approx(shape_phase_margin_deg(4.0), abs=0.1)


class TestStabilityConsistency:
    def test_margin_zero_crossing_matches_zdomain_limit(self):
        """PM_eff extrapolates to zero at the z-domain stability boundary."""
        limit = stability_limit_ratio(designer)
        closer = compare_margins(designer(limit * 0.97))
        farther = compare_margins(designer(limit * 0.85))
        # Margin is small near the boundary and shrinking on approach; the
        # collapse is steep (tens of degrees over the last 15% of ratio).
        assert 0.0 < closer.phase_margin_eff_deg < 15.0
        assert farther.phase_margin_eff_deg > closer.phase_margin_eff_deg + 5.0

    def test_zdomain_poles_cross_unit_circle_at_limit(self):
        limit = stability_limit_ratio(designer, tol=1e-4)
        inside = closed_loop_z(sampled_open_loop(designer(limit * 0.99)))
        outside = closed_loop_z(sampled_open_loop(designer(limit * 1.02)))
        assert np.max(np.abs(inside.poles())) < 1.0
        assert np.max(np.abs(outside.poles())) > 1.0

    def test_behavioural_limit_cycle_brackets_boundary(self):
        """The nonlinear simulator confirms the linear boundary location."""
        from repro.simulator.engine import BehavioralPLLSimulator, SimulationConfig

        limit = stability_limit_ratio(designer)

        def tail(ratio):
            cfg = SimulationConfig(cycles=1200, frequency_offset=0.001)
            result = BehavioralPLLSimulator(designer(ratio), config=cfg).run()
            return float(np.max(np.abs(result.phase_errors[-100:])))

        assert tail(limit * 0.95) < 1e-9
        assert tail(limit * 1.10) > 1e-4


class TestLTIBlindSpot:
    def test_lti_misses_the_instability_entirely(self):
        """The punchline: classical analysis calls every one of these loops
        comfortably stable with ~62 deg margin, while the loop at ratio 0.3
        demonstrably oscillates."""
        from repro.baselines.lti_approx import ClassicalLTIAnalysis

        hot = designer(0.3)
        assert ClassicalLTIAnalysis(hot).is_stable()
        assert ClassicalLTIAnalysis(hot).phase_margin_deg() > 60.0
        assert not closed_loop_z(sampled_open_loop(hot)).is_stable()
