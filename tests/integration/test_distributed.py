"""Distributed smoke: elastic CLI workers, a SIGKILL, and zero lost points.

This is the acceptance scenario for the multi-host lease scheduler, run
the way a cluster would run it: independent ``repro campaign worker``
subprocesses against one shared store.  One worker is SIGKILLed while it
holds a lease mid-batch; the survivors must reclaim the orphaned batch
after its ttl, finish the campaign with **zero lost points and zero
duplicate terminal records**, and elect exactly one summary writer.

Kept under the ``campaign`` marker (subprocess startup dominates the
runtime); the lease protocol's state machine itself is unit-tested with
a frozen clock in ``tests/unit/test_lease.py``.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign.store import ResultStore
from repro.obs.stream import read_stream

pytestmark = pytest.mark.campaign

POINTS = 200
BATCH = 10
LEASE_TTL = 2.0


def _spawn_worker(store, env, extra=()):
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "campaign",
            "worker",
            str(store),
            "--quiet",
            "--max-idle",
            "10",
            "--lease-ttl",
            str(LEASE_TTL),
            "--stream",
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


@pytest.fixture
def campaign_dir(tmp_path):
    spec = {
        "name": "distributed-smoke",
        "task": "design_summary",
        "defaults": {"min_seconds": 0.05},
        "space": {
            "kind": "grid",
            "axes": {
                "ratio": [round(0.01 * i, 2) for i in range(1, 21)],
                "separation": [3.0, 4.0, 5.0, 6.0, 7.0, 3.5, 4.5, 5.5, 6.5, 7.5],
            },
        },
    }
    (tmp_path / "spec.json").write_text(json.dumps(spec))
    return tmp_path


def test_three_workers_survive_a_sigkill(campaign_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    store = campaign_dir / "r.jsonl"
    init = subprocess.run(
        [
            sys.executable, "-m", "repro", "campaign", "init",
            str(campaign_dir / "spec.json"), "--out", str(store),
            "--batch-size", str(BATCH),
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    assert init.returncode == 0, init.stdout + init.stderr
    assert f"{POINTS} point(s)" in init.stdout

    workers = [_spawn_worker(store, env) for _ in range(3)]
    victim = workers[0]
    # Kill only once the victim is provably working (its shard exists);
    # a worker killed during interpreter startup proves nothing.
    shard = store.parent / "r.jsonl.shards" / f"*-{victim.pid}.jsonl"
    deadline = time.monotonic() + 90
    while not list(shard.parent.glob(shard.name)):
        assert time.monotonic() < deadline, "victim never started working"
        assert victim.poll() is None, "victim exited before being killed"
        time.sleep(0.05)
    time.sleep(0.3)  # well inside its first leased batch
    victim.send_signal(signal.SIGKILL)

    outputs = {}
    for proc in workers:
        out, _err = proc.communicate(timeout=180)
        outputs[proc.pid] = out
    assert victim.returncode == -signal.SIGKILL
    survivors = workers[1:]
    assert all(p.returncode == 0 for p in survivors), outputs

    result_store = ResultStore.open(store)
    records = result_store.merged_point_records()
    assert len(records) == POINTS, "lost points after SIGKILL"
    assert all(r["status"] == "ok" for r in records)
    # First-terminal-record-wins dedup: never two records for one id.
    counts = result_store.terminal_record_counts()
    assert max(counts.values()) == 1, {
        k: v for k, v in counts.items() if v > 1
    }
    # The orphaned lease was reclaimed by a survivor, and they logged it.
    assert "reclaimed expired lease" in "".join(
        outputs[p.pid] for p in survivors
    ), outputs

    # Exactly one summary writer won the finalize election.
    summaries = [
        r for r in result_store.records() if r.get("kind") == "summary"
    ]
    assert len(summaries) == 1
    assert summaries[0]["mode"] == "lease-worker"
    assert summaries[0]["merged"]["done"] == POINTS
    finalized = sum(
        "wrote final summary" in outputs[p.pid] for p in survivors
    )
    assert finalized == 1

    # The shared stream file interleaves every worker's tagged samples.
    samples = read_stream(Path(str(store) + ".stream.jsonl"))
    stream_workers = {s.get("worker") for s in samples if s.get("worker")}
    assert len(stream_workers) >= 2

    # Status + watch read the merged multi-worker state without error.
    status = subprocess.run(
        [sys.executable, "-m", "repro", "campaign", "status", str(store)],
        env=env,
        capture_output=True,
        text=True,
    )
    assert status.returncode == 0, status.stdout + status.stderr
    assert "0 pending" in status.stdout
    assert "worker shard(s)" in status.stdout
    watch = subprocess.run(
        [
            sys.executable, "-m", "repro", "campaign", "watch",
            str(store), "--once",
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    assert watch.returncode == 0
    assert "COMPLETE" in watch.stdout
    assert "leases:" in watch.stdout


def test_late_joiner_finds_campaign_complete(campaign_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    store = campaign_dir / "r.jsonl"
    small_spec = {
        "name": "tiny",
        "task": "design_summary",
        "space": {
            "kind": "grid",
            "axes": {"ratio": [0.05, 0.1], "separation": [4.0]},
        },
    }
    (campaign_dir / "tiny.json").write_text(json.dumps(small_spec))
    subprocess.run(
        [
            sys.executable, "-m", "repro", "campaign", "init",
            str(campaign_dir / "tiny.json"), "--out", str(store),
        ],
        env=env,
        check=True,
        capture_output=True,
    )
    first = _spawn_worker(store, env)
    out, _ = first.communicate(timeout=120)
    assert first.returncode == 0, out
    late = _spawn_worker(store, env, extra=("--max-idle", "0.5"))
    out_late, _ = late.communicate(timeout=120)
    assert late.returncode == 0, out_late
    assert "0 batch(es)" in out_late  # nothing left to claim
    counts = ResultStore.open(store).terminal_record_counts()
    assert max(counts.values()) == 1
