"""Smoke tests keeping the runner CLI and every example runnable."""

import csv
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parents[2] / "examples").glob("*.py"))


class TestRunner:
    def test_fast_run_produces_all_sections(self, capsys, tmp_path):
        from repro.experiments.runner import main

        assert main(["--fast", "--csv", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        for token in ("Fig. 5", "Fig. 6", "Fig. 7", "claim C1", "claim C2", "claim C3"):
            assert token in out
        assert "Stability map" in out
        assert "Band-conversion" in out

    def test_csv_artifacts(self, capsys, tmp_path):
        from repro.experiments.runner import main

        main(["--fast", "--csv", str(tmp_path)])
        capsys.readouterr()
        for name in ("fig5.csv", "fig6.csv", "fig7.csv"):
            path = tmp_path / name
            assert path.exists()
            with path.open() as handle:
                rows = list(csv.reader(handle))
            assert len(rows) > 5  # header + data

    def test_fig6_csv_contains_both_kinds(self, capsys, tmp_path):
        from repro.experiments.runner import main

        main(["--fast", "--csv", str(tmp_path)])
        capsys.readouterr()
        with (tmp_path / "fig6.csv").open() as handle:
            kinds = {row[1] for row in list(csv.reader(handle))[1:]}
        assert kinds == {"htm", "sim"}


class TestExamples:
    @pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
    def test_example_runs(self, script, capsys, monkeypatch):
        assert script.exists()
        monkeypatch.setattr(sys, "argv", [str(script)])
        runpy.run_path(str(script), run_name="__main__")
        out = capsys.readouterr().out
        assert len(out) > 100  # produced a real report

    def test_example_count(self):
        assert len(EXAMPLES) >= 6
