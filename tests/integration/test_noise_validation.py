"""Integration: stochastic reference jitter vs the HTM noise prediction.

Drive the behavioural simulator with i.i.d. per-edge reference jitter
``x_n ~ N(0, sigma^2)`` and compare the measured output-phase PSD with the
analytic prediction.  For a pulse-amplitude-modulated error train the
output spectral density is

    S_theta(w) = sigma^2 * T * |H00(j w)|^2

with ``H00 = A/(1 + lambda)`` the *time-varying* closed-loop transfer
(eq. 38) — i.e. white sampled reference noise emerges shaped by the HTM
baseband transfer, which is exactly what :mod:`repro.pll.noise` assumes.
This test closes the loop between the deterministic verification (Fig. 6)
and the noise machinery with an end-to-end stochastic experiment.
"""

import numpy as np
import pytest

from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.design import design_typical_loop
from repro.simulator.engine import BehavioralPLLSimulator, SimulationConfig

W0 = 2 * np.pi
SIGMA = 1e-4  # jitter std in seconds (T = 1)


def run_noisy(pll, cycles, seed):
    rng = np.random.default_rng(seed)
    jitter = rng.normal(0.0, SIGMA, size=cycles + 2)

    def theta_ref(t: float) -> float:
        return float(jitter[int(round(t))])

    config = SimulationConfig(cycles=cycles, oversample=8)
    sim = BehavioralPLLSimulator(pll, theta_ref=theta_ref, config=config)
    return sim.run()


@pytest.fixture(scope="module")
def measured_psd():
    pll = design_typical_loop(omega0=W0, omega_ug=0.1 * W0)
    cycles = 2048
    discard = 256
    psds = []
    for seed in range(4):
        result = run_noisy(pll, cycles, seed)
        mask = result.times > discard
        theta = result.theta[mask]
        times = result.times[mask]
        dt = times[1] - times[0]
        n = theta.size
        window = np.hanning(n)
        u = np.fft.rfft(theta * window)
        # Windowed periodogram, two-sided PSD in seconds^2 per Hz:
        # S = |U dt|^2 / (sum(w^2) dt) = |U|^2 dt / sum(w^2).
        psds.append(np.abs(u) ** 2 * dt / np.sum(window**2))
        freqs = 2 * np.pi * np.fft.rfftfreq(n, d=dt)
    avg = np.mean(psds, axis=0)
    return pll, freqs, avg


class TestStochasticValidation:
    def test_in_band_psd_matches_prediction(self, measured_psd):
        pll, omega, psd = measured_psd
        closed = ClosedLoopHTM(pll)
        # Compare band-averaged PSD over several in-band windows against the
        # prediction sigma^2 T |H00|^2; the periodogram constant cancels in
        # the *ratio profile*, so first normalise both at a reference band.
        bands = [(0.02, 0.05), (0.05, 0.1), (0.1, 0.2), (0.2, 0.4)]
        measured_means = []
        predicted_means = []
        for lo, hi in bands:
            mask = (omega > lo * W0) & (omega < hi * W0)
            measured_means.append(float(np.mean(psd[mask])))
            h00 = np.abs(closed.frequency_response(omega[mask])) ** 2
            predicted_means.append(float(np.mean(SIGMA**2 * 1.0 * h00)))
        measured_means = np.array(measured_means) / measured_means[0]
        predicted_means = np.array(predicted_means) / predicted_means[0]
        # Shape agreement within 25% per band (periodogram variance).
        assert np.allclose(measured_means, predicted_means, rtol=0.25)

    def test_absolute_level_right_order(self, measured_psd):
        """The absolute in-band plateau is sigma^2 T within a factor ~2."""
        pll, omega, psd = measured_psd
        mask = (omega > 0.02 * W0) & (omega < 0.08 * W0)
        plateau = float(np.mean(psd[mask]))
        expected = SIGMA**2 * 1.0  # sigma^2 T per Hz (two-sided), |H00| ~ 1 in band
        assert 0.3 * expected < plateau < 3.0 * expected

    def test_loop_suppresses_out_of_band(self, measured_psd):
        """Beyond the loop bandwidth the output noise falls well below the
        in-band plateau — the lowpass action on reference noise."""
        pll, omega, psd = measured_psd
        inband = float(np.mean(psd[(omega > 0.02 * W0) & (omega < 0.08 * W0)]))
        outband = float(np.mean(psd[(omega > 1.5 * W0) & (omega < 3.0 * W0)]))
        assert outband < 0.1 * inband
