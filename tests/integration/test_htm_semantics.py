"""Integration: HTM frequency-domain semantics against time-domain LPTV filtering.

Validates the core claim of eq. (9): applying the HTM evaluated at
``s = j omega`` to the baseband-equivalent envelope vector reproduces the
time-domain action of the LPTV system.  The test system is a memoryless
periodic multiplier followed by an LTI filter — both paths computed
completely independently (time-domain: sample-by-sample multiplication +
state-space filtering; frequency-domain: Toeplitz and diagonal HTMs).
"""

import numpy as np
import pytest

from repro.core.operators import LTIOperator, MultiplicationOperator, SeriesOperator
from repro.core.sweep import sweep_matrix
from repro.lti.transfer import TransferFunction
from repro.signals.fourier import FourierSeries
from repro.signals.spectra import band_decompose, band_reassemble

W0 = 2 * np.pi


@pytest.fixture(scope="module")
def setup():
    multiplier = FourierSeries([0.25, 1.0, 0.25], W0)  # 1 + 0.5 cos(w0 t)
    filt = TransferFunction.first_order_lowpass(0.8 * W0)
    op = SeriesOperator(LTIOperator(filt, W0), MultiplicationOperator(multiplier))
    return multiplier, filt, op


class TestLPTVSemantics:
    def test_envelope_transfer_matches_time_domain(self, setup):
        multiplier, filt, op = setup
        dt = 1.0 / 64
        n = 4096  # 64 periods -> bin-aligned frequencies k/64
        t = np.arange(n) * dt
        # Input: two bin-aligned tones inside the baseband.
        u = np.cos(0.25 * W0 * t) + 0.5 * np.sin(0.140625 * W0 * t)

        # --- time-domain path: multiply, then filter exactly.
        product = np.real(multiplier(t)) * u
        ss = filt.to_statespace()
        _, y_time = ss.simulate_held(t, product)

        # --- frequency-domain path: envelope vector through the HTM stack.
        order = 3
        vec = band_decompose(u.astype(complex), dt, W0, order)
        mats = sweep_matrix(op, vec.omega, order)
        out_vec = vec.apply_matrix(mats)
        y_freq = band_reassemble(out_vec, dt, n).real

        # Discard the filter's start-up transient, compare steady state.
        settle = slice(n // 2, n)
        scale = np.max(np.abs(y_freq[settle]))
        err = np.max(np.abs(y_time[settle] - y_freq[settle])) / scale
        assert err < 0.02

    def test_conversion_products_appear(self, setup):
        multiplier, filt, op = setup
        dt = 1.0 / 64
        n = 4096
        t = np.arange(n) * dt
        u = np.cos(0.25 * W0 * t)
        product = np.real(multiplier(t)) * u
        spectrum = np.abs(np.fft.rfft(product))
        freqs = np.fft.rfftfreq(n, d=dt)  # in cycles per second; w0 = 1 Hz
        # Expect lines at 0.25, 0.75 and 1.25 cycles.
        for f_expected in (0.25, 0.75, 1.25):
            bin_idx = int(round(f_expected * n * dt))
            assert spectrum[bin_idx] > 100.0

    def test_htm_element_predicts_conversion_amplitude(self, setup):
        multiplier, filt, op = setup
        # Input tone at omega inside band 0; output at omega + w0 in band 1:
        # amplitude ratio = H_{1,0}(j omega) = P_1 * filt(j(omega + w0)).
        omega = 0.25 * W0
        htm = op.htm(1j * omega, 2)
        predicted = htm.element(1, 0)
        expected = 0.25 * filt(1j * (omega + W0))
        assert predicted == pytest.approx(complex(expected), rel=1e-12)


class TestAliasingInterpretation:
    def test_sampler_folds_all_bands_equally(self):
        """Rank-one sampling: every input band contributes identically to the
        sampled sequence — knowledge of one output band determines all (the
        paper's explanation of why H_PFD is rank one)."""
        from repro.core.operators import SamplingOperator

        htm = SamplingOperator(W0).htm(0.1j, 4)
        col = htm.matrix[:, 0]
        for m in range(1, 9):
            assert np.allclose(htm.matrix[:, m], col)
