"""Structured lazy-evaluation layer: kind algebra, caching, and the
legacy-override compatibility/deprecation contract of ``evaluate()``.

The arithmetic itself is cross-checked against the dense oracle by
``tests/property/test_prop_structured.py``; this module pins the *shape*
of the API — which structure tag each composition produces, how the memo
separates the two evaluation flavors, and how subclasses written against
the old ``_dense_grid``/``dense`` protocols keep working.
"""

import warnings

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.core import memo
from repro.core.memo import grid_cache
from repro.core.operators import (
    FeedbackOperator,
    HarmonicOperator,
    IdentityOperator,
    IsfIntegrationOperator,
    LTIOperator,
    MultiplicationOperator,
    SamplingOperator,
)
from repro.core.structured import StructuredGrid
from repro.lti.transfer import TransferFunction
from repro.obs import spans as obs
from repro.signals.fourier import FourierSeries
from repro.signals.isf import ImpulseSensitivity

W0 = 2 * np.pi
S = 1j * np.linspace(0.3, 2.8, 5)


@pytest.fixture(autouse=True)
def _clean_cache():
    grid_cache.clear()
    yield
    grid_cache.clear()


def _lti(pole=1.0, gain=1.0):
    return LTIOperator(TransferFunction([gain], [1.0, pole]), W0)


def _mult():
    return MultiplicationOperator(FourierSeries([0.2j, 1.0, -0.3], W0))


def _isf():
    return IsfIntegrationOperator(
        ImpulseSensitivity.from_coefficients([0.1, 1.0, 0.1], W0)
    )


class TestStructureTags:
    def test_primitive_kinds(self):
        assert IdentityOperator(W0).evaluate(S, 2).kind == "diagonal"
        assert _lti().evaluate(S, 2).kind == "diagonal"
        assert _mult().evaluate(S, 2).kind == "banded"
        assert _isf().evaluate(S, 2).kind == "banded"
        assert SamplingOperator(W0).evaluate(S, 2).kind == "rank_one"

    def test_composition_kinds(self):
        lti, samp, mult = _lti(), SamplingOperator(W0), _mult()
        assert (lti @ lti).evaluate(S, 2).kind == "diagonal"
        assert (lti @ samp).evaluate(S, 2).kind == "rank_one"
        assert (samp @ mult).evaluate(S, 2).kind == "rank_one"
        assert (mult @ mult).evaluate(S, 2).kind == "banded"
        assert (mult + lti).evaluate(S, 2).kind == "banded"
        assert (lti + lti).evaluate(S, 2).kind == "diagonal"
        assert (2.0 * samp).evaluate(S, 2).kind == "rank_one"
        assert (samp + samp).evaluate(S, 2).kind == "dense"

    def test_feedback_kinds(self):
        lti, samp = _lti(), SamplingOperator(W0)
        assert FeedbackOperator(lti @ samp).evaluate(S, 2).kind == "rank_one"
        assert FeedbackOperator(lti).evaluate(S, 2).kind == "diagonal"
        assert FeedbackOperator(_mult()).evaluate(S, 2).kind == "dense"

    def test_band_merge_collapses_to_diagonal_when_only_center(self):
        only_center = MultiplicationOperator(FourierSeries([2.0], W0))
        assert only_center.evaluate(S, 2).kind == "diagonal"


class TestStructuredGridContainer:
    def test_constructors_validate(self):
        with pytest.raises(ValidationError):
            StructuredGrid.banded({}, order=1)
        with pytest.raises(ValidationError):
            StructuredGrid.rank_one(np.ones((2, 3)), np.ones((2, 5)), order=1)
        with pytest.raises(ValidationError):
            StructuredGrid.dense(np.ones((2, 3, 5)), order=1)

    def test_arrays_are_read_only(self):
        grid = SamplingOperator(W0).evaluate(S, 2)
        dense = grid.to_dense()
        assert not dense.flags.writeable
        with pytest.raises(ValueError):
            dense[0, 0, 0] = 1.0

    def test_element_grid_bounds(self):
        grid = _lti().evaluate(S, 2)
        assert grid.element_grid(0, 0).shape == S.shape
        with pytest.raises(ValidationError):
            grid.element_grid(3, 0)

    def test_shape_and_npoints(self):
        grid = _mult().evaluate(S, 3)
        assert grid.shape == (S.size, 7, 7)
        assert grid.npoints == S.size
        assert grid.size == 7

    def test_incompatible_operands_raise(self):
        a = _lti().evaluate(S, 2)
        b = _lti().evaluate(S, 3)
        with pytest.raises(ValidationError):
            a @ b
        with pytest.raises(TypeError):
            a @ np.ones((5, 5, 5))


class TestMemoFlavors:
    def test_structured_and_dense_entries_do_not_collide(self):
        op = _lti()
        dense = np.asarray(op.dense_grid(S, 2))
        structured = op.evaluate(S, 2)
        stats = memo.cache_snapshot()
        assert stats["misses"] == 2  # one entry per flavor, no cross-hit
        np.testing.assert_allclose(np.asarray(structured.to_dense()), dense)

    def test_structured_entries_hit_per_backend(self):
        op = _lti()
        first = op.evaluate(S, 2)
        again = op.evaluate(S, 2)
        assert first is again  # cached StructuredGrid object round-trips
        stats = memo.cache_snapshot()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_scalar_dense_bypasses_the_cache(self):
        op = _lti()
        op.dense(0.5j, 2)
        op.dense(0.5j, 2)
        stats = memo.cache_snapshot()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_scalar_dense_is_writable(self):
        out = _lti().dense(0.5j, 2)
        out[0, 0] = 123.0  # fresh copy, not a frozen cache entry


class _LegacyDenseGridOperator(HarmonicOperator):
    """Pre-refactor style: overrides ``_dense_grid`` directly."""

    def _dense_grid(self, s_arr, order):
        size = 2 * order + 1
        out = np.zeros((s_arr.size, size, size), dtype=complex)
        idx = np.arange(size)
        out[:, idx, idx] = s_arr[:, None]
        return out

    def fingerprint(self):
        return (type(self).__name__, self._omega0)


class _LegacyScalarOperator(HarmonicOperator):
    """Oldest style: only the scalar ``dense`` protocol."""

    def dense(self, s, order):
        size = 2 * order + 1
        return np.eye(size, dtype=complex) * s

    def fingerprint(self):
        return (type(self).__name__, self._omega0)


class _NoKernelOperator(HarmonicOperator):
    def fingerprint(self):
        return (type(self).__name__, self._omega0)


class TestLegacyOverrides:
    def test_legacy_dense_grid_override_warns_once_per_class(self):
        op = _LegacyDenseGridOperator(W0)
        with pytest.warns(DeprecationWarning, match="_dense_grid"):
            grid = op.evaluate(S, 1)
        assert grid.kind == "dense"
        np.testing.assert_allclose(
            np.asarray(grid.to_dense()), op._dense_grid(S, 1)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            grid_cache.clear()
            op.evaluate(S, 1)  # second evaluation: no second warning

    def test_legacy_scalar_override_still_evaluates(self):
        op = _LegacyScalarOperator(W0)
        grid = op.evaluate(S, 1)
        assert grid.kind == "dense"
        np.testing.assert_allclose(grid.element_grid(0, 0), S)

    def test_no_kernel_raises_type_error(self):
        with pytest.raises(TypeError, match="_structured_grid"):
            _NoKernelOperator(W0).evaluate(S, 1)


class TestObsIntegration:
    @pytest.fixture(autouse=True)
    def _isolated_obs(self):
        was_enabled = obs.enabled()
        obs.disable()
        obs.reset()
        yield
        (obs.enable if was_enabled else obs.disable)()
        obs.reset()

    def _counter_total(self, snap, prefix):
        return sum(
            entry["count"]
            for name, entry in snap["counters"].items()
            if name.startswith(prefix)
        )

    def test_evaluate_span_and_structured_counters(self):
        obs.enable()
        op = FeedbackOperator(_lti() @ SamplingOperator(W0))
        op.evaluate(S, 2)
        snap = obs.snapshot()
        assert any(name.startswith("core.evaluate") for name in snap["spans"])
        assert self._counter_total(snap, "core.structured.matmul") >= 1
        assert self._counter_total(snap, "core.structured.feedback") >= 1
        assert self._counter_total(snap, "core.rank_one.smw_closed_loop_grid") == 1

    def test_dense_feedback_fallback_is_counted(self):
        obs.enable()
        FeedbackOperator(_mult()).evaluate(S, 2)
        snap = obs.snapshot()
        assert self._counter_total(snap, "core.structured.feedback_dense") == 1

    def test_singular_rank_one_closure_flags_health_not_raises(self):
        obs.enable()
        # At order 1 the sampler's l-vectors are ones of length 3, so a
        # gain of -1/3 makes lambda = row^T column = -1 at every point:
        # 1 + lambda = 0 -> the closure divides by zero.  The dense solve
        # returns inf/nan there; the SMW path must match, not raise.
        loop = SamplingOperator(W0) * (-1.0 / 3.0)
        closed = FeedbackOperator(loop).evaluate(S, 1)
        assert not np.all(np.isfinite(closed.to_dense()))
        events = [
            name for name in obs.snapshot()["events"]
            if name.startswith("health.rank_one.near_singular")
        ]
        assert events
