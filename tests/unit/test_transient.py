"""Tests for repro.pll.transient — time-varying step-response synthesis."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.pll.design import design_typical_loop
from repro.pll.transient import (
    lti_step_response,
    reference_step_response,
    ripple_amplitude,
)
from repro.simulator.engine import BehavioralPLLSimulator, SimulationConfig

W0 = 2 * np.pi
STEP = 1e-3
T0 = 0.5


@pytest.fixture(scope="module")
def pll():
    return design_typical_loop(omega0=W0, omega_ug=0.15 * W0)


@pytest.fixture(scope="module")
def simulated(pll):
    sim = BehavioralPLLSimulator(
        pll,
        theta_ref=lambda t: STEP if t >= T0 else 0.0,
        config=SimulationConfig(cycles=40, oversample=16),
    )
    return sim.run()


@pytest.fixture(scope="module")
def synthesised(pll, simulated):
    return reference_step_response(
        pll,
        simulated.times,
        step=STEP,
        step_time=T0,
        bands=4,
        grid_points=16384,
        omega_max=60 * W0,
    )


class TestAgainstSimulator:
    def test_tracks_simulation_closely(self, simulated, synthesised):
        err = np.abs(synthesised - simulated.theta) / STEP
        t = simulated.times
        assert np.sqrt(np.mean(err**2)) < 0.005
        assert err[t > 2.0].max() < 0.02

    def test_beats_lti_by_an_order_of_magnitude(self, pll, simulated, synthesised):
        t = simulated.times
        lti = lti_step_response(pll, np.maximum(t - T0, 0.0), step=STEP)
        err_htm = np.sqrt(np.mean((synthesised - simulated.theta) ** 2))
        err_lti = np.sqrt(np.mean((lti - simulated.theta) ** 2))
        assert err_htm < err_lti / 10.0

    def test_captures_sampling_delay(self, simulated, synthesised):
        """No response before the first sampling instant after the step —
        the staircase the LTI model cannot represent."""
        t = simulated.times
        before = (t > T0 + 0.05) & (t < 1.0 - 0.05)
        assert np.max(np.abs(synthesised[before])) < 0.05 * STEP

    def test_settles_to_step(self, synthesised, simulated):
        t = simulated.times
        tail = synthesised[t > 30.0]
        assert np.allclose(tail, STEP, rtol=0.02)


class TestAPI:
    def test_step_on_sampling_instant_rejected(self, pll):
        with pytest.raises(ValidationError):
            reference_step_response(pll, [0.1, 0.2], step_time=1.0)

    def test_negative_times_rejected(self, pll):
        with pytest.raises(ValidationError):
            reference_step_response(pll, [-1.0])

    def test_bands_zero_is_smooth(self, pll):
        t = np.linspace(0.1, 20.0, 200)
        smooth = reference_step_response(pll, t, step=STEP, bands=0)
        # A baseband-only synthesis has no reference-rate ripple: its
        # spectrum above w0/2 is empty, so cycle-to-cycle variation is tiny.
        assert np.all(np.isfinite(smooth))

    def test_ripple_amplitude_positive_for_fast_loop(self, pll):
        t = np.linspace(0.6, 15.0, 300)
        amp = ripple_amplitude(pll, t, step=STEP, bands=2, grid_points=4096)
        assert amp > 0.01 * STEP

    def test_ripple_smaller_for_slow_loop(self):
        slow = design_typical_loop(omega0=W0, omega_ug=0.03 * W0)
        fast = design_typical_loop(omega0=W0, omega_ug=0.2 * W0)
        t = np.linspace(0.6, 25.0, 200)
        amp_slow = ripple_amplitude(slow, t, step=STEP, bands=2, grid_points=4096)
        amp_fast = ripple_amplitude(fast, t, step=STEP, bands=2, grid_points=4096)
        assert amp_fast > amp_slow

    def test_lti_reference(self, pll):
        t = np.linspace(0, 30, 100)
        lti = lti_step_response(pll, t, step=STEP)
        assert lti[-1] == pytest.approx(STEP, rel=0.02)
