"""Distributed-tracing unit tests: context, sink, collector, Prometheus.

Covers the tentpole's building blocks in isolation: W3C ``traceparent``
parsing (malformed headers must never crash a request), the process-global
span-event sink and its torn-tolerant readers, the Chrome-trace collector's
lane assignment and critical-path buckets, decade-histogram quantile
estimation, and the Prometheus text rendering consumed by
``GET /v1/metricsz``.
"""

import json
import math
import re
import threading

import pytest

from repro.obs import trace as obs_trace
from repro.obs.prom import sanitize_metric_name, to_prometheus
from repro.obs.registry import HistogramStat, ObsRegistry, histogram_quantiles
from repro.obs.trace import (
    TraceContext,
    build_chrome_trace,
    critical_path_summary,
    new_context,
    parse_traceparent,
)

VALID = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"


@pytest.fixture(autouse=True)
def _clean_sink():
    """Every test starts and ends with no sink and no campaign context."""
    obs_trace.close_sink()
    obs_trace.set_campaign(None)
    yield
    obs_trace.close_sink()
    obs_trace.set_campaign(None)


class TestTraceparent:
    def test_roundtrip(self):
        ctx = parse_traceparent(VALID)
        assert ctx is not None
        assert ctx.trace_id == "ab" * 16
        assert ctx.span_id == "cd" * 8
        assert ctx.traceparent() == VALID

    def test_case_and_whitespace_tolerant(self):
        assert parse_traceparent("  " + VALID.upper() + " ") is not None

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-short-cdcdcdcdcdcdcdcd-01",
            "00-" + "ab" * 16 + "-" + "cd" * 8,  # missing flags
            "ff-" + "ab" * 16 + "-" + "cd" * 8 + "-01",  # forbidden version
            "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",  # zero trace id
            "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # zero span id
            "00-" + "zz" * 16 + "-" + "cd" * 8 + "-01",  # non-hex
        ],
    )
    def test_malformed_rejected(self, header):
        assert parse_traceparent(header) is None

    def test_child_keeps_trace_links_parent(self):
        root = new_context()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_dict_roundtrip_and_malformed(self):
        ctx = new_context().child()
        assert TraceContext.from_dict(ctx.to_dict()) == ctx
        assert TraceContext.from_dict(None) is None
        assert TraceContext.from_dict({"trace_id": "xy"}) is None
        assert TraceContext.from_dict("not-a-mapping") is None

    def test_activate_and_fallbacks(self):
        ctx = new_context()
        assert obs_trace.current() is None
        with obs_trace.activate(ctx):
            assert obs_trace.current() is ctx
            assert obs_trace.context_or_campaign() is ctx
        assert obs_trace.current() is None
        obs_trace.set_campaign(ctx)
        assert obs_trace.context_or_campaign() is ctx


class TestSink:
    def test_record_event_is_noop_without_sink_or_context(self, tmp_path):
        obs_trace.record_event("x", new_context(), 0.0, 1.0)  # no sink
        path = obs_trace.configure_sink(tmp_path / "t.jsonl")
        obs_trace.record_event("x", None, 0.0, 1.0)  # no context
        assert not path.exists() or path.read_text() == ""

    def test_record_and_read_back(self, tmp_path):
        ctx = new_context()
        path = obs_trace.configure_sink(tmp_path / "trace" / "t.jsonl")
        obs_trace.record_event(
            "serve.request/margins",
            ctx,
            10.0,
            10.5,
            links=[{"trace_id": ctx.trace_id, "span_id": ctx.span_id}],
            status=200,
        )
        events = obs_trace.read_trace_events(path)
        assert len(events) == 1
        ev = events[0]
        assert ev["name"] == "serve.request/margins"
        assert ev["trace_id"] == ctx.trace_id
        assert ev["attrs"]["status"] == 200
        assert ev["links"][0]["span_id"] == ctx.span_id
        assert {"host", "worker", "pid"} <= set(ev)

    def test_directory_sink_shards_by_worker(self, tmp_path):
        path = obs_trace.configure_sink(tmp_path / "r.jsonl.trace", worker="w1")
        assert path == tmp_path / "r.jsonl.trace" / "w1.jsonl"
        obs_trace.record_event("a", new_context(), 0.0, 1.0)
        assert path.exists()

    def test_torn_tail_and_junk_lines_skipped(self, tmp_path):
        ctx = new_context()
        path = obs_trace.configure_sink(tmp_path / "t.jsonl")
        obs_trace.record_event("good", ctx, 0.0, 1.0)
        with open(path, "a") as fh:
            fh.write("not json\n")
            fh.write('{"kind": "other", "name": "wrong-kind"}\n')
            fh.write('{"kind": "trace_span", "name": "torn", "sta')  # torn tail
        events = obs_trace.read_trace_events(path)
        assert [ev["name"] for ev in events] == ["good"]

    def test_load_store_events_merges_shards_sorted(self, tmp_path):
        store = tmp_path / "r.jsonl"
        ctx = new_context()
        obs_trace.configure_sink(obs_trace.trace_dir(store), worker="w2")
        obs_trace.record_event("late", ctx, 5.0, 6.0)
        obs_trace.configure_sink(obs_trace.trace_dir(store), worker="w1")
        obs_trace.record_event("early", ctx, 1.0, 2.0)
        events = obs_trace.load_store_events(store)
        assert [ev["name"] for ev in events] == ["early", "late"]


class TestCollector:
    def _event(self, name, start, end, host="h1", worker="w1", trace="t" * 32):
        return {
            "kind": "trace_span",
            "event": "span",
            "name": name,
            "trace_id": trace,
            "span_id": "s" * 16,
            "host": host,
            "worker": worker,
            "pid": 1,
            "start": start,
            "end": end,
        }

    def test_lanes_one_process_per_host_one_thread_per_worker(self):
        doc = build_chrome_trace(
            events=[
                self._event("a", 0.0, 1.0, host="h1", worker="w1"),
                self._event("b", 1.0, 2.0, host="h1", worker="w2"),
                self._event("c", 2.0, 3.0, host="h2", worker="w3"),
            ]
        )
        meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        procs = {ev["args"]["name"] for ev in meta if ev["name"] == "process_name"}
        threads = {ev["args"]["name"] for ev in meta if ev["name"] == "thread_name"}
        assert procs == {"host:h1", "host:h2"}
        assert threads == {"w1", "w2", "w3"}
        slices = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert len(slices) == 3
        assert {ev["pid"] for ev in slices} == {1, 2}
        assert doc["otherData"]["hosts"] == ["h1", "h2"]

    def test_trace_id_filter_keeps_untagged_events(self):
        keep = self._event("keep", 0.0, 1.0, trace="a" * 32)
        drop = self._event("drop", 0.0, 1.0, trace="b" * 32)
        untagged = self._event("hb", 0.0, 0.0)
        del untagged["trace_id"]
        doc = build_chrome_trace(
            events=[keep, drop, untagged], trace_id="a" * 32
        )
        names = {
            ev["name"] for ev in doc["traceEvents"] if ev["ph"] in ("X", "i")
        }
        assert "keep" in names and "hb" in names and "drop" not in names
        assert doc["traceIds"] == ["a" * 32]

    def test_timestamps_relative_microseconds(self):
        doc = build_chrome_trace(
            events=[self._event("a", 100.0, 100.5), self._event("b", 101.0, 101.25)]
        )
        slices = {
            ev["name"]: ev for ev in doc["traceEvents"] if ev["ph"] == "X"
        }
        assert slices["a"]["ts"] == 0.0
        assert slices["a"]["dur"] == pytest.approx(0.5e6)
        assert slices["b"]["ts"] == pytest.approx(1e6)

    def test_critical_path_buckets(self):
        summary = critical_path_summary(
            [
                self._event("campaign.point", 0.0, 2.0),
                self._event("serve.batch.wait", 0.0, 1.0),
                self._event("lease.idle", 2.0, 3.0),
                self._event("serve.job.spill", 0.0, 0.5),
                self._event("lease.reclaim", 0.0, 0.25),
                self._event("unbucketed.thing", 0.0, 10.0),
            ]
        )
        buckets = summary["buckets"]
        assert buckets["evaluate"]["seconds"] == pytest.approx(2.0)
        assert buckets["queue"]["seconds"] == pytest.approx(2.0)
        assert buckets["queue"]["events"] == 2
        assert buckets["spill"]["seconds"] == pytest.approx(0.5)
        assert buckets["lease_reclaim"]["seconds"] == pytest.approx(0.25)
        assert summary["busy_seconds"] == pytest.approx(4.75)
        shares = sum(b["share"] for b in buckets.values())
        assert shares == pytest.approx(1.0, abs=1e-3)

    def test_batch_fanin_links_preserved(self):
        ev = self._event("serve.batch", 0.0, 1.0)
        ev["links"] = [{"trace_id": "x" * 32, "span_id": "y" * 16}]
        doc = build_chrome_trace(events=[ev])
        sl = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert sl["args"]["links"] == ev["links"]


class TestQuantiles:
    def _hist(self, values):
        hist = HistogramStat("h", {})
        for value in values:
            hist.observe(value)
        return hist

    def test_empty(self):
        assert histogram_quantiles(self._hist([])) == {}

    def test_single_value_exact(self):
        q = histogram_quantiles(self._hist([0.25]))
        assert q["p50"] == pytest.approx(0.25)
        assert q["p99"] == pytest.approx(0.25)

    def test_monotonic_and_bounded(self):
        values = [10 ** (i / 20 - 3) for i in range(120)]
        q = histogram_quantiles(self._hist(values))
        assert q["p50"] <= q["p95"] <= q["p99"]
        assert min(values) <= q["p50"] <= max(values)
        assert q["p99"] <= max(values)

    def test_dict_input_with_string_bucket_keys(self):
        entry = self._hist([0.001, 0.01, 0.1, 1.0, 10.0]).to_dict()
        assert all(isinstance(k, str) for k in entry["buckets"])
        q = histogram_quantiles(entry)
        assert 0.001 <= q["p50"] <= 10.0

    def test_decade_accuracy(self):
        # 1000 samples uniform in [1, 10): the geometric mid-bucket estimate
        # must land inside the decade, near the true median ~5.5.
        values = [1.0 + 9.0 * i / 1000 for i in range(1000)]
        q = histogram_quantiles(self._hist(values))
        assert 1.0 <= q["p50"] < 10.0


PROM_LINE = re.compile(
    r"^(?:# (?:HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*.*"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})? [^ ]+)$"
)


class TestPrometheus:
    def _snapshot(self):
        registry = ObsRegistry()
        registry.record_span("serve.request/margins", {"status": "200"}, 0.5, 0.4, 1)
        registry.add("serve.batch.coalesced", 3.0, {})
        registry.observe("serve.latency.margins", 0.012, {})
        registry.observe("serve.latency.margins", 0.045, {})
        return registry.snapshot()

    def test_grammar(self):
        text = to_prometheus(self._snapshot())
        assert text.endswith("\n")
        for line in text.splitlines():
            if not line:
                continue
            assert PROM_LINE.match(line), f"bad exposition line: {line!r}"

    def test_histogram_buckets_cumulative_with_inf(self):
        text = to_prometheus(self._snapshot())
        bucket_lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_serve_latency_margins_bucket")
        ]
        assert bucket_lines, text
        counts = [float(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)  # cumulative
        assert 'le="+Inf"' in bucket_lines[-1]
        assert counts[-1] == 2.0
        les = [
            re.search(r'le="([^"]+)"', line).group(1) for line in bucket_lines
        ]
        for le in les[:-1]:
            assert math.isfinite(float(le))  # float-parseable thresholds
        assert "repro_serve_latency_margins_sum" in text
        assert "repro_serve_latency_margins_count 2" in text

    def test_span_and_counter_samples(self):
        text = to_prometheus(self._snapshot())
        assert 'repro_span_seconds_total{' in text
        assert 'path="serve.request/margins"' in text
        assert "repro_serve_batch_coalesced_total 3" in text

    def test_sanitize(self):
        assert sanitize_metric_name("serve.latency/margins") == (
            "serve_latency_margins"
        )
        assert sanitize_metric_name("0bad")[0] == "_"


class TestRegistryTraceTag:
    def test_health_event_carries_trace_id(self):
        registry = ObsRegistry()
        registry.record_event(
            "pll.unstable",
            "warning",
            2.0,
            1.0,
            {},
            message="loop gain",
            trace_id="f" * 32,
        )
        snap = registry.snapshot()
        (entry,) = snap["events"].values()
        assert entry["trace_id"] == "f" * 32
        merged = ObsRegistry()
        merged.merge(snap)
        (entry2,) = merged.snapshot()["events"].values()
        assert entry2["trace_id"] == "f" * 32


class TestSinkThreadSafety:
    def test_concurrent_writers_produce_whole_lines(self, tmp_path):
        path = obs_trace.configure_sink(tmp_path / "t.jsonl")
        ctx = new_context()

        def write_many():
            for i in range(50):
                obs_trace.record_event("spin", ctx.child(), float(i), i + 0.5, n=i)

        threads = [threading.Thread(target=write_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        raw = path.read_text().splitlines()
        assert len(raw) == 200
        for line in raw:
            json.loads(line)  # every line is complete JSON
