"""End-to-end analysis-server tests over real sockets.

Covers the PR's acceptance criteria directly: 50 concurrent
same-fingerprint requests collapse to a handful of underlying evaluations
(asserted via obs counters) while every response body stays bitwise
identical to a serial evaluation; overload answers 429 + Retry-After;
heavy stability maps spill to resumable campaign job stores (the
SIGKILL-mid-job scenario is a partially-written store that a resubmitted
request attaches to and completes without recomputing finished points).
"""

import asyncio
import json

import numpy as np
import pytest

from repro.campaign.spec import CampaignSpec, GridSpace
from repro.campaign.store import ResultStore
from repro.obs import spans as obs
from repro.serve import AnalysisServer, ServerConfig, job_id_for

DESIGN = {"ratio": 0.1, "separation": 4.0, "points": 300}


async def _request(port, method, path, body=None):
    """Minimal HTTP/1.1 client; returns (status, headers, parsed body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b""
    if body is not None:
        payload = body if isinstance(body, bytes) else json.dumps(body).encode()
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except Exception:
        pass
    head, _, rest = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(rest) if rest else None


def _run(config, scenario):
    """Start a server, run the async scenario(port, server), stop, return."""

    async def main():
        server = AnalysisServer(config)
        await server.start()
        try:
            return await scenario(server.port, server)
        finally:
            await server.stop()

    return asyncio.run(main())


class TestEndpoints:
    def test_margins_round_trip_and_cache_flag(self):
        async def scenario(port, server):
            st, _, first = await _request(
                port, "POST", "/v1/margins", {"design": DESIGN}
            )
            st2, _, second = await _request(
                port, "POST", "/v1/margins", {"design": DESIGN}
            )
            return st, first, st2, second

        st, first, st2, second = _run(ServerConfig(port=0), scenario)
        assert st == 200 and st2 == 200
        assert first["cached"] is False and second["cached"] is True
        assert first["metrics"] == second["metrics"]
        assert first["fingerprint"] == second["fingerprint"]
        assert first["metrics"]["phase_margin_eff_deg"] == pytest.approx(
            55.5, abs=2.0
        )

    def test_response_returns_requested_grid(self):
        omega = np.linspace(0.5, 3.0, 12)

        async def scenario(port, server):
            st, _, body = await _request(
                port,
                "POST",
                "/v1/response",
                {"design": DESIGN, "grid": {"omega": list(omega)}},
            )
            return st, body

        st, body = _run(ServerConfig(port=0), scenario)
        assert st == 200 and body["points"] == 12
        assert np.asarray(body["omega"]).tobytes() == omega.tobytes()
        assert len(body["h00"]["re"]) == 12
        assert all(v is not None for v in body["h00"]["re"])

    def test_noise_endpoint(self):
        async def scenario(port, server):
            return await _request(
                port, "POST", "/v1/noise", {"design": {"ratio": 0.1, "points": 48}}
            )

        st, _, body = _run(ServerConfig(port=0), scenario)
        assert st == 200
        assert {"rms_jitter", "peak_transfer", "peaking_db"} <= set(body["metrics"])

    def test_small_stability_map_runs_inline(self):
        async def scenario(port, server):
            return await _request(
                port,
                "POST",
                "/v1/stability_map",
                {
                    "space": {"separation": [3.0, 4.0], "ratio": [0.05, 0.1]},
                    "defaults": {"points": 200},
                },
            )

        st, _, body = _run(ServerConfig(port=0), scenario)
        assert st == 200
        assert body["cells"] == 4 and body["failed"] == 0
        assert len(body["records"]) == 4
        assert all(r["status"] == "ok" for r in body["records"])
        assert all("z_stable" in r["metrics"] for r in body["records"])

    def test_healthz_and_statz(self):
        async def scenario(port, server):
            st1, _, health = await _request(port, "GET", "/v1/healthz")
            await _request(port, "POST", "/v1/margins", {"design": DESIGN})
            st2, _, statz = await _request(port, "GET", "/v1/statz")
            return st1, health, st2, statz

        st1, health, st2, statz = _run(ServerConfig(port=0), scenario)
        assert st1 == 200 and health["status"] == "ok"
        assert st2 == 200
        assert statz["server"]["requests"] >= 2
        assert statz["batcher"]["underlying_calls"] == 1
        assert statz["cache"]["entries"] == 1
        assert statz["config"]["max_inflight"] == 64


class TestErrorPaths:
    def test_malformed_json_is_structured_400(self):
        async def scenario(port, server):
            st, _, body = await _request(port, "POST", "/v1/margins", b"{nope")
            st2, _, body2 = await _request(port, "POST", "/v1/margins", {"x": 1})
            st3, _, body3 = await _request(port, "GET", "/v1/nothing")
            st4, _, body4 = await _request(port, "DELETE", "/v1/margins")
            return (st, body), (st2, body2), (st3, body3), (st4, body4)

        (st, b1), (st2, b2), (st3, b3), (st4, b4) = _run(
            ServerConfig(port=0), scenario
        )
        assert st == 400 and b1["error"]["code"] == "malformed_json"
        assert st2 == 400 and b2["error"]["code"] == "missing_design"
        assert st3 == 404 and b3["error"]["code"] == "unknown_route"
        assert st4 == 405 and b4["error"]["code"] == "method_not_allowed"

    def test_oversized_body_is_413(self):
        async def scenario(port, server):
            big = b'{"pad": "' + b"x" * (1 << 20) + b'"}'
            st, _, body = await _request(port, "POST", "/v1/margins", big)
            return st, body

        st, body = _run(ServerConfig(port=0), scenario)
        assert st == 413 and body["error"]["code"] == "body_too_large"

    def test_deadline_exceeded_is_504(self):
        async def scenario(port, server):
            return await _request(
                port,
                "POST",
                "/v1/margins",
                {"design": DESIGN, "deadline_seconds": 1e-4},
            )

        st, _, body = _run(ServerConfig(port=0, batch_window=0.05), scenario)
        assert st == 504 and body["error"]["code"] == "deadline_exceeded"

    def test_jobs_disabled_is_503(self):
        async def scenario(port, server):
            return await _request(
                port,
                "POST",
                "/v1/stability_map",
                {"space": {"separation": [2.0, 4.0], "ratio": [0.05, 0.1]}},
            )

        st, _, body = _run(
            ServerConfig(port=0, spill_threshold=2, jobs_dir=None), scenario
        )
        assert st == 503 and body["error"]["code"] == "jobs_disabled"


class TestBackpressure:
    def test_overload_answers_429_with_retry_after(self):
        async def scenario(port, server):
            slow = _request(
                port, "POST", "/v1/margins", {"design": dict(DESIGN, points=500)}
            )
            slow_task = asyncio.ensure_future(slow)
            await asyncio.sleep(0.05)  # ensure it is in flight
            st, headers, body = await _request(
                port, "POST", "/v1/margins", {"design": {"ratio": 0.08}}
            )
            slow_st, _, _ = await slow_task
            return st, headers, body, slow_st, server.stats.rejected

        st, headers, body, slow_st, rejected = _run(
            ServerConfig(port=0, max_inflight=1, batch_window=0.3), scenario
        )
        assert slow_st == 200
        assert st == 429 and body["error"]["code"] == "overloaded"
        assert float(headers["retry-after"]) > 0
        assert rejected == 1


class TestCoalescing:
    def test_50_concurrent_requests_few_underlying_calls_bitwise_identical(self):
        """The tentpole acceptance test.

        Serial pass: each distinct grid evaluated alone on a fresh server.
        Concurrent pass: 50 requests (4 distinct grids, one fingerprint)
        fired together at a second fresh server.  The concurrent pass must
        use <= 5 underlying evaluations (obs-counted) and return bodies
        bitwise identical to the serial pass.
        """
        base = np.linspace(0.5, 3.0, 24)
        grids = [base, base[::2], base[::3], base[5:15]]

        async def serial(port, server):
            out = []
            for grid in grids:
                _, _, body = await _request(
                    port,
                    "POST",
                    "/v1/response",
                    {"design": DESIGN, "grid": {"omega": list(grid)}},
                )
                out.append(body)
            return out

        async def concurrent(port, server):
            bodies = await asyncio.gather(
                *(
                    _request(
                        port,
                        "POST",
                        "/v1/response",
                        {"design": DESIGN, "grid": {"omega": list(grids[i % 4])}},
                    )
                    for i in range(50)
                )
            )
            return bodies, server.batcher.stats

        serial_bodies = _run(ServerConfig(port=0, batch_window=0.0), serial)

        obs.reset()
        was_enabled = obs.enabled()
        obs.enable()
        try:
            bodies, stats = _run(
                ServerConfig(port=0, batch_window=0.1, max_inflight=128),
                concurrent,
            )
            counters = obs.snapshot()["counters"]
        finally:
            obs.reset()
            if not was_enabled:
                obs.disable()

        underlying = counters["serve.batch.underlying"]["value"]
        assert 1 <= underlying <= 5
        assert counters["serve.batch.coalesced"]["value"] > 0
        assert stats.requests == 50
        assert stats.underlying_calls == underlying

        by_grid = {tuple(b["omega"]): b for _, _, b in (r for r in bodies)}
        for i, serial_body in enumerate(serial_bodies):
            concurrent_body = by_grid[tuple(serial_body["omega"])]
            for part in ("re", "im"):
                a = np.asarray(serial_body["h00"][part])
                b = np.asarray(concurrent_body["h00"][part])
                assert a.tobytes() == b.tobytes(), f"grid {i} {part} differs"


class TestJobSpill:
    SPACE = {"separation": [2.0, 4.0], "ratio": [0.05, 0.1, 0.15]}
    DEFAULTS = {"points": 200}

    def _body(self):
        return {"space": self.SPACE, "defaults": self.DEFAULTS}

    def _spec(self):
        return CampaignSpec.create(
            name="serve-stability-map",
            space=GridSpace.of(**{k: list(v) for k, v in self.SPACE.items()}),
            task="stability_cell",
            defaults=self.DEFAULTS,
        )

    async def _poll_until_complete(self, port, job_id, timeout=60.0):
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            st, _, body = await _request(port, "GET", f"/v1/jobs/{job_id}")
            if st == 200 and body.get("complete") and not body.get("running"):
                return body
            if asyncio.get_running_loop().time() > deadline:
                raise AssertionError(f"job never completed: {body}")
            await asyncio.sleep(0.2)

    def test_spill_poll_and_results(self, tmp_path):
        async def scenario(port, server):
            st, _, body = await _request(
                port, "POST", "/v1/stability_map", self._body()
            )
            assert st == 202, body
            job_id = body["job_id"]
            assert body["poll"] == f"/v1/jobs/{job_id}"
            final = await self._poll_until_complete(port, job_id)
            st, _, with_records = await _request(
                port, "GET", f"/v1/jobs/{job_id}?results=1"
            )
            st404, _, missing = await _request(port, "GET", "/v1/jobs/zzzz")
            return body, final, with_records, st404, missing

        body, final, with_records, st404, missing = _run(
            ServerConfig(
                port=0, spill_threshold=4, jobs_dir=str(tmp_path / "jobs")
            ),
            scenario,
        )
        assert body["job_id"] == job_id_for(self._spec())
        assert final["done"] == 6 and final["failed"] == 0
        assert len(with_records["records"]) == 6
        assert st404 == 404 and missing["error"]["code"] == "unknown_job"
        # the spilled store is a normal campaign store on disk
        store = tmp_path / "jobs" / f"{body['job_id']}.jsonl"
        assert store.exists()
        assert ResultStore.open(store).status()["complete"]

    def test_killed_job_store_is_resumed_not_recomputed(self, tmp_path):
        """SIGKILL-mid-job simulation: a partial store (header + 3 of 6
        points) left by a dead server.  Resubmitting the same request
        attaches to the store, completes only the pending points, and the
        surviving records keep their original (sentinel) metrics."""
        spec = self._spec()
        jobs_dir = tmp_path / "jobs"
        jobs_dir.mkdir()
        store_path = jobs_dir / f"{job_id_for(spec)}.jsonl"
        store = ResultStore.create(store_path, spec)
        done_ids = []
        for point_id, params in list(spec.points())[:3]:
            store.append_point(
                {
                    "kind": "point",
                    "id": point_id,
                    "status": "ok",
                    "params": params,
                    "metrics": {"z_stable": 123.0},  # sentinel: not a real value
                    "elapsed": 0.0,
                }
            )
            done_ids.append(point_id)
        store.close()

        async def scenario(port, server):
            st, _, body = await _request(
                port, "POST", "/v1/stability_map", self._body()
            )
            assert st == 202, body
            final = await self._poll_until_complete(port, body["job_id"])
            st, _, with_records = await _request(
                port, "GET", f"/v1/jobs/{body['job_id']}?results=1"
            )
            return body["job_id"], final, with_records["records"]

        job_id, final, records = _run(
            ServerConfig(port=0, spill_threshold=4, jobs_dir=str(jobs_dir)),
            scenario,
        )
        assert job_id == store_path.stem  # resubmit resolved to the same store
        assert final["done"] == 6
        by_id = {r["id"]: r for r in records}
        for pid in done_ids:  # pre-crash work survived untouched
            assert by_id[pid]["metrics"]["z_stable"] == 123.0
        fresh = [r for r in records if r["id"] not in done_ids]
        assert len(fresh) == 3
        assert all(r["metrics"]["z_stable"] in (0.0, 1.0) for r in fresh)


class TestManifest:
    def test_server_manifest_written_with_config(self, tmp_path):
        async def scenario(port, server):
            return port

        manifest_file = tmp_path / "server.json"
        port = _run(
            ServerConfig(
                port=0, workers=2, max_inflight=7, manifest_path=str(manifest_file)
            ),
            scenario,
        )
        manifest = json.loads(manifest_file.read_text())
        assert manifest["kind"] == "server_manifest"
        assert manifest["port"] == port
        assert manifest["config"]["workers"] == 2
        assert manifest["config"]["max_inflight"] == 7
        assert "python" in manifest and "numpy" in manifest
