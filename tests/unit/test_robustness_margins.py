"""Tests for modulus and delay margins, incl. on the effective loop gain."""

import math

import numpy as np
import pytest

from repro._errors import ConvergenceError
from repro.lti.bode import delay_margin, modulus_margin, phase_margin
from repro.lti.transfer import TransferFunction
from repro.pll.design import design_typical_loop
from repro.pll.margins import effective_open_loop
from repro.pll.openloop import lti_open_loop

W0 = 2 * np.pi


class TestModulusMargin:
    def test_integrator_loop(self):
        """L = k/s: |1 + k/jw|^2 = 1 + (k/w)^2 > 1, infimum 1 at high w."""
        loop = TransferFunction.integrator(1.0)
        m = modulus_margin(loop, 1e-2, 1e4)
        assert m == pytest.approx(1.0, abs=1e-3)

    def test_known_second_order(self):
        # L = 1/(s (s + 1)): min |1 + L| computable numerically; check the
        # returned value is the actual minimum of a dense scan.
        loop = TransferFunction([1.0], [1.0, 1.0, 0.0])
        m = modulus_margin(loop, 1e-3, 1e3)
        grid = np.logspace(-3, 3, 20000)
        dense = np.min(np.abs(1.0 + loop.frequency_response(grid)))
        assert m == pytest.approx(dense, rel=1e-3)

    def test_bounds_classical_margins(self):
        """m <= 2 sin(PM/2), i.e. PM >= 2 asin(m/2) — the disk-margin bound
        (stable loop: gain 5 < GM boundary 8 of the triple-pole plant)."""
        loop = TransferFunction([5.0], np.polymul(np.polymul([1, 1], [1, 1]), [1, 1]))
        m = modulus_margin(loop, 1e-3, 1e3)
        pm = phase_margin(loop, 1e-3, 1e3)
        assert pm >= math.degrees(2 * math.asin(min(m / 2, 1.0))) - 1e-6

    def test_effective_gain_margin_shrinks_with_ratio(self):
        """The sampled loop's modulus margin collapses as the loop speeds
        up — same story as Fig. 7 in robust-control language."""
        margins = []
        for ratio in (0.05, 0.15, 0.25):
            pll = design_typical_loop(omega0=W0, omega_ug=ratio * W0)
            lam = effective_open_loop(pll)
            margins.append(modulus_margin(lam, 1e-3 * W0, 0.499 * W0))
        assert margins[0] > margins[1] > margins[2]
        assert margins[2] < 0.4

    def test_unstable_loop_tiny_margin(self):
        """Near the stability boundary |1 + lambda| approaches zero on axis."""
        pll = design_typical_loop(omega0=W0, omega_ug=0.27 * W0)
        lam = effective_open_loop(pll)
        assert modulus_margin(lam, 1e-3 * W0, 0.499 * W0) < 0.1


class TestDelayMargin:
    def test_integrator(self):
        """L = 1/s: wUG = 1, PM = 90 deg -> delay margin pi/2 seconds."""
        loop = TransferFunction.integrator(1.0)
        assert delay_margin(loop, 1e-2, 1e2) == pytest.approx(math.pi / 2, rel=1e-6)

    def test_no_crossover_raises(self):
        with pytest.raises(ConvergenceError):
            delay_margin(TransferFunction.gain(0.1))

    def test_consistency_with_actual_delay(self):
        """Adding ~the delay margin as a loop delay drives the effective
        phase margin toward zero."""
        from repro.blocks.delay import LoopDelay
        from repro.pll.architecture import PLL

        pll = design_typical_loop(omega0=W0, omega_ug=0.05 * W0)
        a = lti_open_loop(pll)
        tau = delay_margin(a, 1e-3 * W0, 0.5 * W0)
        delayed = PLL(
            pfd=pll.pfd,
            charge_pump=pll.charge_pump,
            filter_impedance=pll.filter_impedance,
            vco=pll.vco,
            delay=LoopDelay(0.95 * tau, W0),
        )
        from repro.pll.openloop import open_loop_callable

        pm = phase_margin(
            lambda w: np.asarray(open_loop_callable(delayed)(1j * np.asarray(w))),
            1e-3 * W0,
            0.5 * W0,
        )
        assert 0.0 < pm < 5.0

    def test_sampled_loop_delay_margin_shrinks(self):
        """Effective delay margin (on lambda) falls faster than the LTI one."""
        slow = design_typical_loop(omega0=W0, omega_ug=0.02 * W0)
        fast = design_typical_loop(omega0=W0, omega_ug=0.2 * W0)
        dm_lti_slow = delay_margin(lti_open_loop(slow), 1e-3 * W0, 0.499 * W0)
        dm_lti_fast = delay_margin(lti_open_loop(fast), 1e-3 * W0, 0.499 * W0)
        dm_eff_fast = delay_margin(effective_open_loop(fast), 1e-3 * W0, 0.499 * W0)
        # LTI: margin scales like 1/wUG; effective: additionally squeezed.
        assert dm_lti_fast < dm_lti_slow
        assert dm_eff_fast < 0.8 * dm_lti_fast
