"""TTL and byte-budget eviction of the grid-evaluation memo cache.

The serving layer keeps GridEvalCache instances alive for the process
lifetime, so beyond the LRU entry count it needs bounded memory
(``max_bytes``) and bounded staleness (``ttl_seconds``).  These tests pin
the eviction semantics: byte budgets evict oldest-first but never the
just-inserted entry, TTL expiry counts separately from evictions, and
``configure()``/``snapshot()`` round-trip the new knobs.
"""

import numpy as np

from repro.core.memo import GridEvalCache
from repro.lti.transfer import TransferFunction


class _Op:
    """Minimal fingerprintable stand-in for an operator."""

    def __init__(self, tag: str):
        self._tag = tag.encode()

    def fingerprint(self) -> bytes:
        return self._tag


def _value(points: int) -> np.ndarray:
    return np.zeros((points, 3, 3), dtype=complex)


S = 1j * np.linspace(0.1, 1.0, 4)


class TestByteBudget:
    def test_over_budget_evicts_oldest(self):
        cache = GridEvalCache(maxsize=100, max_bytes=3 * _value(4).nbytes)
        for i in range(5):
            cache.store(_Op(f"op{i}"), S, 1, _value(4))
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["evictions"] == 2
        assert stats["bytes"] <= 3 * _value(4).nbytes
        # newest survive, oldest went
        assert cache.lookup(_Op("op4"), S, 1) is not None
        assert cache.lookup(_Op("op0"), S, 1) is None

    def test_single_oversized_entry_is_kept(self):
        """The just-inserted entry is never evicted, even alone over budget —
        evicting it would thrash: every store would immediately vanish."""
        cache = GridEvalCache(maxsize=100, max_bytes=8)
        cache.store(_Op("big"), S, 1, _value(4))
        assert cache.stats()["entries"] == 1
        assert cache.lookup(_Op("big"), S, 1) is not None

    def test_lru_touch_protects_entries(self):
        cache = GridEvalCache(maxsize=100, max_bytes=2 * _value(4).nbytes)
        cache.store(_Op("a"), S, 1, _value(4))
        cache.store(_Op("b"), S, 1, _value(4))
        assert cache.lookup(_Op("a"), S, 1) is not None  # touch a
        cache.store(_Op("c"), S, 1, _value(4))  # evicts b, not a
        assert cache.lookup(_Op("a"), S, 1) is not None
        assert cache.lookup(_Op("b"), S, 1) is None


class TestTTL:
    def test_expired_entry_misses_and_counts(self, monkeypatch):
        import repro.core.memo as memo

        clock = [100.0]
        monkeypatch.setattr(memo.time, "monotonic", lambda: clock[0])
        cache = GridEvalCache(ttl_seconds=10.0)
        cache.store(_Op("x"), S, 1, _value(4))
        assert cache.lookup(_Op("x"), S, 1) is not None
        clock[0] += 11.0
        assert cache.lookup(_Op("x"), S, 1) is None
        stats = cache.stats()
        assert stats["expirations"] == 1
        assert stats["entries"] == 0

    def test_purge_expired(self, monkeypatch):
        import repro.core.memo as memo

        clock = [0.0]
        monkeypatch.setattr(memo.time, "monotonic", lambda: clock[0])
        cache = GridEvalCache(ttl_seconds=5.0)
        for i in range(3):
            cache.store(_Op(f"p{i}"), S, 1, _value(4))
        clock[0] = 6.0
        cache.store(_Op("fresh"), S, 1, _value(4))
        assert cache.purge_expired() == 3
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["expirations"] == 3

    def test_no_ttl_never_expires(self):
        cache = GridEvalCache()
        cache.store(_Op("x"), S, 1, _value(4))
        assert cache.purge_expired() == 0
        assert cache.lookup(_Op("x"), S, 1) is not None


class TestConfigureAndSnapshot:
    def test_configure_round_trips_new_knobs(self):
        cache = GridEvalCache()
        cache.configure(max_bytes=1024, ttl_seconds=2.5)
        stats = cache.stats()
        assert stats["max_bytes"] == 1024
        assert stats["ttl_seconds"] == 2.5
        cache.configure(max_bytes=None, ttl_seconds=None)
        stats = cache.stats()
        assert stats["max_bytes"] is None
        assert stats["ttl_seconds"] is None

    def test_configure_unset_leaves_knobs_alone(self):
        cache = GridEvalCache(max_bytes=512, ttl_seconds=9.0)
        cache.configure(maxsize=32)  # no byte/ttl arguments passed
        stats = cache.stats()
        assert stats["max_bytes"] == 512
        assert stats["ttl_seconds"] == 9.0

    def test_shrinking_byte_budget_evicts_immediately(self):
        cache = GridEvalCache(maxsize=100)
        for i in range(4):
            cache.store(_Op(f"s{i}"), S, 1, _value(4))
        cache.configure(max_bytes=_value(4).nbytes)
        assert cache.stats()["entries"] == 1

    def test_snapshot_includes_lifetime_fields(self):
        cache = GridEvalCache(max_bytes=2048, ttl_seconds=30.0)
        snap = cache.snapshot()
        assert snap["max_bytes"] == 2048
        assert snap["ttl_seconds"] == 30.0
        assert snap["enabled"] is True
        assert snap["expirations"] == 0


class TestFetchPath:
    def test_fetch_respects_ttl(self, monkeypatch):
        """The compute-through path recomputes after expiry (fresh object)."""
        import repro.core.memo as memo
        from repro.core.operators import LTIOperator

        clock = [0.0]
        monkeypatch.setattr(memo.time, "monotonic", lambda: clock[0])
        cache = GridEvalCache(ttl_seconds=1.0)
        op = LTIOperator(TransferFunction([1.0], [1.0, 1.0]), 2 * np.pi)
        calls = []

        def compute(s_arr, order):
            calls.append(1)
            return np.ones((s_arr.size, 3, 3), dtype=complex)

        first = cache.fetch(op, S, 1, compute)
        again = cache.fetch(op, S, 1, compute)
        assert again is first and len(calls) == 1
        clock[0] = 2.0
        refreshed = cache.fetch(op, S, 1, compute)
        assert len(calls) == 2
        assert refreshed is not first
        assert np.allclose(refreshed, first)

    def test_lookup_then_store_round_trip(self):
        cache = GridEvalCache()
        op = _Op("rt")
        assert cache.lookup(op, S, 1) is None
        cache.store(op, S, 1, _value(4))
        value = cache.lookup(op, S, 1)
        assert value is not None and not value.flags.writeable
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
