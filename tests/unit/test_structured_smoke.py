"""Tier-1 smoke for the structured-evaluation benchmark.

Runs ``benchmarks/bench_structured.py`` machinery on a tiny grid so every
CI pass exercises the structured-vs-dense-oracle comparison end to end,
failing if the two paths diverge beyond 1e-9 relative or the closed loop
loses its rank-one tag.  The full-size speedup assertion stays in the
benchmark itself (timing on a loaded CI box is not a correctness signal;
agreement and structure are).
"""

import importlib.util
import sys
from pathlib import Path

import numpy as np

_BENCH_PATH = Path(__file__).parents[2] / "benchmarks" / "bench_structured.py"


def _load_bench():
    name = "bench_structured_smoke_target"
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(name, _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def test_bench_module_exists():
    assert _BENCH_PATH.is_file()


def test_structured_and_dense_paths_agree():
    bench = _load_bench()
    result = bench.measure(points=16, order=4, repeats=1)
    assert result.structure == "rank_one", result.summary()
    assert result.max_rel_err < 1e-9, result.summary()
    assert result.points == 16 and result.order == 4
    assert result.dense_seconds > 0 and result.structured_seconds > 0
    assert np.isfinite(result.speedup)
    assert "max rel err" in result.summary()


def test_stacks_elementwise_equal_on_tiny_grid():
    bench = _load_bench()
    op, omega0 = bench.closed_loop_operator()
    s_arr = 1j * np.linspace(0.05, 0.45, 8) * omega0
    structured = np.asarray(bench.structured_stack(op, s_arr, 3).to_dense())
    reference = bench.dense_stack(op, s_arr, 3)
    scale = float(np.max(np.abs(reference)))
    assert np.allclose(structured, reference, rtol=1e-12, atol=1e-12 * scale)
