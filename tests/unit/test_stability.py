"""Tests for repro.lti.stability: Hurwitz, Routh, Nyquist."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.lti.stability import (
    hurwitz_stable,
    nyquist_encirclements,
    routh_rhp_count,
    routh_table,
)
from repro.lti.transfer import TransferFunction


class TestHurwitz:
    def test_stable_second_order(self):
        assert hurwitz_stable([1.0, 2.0, 1.0])

    def test_unstable(self):
        assert not hurwitz_stable([1.0, -3.0, 2.0])

    def test_marginal_integrator_counts_unstable(self):
        assert not hurwitz_stable([1.0, 0.0])

    def test_margin_parameter(self):
        # pole at -0.5: stable absolutely, not with margin 1.0
        assert hurwitz_stable([1.0, 0.5])
        assert not hurwitz_stable([1.0, 0.5], margin=1.0)

    def test_constant_polynomial_stable(self):
        assert hurwitz_stable([5.0])

    def test_zero_polynomial_rejected(self):
        with pytest.raises(ValidationError):
            hurwitz_stable([0.0])


class TestRouth:
    def test_table_shape(self):
        table = routh_table([1.0, 2.0, 3.0, 4.0])
        assert table.shape == (4, 2)

    def test_stable_has_no_sign_changes(self):
        # (s+1)(s+2)(s+3) = s^3 + 6 s^2 + 11 s + 6
        assert routh_rhp_count([1.0, 6.0, 11.0, 6.0]) == 0

    def test_unstable_counts_rhp_roots(self):
        # (s-1)(s+2)(s+3) = s^3 + 4 s^2 + 1 s - 6
        assert routh_rhp_count([1.0, 4.0, 1.0, -6.0]) == 1

    def test_two_rhp_roots(self):
        # (s-1)(s-2)(s+3) = s^3 + 0 s^2 - 7 s + 6
        assert routh_rhp_count([1.0, 0.0, -7.0, 6.0]) == 2

    def test_leading_zero_rejected(self):
        with pytest.raises(ValidationError):
            routh_table([0.0, 0.0])

    def test_agrees_with_roots_random(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            roots = rng.normal(size=4) + 1j * 0
            den = np.real(np.poly(roots))
            expected = int(np.sum(roots.real > 1e-9))
            assert routh_rhp_count(den) == expected


class TestNyquist:
    def test_stable_loop_no_encirclement(self):
        loop = TransferFunction([1.0], [1.0, 2.0, 1.0])  # |L| < 1 everywhere near -1
        summary = nyquist_encirclements(loop, points=4000)
        assert summary.encirclements == 0
        assert summary.closed_loop_stable

    def test_unstable_high_gain_three_pole(self):
        # L = 30/((s+1)^3): GM = 8/30 < 1 -> two RHP closed-loop poles.
        loop = TransferFunction([30.0], np.polymul(np.polymul([1, 1], [1, 1]), [1, 1]))
        summary = nyquist_encirclements(loop, points=20000)
        assert summary.encirclements == 2
        assert not summary.closed_loop_stable
        assert summary.closed_loop_rhp_poles == 2

    def test_matches_closed_loop_pole_count(self):
        # gain = 8 is excluded: the closed loop is exactly marginal there.
        for gain in (2.0, 5.0, 30.0, 100.0):
            loop = TransferFunction([gain], np.polymul(np.polymul([1, 1], [1, 1]), [1, 1]))
            closed_den = np.polyadd(loop.den, loop.num)
            expected = int(np.sum(np.roots(closed_den).real > 0))
            summary = nyquist_encirclements(loop, points=30000)
            assert summary.closed_loop_rhp_poles == expected

    def test_open_loop_rhp_poles_accounted(self):
        summary = nyquist_encirclements(
            TransferFunction([0.1], [1.0, 2.0, 1.0]), open_loop_rhp_poles=1
        )
        assert not summary.closed_loop_stable
