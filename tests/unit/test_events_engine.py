"""Tests for repro.simulator.events and repro.simulator.engine."""

import numpy as np
import pytest

from repro._errors import ConvergenceError, LockError, ValidationError
from repro.blocks.vco import VCO
from repro.pll.architecture import PLL
from repro.pll.design import design_typical_loop
from repro.signals.isf import ImpulseSensitivity
from repro.simulator.engine import BehavioralPLLSimulator, SimulationConfig
from repro.simulator.events import solve_phase_crossing, solve_reference_edge

W0 = 2 * np.pi


class TestSolveReferenceEdge:
    def test_zero_modulation(self):
        assert solve_reference_edge(lambda t: 0.0, 5.0) == pytest.approx(5.0)

    def test_constant_offset(self):
        t = solve_reference_edge(lambda t: 0.1, 5.0)
        assert t == pytest.approx(4.9)

    def test_sinusoidal_modulation(self):
        theta = lambda t: 0.01 * np.sin(0.5 * t)
        t = solve_reference_edge(theta, 7.0)
        assert t + theta(t) == pytest.approx(7.0, abs=1e-12)

    def test_divergent_modulation_raises(self):
        with pytest.raises(ConvergenceError):
            solve_reference_edge(lambda t: 2.0 * t, 5.0, max_iter=10)


class TestSolvePhaseCrossing:
    def test_linear_phase(self):
        # theta(t) = 0.1 t: crossing of t + 0.1 t = 2 at t = 2/1.1
        theta = lambda t: 0.1 * t
        rate = lambda t: 0.1
        t = solve_phase_crossing(theta, rate, 2.0, 0.0, 5.0)
        assert t == pytest.approx(2.0 / 1.1, rel=1e-10)

    def test_no_crossing_returns_none(self):
        theta = lambda t: 0.0
        rate = lambda t: 0.0
        assert solve_phase_crossing(theta, rate, 10.0, 0.0, 5.0) is None

    def test_passed_crossing_rejected(self):
        theta = lambda t: 0.0
        rate = lambda t: 0.0
        with pytest.raises(ValidationError):
            solve_phase_crossing(theta, rate, 1.0, 2.0, 5.0)

    def test_empty_bracket_rejected(self):
        with pytest.raises(ValidationError):
            solve_phase_crossing(lambda t: 0.0, lambda t: 0.0, 1.0, 5.0, 2.0)


@pytest.fixture(scope="module")
def locked_pll():
    return design_typical_loop(omega0=W0, omega_ug=0.1 * W0)


class TestEngineBasics:
    def test_locked_loop_stays_at_zero(self, locked_pll):
        sim = BehavioralPLLSimulator(locked_pll, config=SimulationConfig(cycles=20))
        result = sim.run()
        assert np.max(np.abs(result.phase_errors)) == 0.0
        assert np.max(np.abs(result.theta)) == 0.0
        assert len(result.pump_intervals) == 0

    def test_recording_grid(self, locked_pll):
        cfg = SimulationConfig(cycles=10, oversample=8)
        result = BehavioralPLLSimulator(locked_pll, config=cfg).run()
        assert result.times.size == 80
        assert result.sample_period == pytest.approx(1.0 / 8)
        assert result.times[-1] == pytest.approx(10.0)

    def test_edges_recorded(self, locked_pll):
        result = BehavioralPLLSimulator(
            locked_pll, config=SimulationConfig(cycles=5)
        ).run()
        assert np.allclose(result.ref_edges, np.arange(1, 6))
        assert np.allclose(result.vco_edges, np.arange(1, 6))

    def test_lptv_vco_supported(self, locked_pll):
        lptv = PLL(
            pfd=locked_pll.pfd,
            charge_pump=locked_pll.charge_pump,
            filter_impedance=locked_pll.filter_impedance,
            vco=VCO(ImpulseSensitivity.sinusoidal(1.0, 0.2, W0)),
        )
        sim = BehavioralPLLSimulator(lptv, config=SimulationConfig(cycles=10))
        result = sim.run()
        # Locked fixed point survives: v(t) * 0 = 0.
        assert np.max(np.abs(result.phase_errors)) == 0.0

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            SimulationConfig(cycles=0)
        with pytest.raises(ValidationError):
            SimulationConfig(max_phase_error=0.6)


class TestAcquisition:
    def test_frequency_offset_acquired(self, locked_pll):
        cfg = SimulationConfig(cycles=200, frequency_offset=0.01)
        result = BehavioralPLLSimulator(locked_pll, config=cfg).run()
        assert abs(result.phase_errors[0]) > abs(result.phase_errors[-1])
        assert abs(result.final_phase_error()) < 1e-6

    def test_control_voltage_settles_to_cancel_offset(self, locked_pll):
        delta = 0.01
        cfg = SimulationConfig(cycles=300, frequency_offset=delta)
        result = BehavioralPLLSimulator(locked_pll, config=cfg).run()
        v0 = float(locked_pll.vco.v0.real)
        assert result.control[-1] == pytest.approx(-delta / v0, rel=1e-2)

    def test_large_offset_loses_lock(self, locked_pll):
        cfg = SimulationConfig(cycles=100, frequency_offset=2.0)
        with pytest.raises(LockError):
            BehavioralPLLSimulator(locked_pll, config=cfg).run()

    def test_pump_intervals_signed_correctly(self, locked_pll):
        """A slow VCO (negative offset) needs UP pulses."""
        cfg = SimulationConfig(cycles=50, frequency_offset=-0.005)
        result = BehavioralPLLSimulator(locked_pll, config=cfg).run()
        from repro.simulator.pfd_behavior import PFDState

        states = {i.state for i in result.pump_intervals[:10]}
        assert states == {PFDState.UP}


class TestStepResponseAgainstTheory:
    def test_phase_step_settles(self, locked_pll):
        """A reference phase step is tracked to zero error (type-2 loop)."""
        step = 1e-3  # seconds, small-signal
        sim = BehavioralPLLSimulator(
            locked_pll,
            theta_ref=lambda t: step,
            config=SimulationConfig(cycles=150),
        )
        result = sim.run()
        assert result.theta[-1] == pytest.approx(step, rel=1e-3)

    def test_step_overshoot_near_lti_prediction(self):
        """Slow loop: behavioural overshoot matches the LTI step response."""
        from repro.baselines.lti_approx import ClassicalLTIAnalysis

        pll = design_typical_loop(omega0=W0, omega_ug=0.02 * W0)
        step = 1e-3
        sim = BehavioralPLLSimulator(
            pll, theta_ref=lambda t: step, config=SimulationConfig(cycles=400)
        )
        result = sim.run()
        sim_overshoot = np.max(result.theta) / step
        t = np.linspace(0.01, 400.0, 4000)
        lti = ClassicalLTIAnalysis(pll).phase_step_response(t)
        lti_overshoot = np.max(lti)
        assert sim_overshoot == pytest.approx(lti_overshoot, rel=0.03)


class TestNonIdealities:
    def test_leakage_creates_static_phase_offset(self, locked_pll):
        from repro.blocks.chargepump import ChargePump

        leaky = PLL(
            pfd=locked_pll.pfd,
            charge_pump=ChargePump(1e-3, leakage=1e-6),
            filter_impedance=locked_pll.filter_impedance,
            vco=locked_pll.vco,
        )
        result = BehavioralPLLSimulator(
            leaky, config=SimulationConfig(cycles=200)
        ).run()
        # Leakage discharges the filter; the loop compensates with a
        # steady-state UP pulse train -> non-zero average phase error.
        tail = result.phase_errors[-20:]
        assert np.all(np.abs(tail) > 0)

    def test_limit_cycle_past_stability_boundary(self):
        """Past the z-domain stability limit (~0.276) the small-signal
        instability saturates into a sustained limit cycle: a perturbation
        does not decay.  Below the limit the same perturbation dies out.
        This brackets the boundary behaviourally between 0.27 and 0.30,
        consistent with the linear-theory prediction."""

        def tail_error(ratio):
            pll = design_typical_loop(omega0=W0, omega_ug=ratio * W0)
            cfg = SimulationConfig(cycles=1200, frequency_offset=0.001)
            result = BehavioralPLLSimulator(pll, config=cfg).run()
            return float(np.max(np.abs(result.phase_errors[-100:])))

        assert tail_error(0.27) < 1e-9
        assert tail_error(0.30) > 1e-3

    def test_stable_fast_loop_survives(self):
        cool = design_typical_loop(omega0=W0, omega_ug=0.2 * W0)
        sim = BehavioralPLLSimulator(
            cool,
            theta_ref=lambda t: 1e-4 * np.sin(0.2 * W0 * t),
            config=SimulationConfig(cycles=500),
        )
        result = sim.run()
        assert np.max(np.abs(result.phase_errors)) < 0.01

    def test_gross_frequency_error_raises_lock_error(self):
        hot = design_typical_loop(omega0=W0, omega_ug=0.1 * W0)
        cfg = SimulationConfig(cycles=200, frequency_offset=0.8)
        with pytest.raises(LockError):
            BehavioralPLLSimulator(hot, config=cfg).run()
