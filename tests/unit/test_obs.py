"""Mechanics of the observability layer: registry, spans, hooks, reports.

The instrumented-call-site behaviour (nothing recorded when disabled,
bitwise-identical numerics) lives in ``test_obs_disabled.py``; the
campaign-scale acceptance test lives in ``test_campaign_obs.py``.
"""

import json
import time

import pytest

from repro._errors import ValidationError
from repro.obs import spans as obs
from repro.obs.registry import (
    ObsRegistry,
    bucket_key,
    merge_snapshots,
    snapshot_delta,
)
from repro.obs.report import format_summary, format_top, load_snapshot, to_json


@pytest.fixture(autouse=True)
def _isolated_obs():
    """Every test starts disabled with an empty registry, and leaves none."""
    was_enabled = obs.enabled()
    obs.disable()
    obs.reset()
    yield
    (obs.enable if was_enabled else obs.disable)()
    obs.reset()


# -- bucket keys -----------------------------------------------------------------


def test_bucket_key_without_tags_is_the_name():
    assert bucket_key("core.dense_grid", {}) == "core.dense_grid"


def test_bucket_key_sorts_tags():
    key = bucket_key("x", {"points": 200, "op": "LTIOperator"})
    assert key == "x[op=LTIOperator,points=200]"
    assert key == bucket_key("x", {"op": "LTIOperator", "points": 200})


# -- registry --------------------------------------------------------------------


def test_registry_span_counter_histogram_roundtrip():
    reg = ObsRegistry()
    reg.record_span("a/b", {"k": 1}, wall=0.5, cpu=0.25, thread_id=7)
    reg.record_span("a/b", {"k": 1}, wall=1.5, cpu=0.75, thread_id=8)
    reg.add("hits", 2.0, {})
    reg.observe("latency", 0.003, {})
    snap = reg.snapshot()
    span = snap["spans"]["a/b[k=1]"]
    assert span["count"] == 2
    assert span["wall"] == pytest.approx(2.0)
    assert span["cpu"] == pytest.approx(1.0)
    assert span["wall_min"] == pytest.approx(0.5)
    assert span["wall_max"] == pytest.approx(1.5)
    assert len(span["threads"]) == 2
    counter = snap["counters"]["hits"]
    assert counter["value"] == 2.0 and counter["count"] == 1
    hist = snap["histograms"]["latency"]
    assert hist["count"] == 1 and hist["buckets"] == {"-3": 1}
    # snapshots are JSON-safe by construction
    json.dumps(snap)


def test_registry_reset_and_is_empty():
    reg = ObsRegistry()
    assert reg.is_empty()
    reg.add("c", 1.0, {})
    assert not reg.is_empty()
    reg.reset()
    assert reg.is_empty()


def test_merge_snapshots_adds_counts_and_keeps_extrema():
    a = ObsRegistry()
    a.record_span("s", {}, wall=1.0, cpu=0.5, thread_id=1)
    b = ObsRegistry()
    b.record_span("s", {}, wall=3.0, cpu=1.0, thread_id=2)
    b.add("n", 4.0, {})
    merged = merge_snapshots(a.snapshot(), b.snapshot())
    span = merged["spans"]["s"]
    assert span["count"] == 2
    assert span["wall"] == pytest.approx(4.0)
    assert span["wall_min"] == pytest.approx(1.0)
    assert span["wall_max"] == pytest.approx(3.0)
    assert merged["counters"]["n"]["value"] == 4.0
    assert merge_snapshots(None, None)["spans"] == {}


def test_snapshot_delta_subtracts_and_drops_unchanged():
    reg = ObsRegistry()
    reg.record_span("quiet", {}, wall=1.0, cpu=1.0, thread_id=1)
    reg.add("n", 1.0, {})
    before = reg.snapshot()
    reg.add("n", 2.5, {})
    reg.record_span("busy", {}, wall=0.25, cpu=0.125, thread_id=1)
    delta = snapshot_delta(before, reg.snapshot())
    assert "quiet" not in delta["spans"]  # no activity in the window
    assert delta["spans"]["busy"]["count"] == 1
    assert delta["counters"]["n"]["value"] == pytest.approx(2.5)
    assert delta["counters"]["n"]["count"] == 1


# -- merge / delta edge cases ----------------------------------------------------


def test_merge_empty_and_none_snapshots_are_neutral():
    reg = ObsRegistry()
    reg.record_span("s", {}, wall=1.0, cpu=0.5, thread_id=1)
    reg.add("n", 2.0, {})
    snap = reg.snapshot()
    empty = ObsRegistry().snapshot()
    for merged in (
        merge_snapshots(snap, empty),
        merge_snapshots(empty, snap),
        merge_snapshots(snap, None),
        merge_snapshots(None, snap),
        merge_snapshots(snap, {}),
    ):
        assert merged["spans"]["s"]["count"] == 1
        assert merged["spans"]["s"]["wall"] == pytest.approx(1.0)
        assert merged["counters"]["n"]["value"] == 2.0
    # Neutral merges never invent event activity either.
    assert merge_snapshots(snap, empty)["events"] == {}
    assert merge_snapshots(None, {})["spans"] == {}


def test_merge_colliding_keys_across_worker_pids():
    """Worker snapshots with the same bucket keys but distinct pids must sum
    counts and union the contributing pids — the campaign merge path."""
    workers = []
    for pid, wall in ((101, 1.0), (202, 3.0), (303, 0.5)):
        reg = ObsRegistry()
        reg.record_span("campaign.point", {"task": "margins"}, wall=wall,
                        cpu=wall / 2, thread_id=1)
        reg.add("memo.hit", 2.0, {})
        snap = reg.snapshot()
        snap["pid"] = pid  # what a spawned worker would have stamped
        key = "campaign.point[task=margins]"
        snap["spans"][key]["pids"] = [pid]
        workers.append(snap)
    merged = None
    for snap in workers:
        merged = merge_snapshots(merged, snap)
    span = merged["spans"]["campaign.point[task=margins]"]
    assert span["count"] == 3
    assert span["wall"] == pytest.approx(4.5)
    assert span["wall_min"] == pytest.approx(0.5)
    assert span["wall_max"] == pytest.approx(3.0)
    assert sorted(span["pids"]) == [101, 202, 303]
    assert merged["counters"]["memo.hit"]["value"] == pytest.approx(6.0)
    assert merged["counters"]["memo.hit"]["count"] == 3


def test_snapshot_delta_against_reset_registry():
    """A worker that reset its registry mid-window must not produce negative
    deltas — activity since the reset is still reported."""
    reg = ObsRegistry()
    reg.record_span("s", {}, wall=5.0, cpu=2.0, thread_id=1)
    reg.add("n", 10.0, {})
    before = reg.snapshot()
    reg.reset()
    delta = snapshot_delta(before, reg.snapshot())
    assert delta["spans"] == {}
    assert delta["counters"] == {}
    assert delta["events"] == {}
    assert delta["events_dropped"] == 0
    # Post-reset activity on a pre-existing key cannot exceed the prior count,
    # so it is conservatively dropped rather than reported negative; activity
    # on a fresh key still surfaces.
    reg.add("n", 1.0, {})
    reg.add("fresh", 1.0, {})
    delta = snapshot_delta(before, reg.snapshot())
    assert "n" not in delta["counters"]
    assert delta["counters"]["fresh"]["count"] == 1
    assert all(e["count"] > 0 for e in delta["counters"].values())


# -- span runtime ----------------------------------------------------------------


def test_span_disabled_returns_shared_null_span():
    s1 = obs.span("x")
    s2 = obs.span("y", points=3)
    assert s1 is s2  # the shared singleton: zero allocation when off
    with s1 as inner:
        assert inner.tag(status="ok") is inner
    assert obs.registry().is_empty()


def test_nested_spans_build_slash_paths():
    obs.enable()
    with obs.span("outer"):
        with obs.span("inner", k=1):
            pass
    spans = obs.snapshot()["spans"]
    assert set(spans) == {"outer", "outer/inner[k=1]"}


def test_span_records_wall_and_cpu_and_mid_span_tags():
    obs.enable()
    with obs.span("work") as sp:
        time.sleep(0.01)
        sp.tag(status="ok")
    stat = obs.snapshot()["spans"]["work[status=ok]"]
    assert stat["count"] == 1
    assert stat["wall"] >= 0.01
    assert stat["cpu"] >= 0.0


def test_counters_and_histograms_respect_enabled_flag():
    obs.add("n", 5.0)
    obs.observe("h", 1.0)
    assert obs.registry().is_empty()
    obs.enable()
    obs.add("n", 5.0, kind="x")
    obs.observe("h", 1.0)
    snap = obs.snapshot()
    assert snap["counters"]["n[kind=x]"]["value"] == 5.0
    assert snap["histograms"]["h"]["count"] == 1


def test_delta_of_live_registry():
    obs.enable()
    obs.add("n", 1.0)
    before = obs.snapshot()
    obs.add("n", 2.0)
    delta = obs.delta(before)
    assert delta["counters"]["n"]["value"] == pytest.approx(2.0)


def test_rank_one_solves_emit_tagged_counters():
    import numpy as np

    from repro.core.rank_one import smw_closed_loop, smw_inverse_apply

    column = np.array([0.2, 0.1, 0.05], dtype=complex)
    row = np.ones(3, dtype=complex)
    smw_closed_loop(column, row)
    assert obs.registry().is_empty()  # disabled: free

    obs.enable()
    smw_closed_loop(column, row)
    smw_inverse_apply(column, row, np.eye(3, dtype=complex))
    counters = obs.snapshot()["counters"]
    assert counters["core.rank_one.smw_closed_loop[size=3]"]["count"] == 1
    assert counters["core.rank_one.smw_inverse_apply[size=3]"]["count"] == 1


# -- profiling hooks -------------------------------------------------------------


def test_hook_receives_span_events_and_is_removable():
    obs.enable()
    events = []
    obs.add_hook(events.append)
    try:
        with obs.span("hooked", k="v"):
            pass
    finally:
        obs.remove_hook(events.append)
    with obs.span("after-removal"):
        pass
    assert len(events) == 1
    event = events[0]
    assert event["type"] == "span"
    assert event["path"] == "hooked"
    assert event["tags"] == {"k": "v"}
    assert event["wall"] >= 0.0 and event["cpu"] >= 0.0


def test_hook_exceptions_are_swallowed_and_counted():
    obs.enable()

    def bad_hook(event):
        raise RuntimeError("boom")

    obs.add_hook(bad_hook)
    try:
        with obs.span("survives"):
            pass  # must not raise
    finally:
        obs.remove_hook(bad_hook)
    snap = obs.snapshot()
    assert snap["spans"]["survives"]["count"] == 1
    assert snap["counters"]["obs.hook_errors"]["value"] == 1.0


# -- reports ---------------------------------------------------------------------


def _sample_snapshot():
    reg = ObsRegistry()
    reg.record_span("core.dense_grid", {"op": "LTIOperator"}, 2.0, 1.5, 1)
    reg.record_span("campaign.point", {"status": "ok"}, 3.0, 2.0, 1)
    reg.add("memo.hit", 7.0, {})
    reg.observe("h", 0.5, {})
    return reg.snapshot()


def test_load_snapshot_accepts_pretty_printed_json(tmp_path):
    path = tmp_path / "snap.json"
    path.write_text(json.dumps(_sample_snapshot(), indent=2))
    loaded = load_snapshot(path)
    assert loaded["spans"]["campaign.point[status=ok]"]["count"] == 1


def test_load_snapshot_rejects_non_obs_sources(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(ValidationError, match="no obs source"):
        load_snapshot(missing)
    empty = tmp_path / "empty.json"
    empty.write_text("")
    with pytest.raises(ValidationError, match="empty"):
        load_snapshot(empty)
    other = tmp_path / "other.json"
    other.write_text('{"kind": "something-else"}')
    with pytest.raises(ValidationError, match="neither"):
        load_snapshot(other)
    garbage = tmp_path / "garbage.txt"
    garbage.write_text("not json at all")
    with pytest.raises(ValidationError, match="not JSON"):
        load_snapshot(garbage)


def test_format_summary_and_top():
    snap = _sample_snapshot()
    summary = format_summary(snap)
    assert "campaign.point[status=ok]" in summary
    assert "memo.hit" in summary
    top = format_top(snap, n=1, by="wall")
    assert "campaign.point[status=ok]" in top
    assert "core.dense_grid" not in top  # n=1 keeps only the hottest
    with pytest.raises(ValidationError, match="wall/cpu/count"):
        format_top(snap, by="nonsense")


def test_to_json_roundtrip():
    snap = _sample_snapshot()
    assert json.loads(to_json(snap)) == json.loads(json.dumps(snap))


# -- CLI -------------------------------------------------------------------------


def test_cli_obs_summary_top_export(tmp_path, capsys):
    from repro.cli import main

    source = tmp_path / "snap.json"
    source.write_text(json.dumps(_sample_snapshot(), indent=2))

    assert main(["obs", "summary", str(source)]) == 0
    assert "campaign.point[status=ok]" in capsys.readouterr().out

    assert main(["obs", "top", str(source), "-n", "1", "--by", "cpu"]) == 0
    assert "campaign.point" in capsys.readouterr().out

    out = tmp_path / "export.json"
    assert main(["obs", "export", str(source), "--out", str(out)]) == 0
    capsys.readouterr()
    exported = json.loads(out.read_text())
    assert exported["spans"]["campaign.point[status=ok]"]["count"] == 1

    assert main(["obs", "export", str(source), "--json"]) == 0
    printed = json.loads(capsys.readouterr().out)
    assert printed["counters"]["memo.hit"]["value"] == 7.0


def test_cli_obs_rejects_bad_source(tmp_path, capsys):
    from repro.cli import main

    assert main(["obs", "summary", str(tmp_path / "missing.json")]) == 2
    assert "no obs source" in capsys.readouterr().err
