"""Tests for repro.core.operators — lazy LPTV operators and the paper's
building-block HTM formulas (eqs. 12, 13, 19-20, 25)."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.core.operators import (
    FeedbackOperator,
    IdentityOperator,
    IsfIntegrationOperator,
    LTIOperator,
    MultiplicationOperator,
    ParallelOperator,
    SamplingOperator,
    ScaledOperator,
    SeriesOperator,
    ones_vector,
)
from repro.lti.transfer import TransferFunction
from repro.signals.fourier import FourierSeries
from repro.signals.isf import ImpulseSensitivity

W0 = 2 * np.pi


class TestIdentity:
    def test_dense(self):
        op = IdentityOperator(W0)
        assert np.allclose(op.dense(1j, 2), np.eye(5))

    def test_htm_wrapper(self):
        htm = IdentityOperator(W0).htm(0.3j, 1)
        assert htm.s == 0.3j and htm.order == 1


class TestLTIOperator:
    def test_diagonal_embedding_eq12(self):
        tf = TransferFunction([1.0], [1.0, 1.0])
        op = LTIOperator(tf, W0)
        s = 0.2j
        mat = op.dense(s, 2)
        for n in range(-2, 3):
            assert mat[n + 2, n + 2] == pytest.approx(tf(s + 1j * n * W0))
        off = mat - np.diag(np.diag(mat))
        assert np.max(np.abs(off)) == 0.0

    def test_accepts_plain_callable(self):
        op = LTIOperator(lambda s: np.exp(-s), W0)
        mat = op.dense(0.0, 1)
        assert mat[2, 2] == pytest.approx(np.exp(-1j * W0))

    def test_rejects_non_callable(self):
        with pytest.raises(ValidationError):
            LTIOperator(42, W0)


class TestMultiplicationOperator:
    def test_toeplitz_eq13(self):
        series = FourierSeries([0.3, 1.0, 0.5], W0)
        op = MultiplicationOperator(series)
        mat = op.dense(123j, 2)  # independent of s
        assert mat[2, 2] == 1.0
        assert mat[3, 2] == 0.5  # P_{1}
        assert mat[1, 2] == 0.3  # P_{-1}
        assert mat[4, 2] == 0.0  # P_{2}

    def test_s_independent(self):
        series = FourierSeries([1.0, 2.0, 3.0], W0)
        op = MultiplicationOperator(series)
        assert np.allclose(op.dense(0.0, 2), op.dense(5j, 2))


class TestSamplingOperator:
    def test_rank_one_all_ones_eq19(self):
        op = SamplingOperator(W0)
        mat = op.dense(0.7j, 3)
        assert np.allclose(mat, W0 / (2 * np.pi) * np.ones((7, 7)))

    def test_offset_phases(self):
        offset = 0.1
        op = SamplingOperator(W0, offset=offset)
        mat = op.dense(0.0, 1)
        # Kernel coefficients P_k = (1/T) exp(-j k w0 offset) on diagonals.
        expected_p1 = (W0 / (2 * np.pi)) * np.exp(-1j * W0 * offset)
        assert mat[2, 1] == pytest.approx(expected_p1)

    def test_offset_preserves_rank_one(self):
        op = SamplingOperator(W0, offset=0.23)
        svals = np.linalg.svd(op.dense(0.0, 3), compute_uv=False)
        assert svals[1] < 1e-12 * svals[0]

    def test_column_row_factorisation(self):
        op = SamplingOperator(W0, offset=0.05)
        order = 2
        outer = np.outer(op.column_vector(order), op.row_vector(order))
        assert np.allclose(op.dense(0.0, order), W0 / (2 * np.pi) * outer)


class TestIsfIntegrationOperator:
    def test_eq25_structure(self):
        isf = ImpulseSensitivity.from_coefficients([0.2j, 1.0, -0.2j], W0)
        op = IsfIntegrationOperator(isf)
        s = 0.4j
        mat = op.dense(s, 2)
        for n in range(-2, 3):
            for m in range(-2, 3):
                expected = isf.coefficient(n - m) / (s + 1j * n * W0)
                assert mat[n + 2, m + 2] == pytest.approx(complex(expected))

    def test_time_invariant_reduces_to_integrator(self):
        isf = ImpulseSensitivity.constant(2.0, W0)
        op = IsfIntegrationOperator(isf)
        s = 0.3j
        mat = op.dense(s, 1)
        tf = TransferFunction.integrator(2.0)
        diag = LTIOperator(tf, W0).dense(s, 1)
        assert np.allclose(mat, diag)


class TestComposites:
    tf1 = TransferFunction([1.0], [1.0, 1.0])
    tf2 = TransferFunction([2.0], [1.0, 3.0])

    def test_series_matches_matrix_product(self):
        a = LTIOperator(self.tf1, W0)
        b = SamplingOperator(W0)
        s = 0.2j
        assert np.allclose(
            SeriesOperator(a, b).dense(s, 2), a.dense(s, 2) @ b.dense(s, 2)
        )

    def test_matmul_sugar(self):
        a = LTIOperator(self.tf1, W0)
        b = LTIOperator(self.tf2, W0)
        assert np.allclose((a @ b).dense(1j, 1), a.dense(1j, 1) @ b.dense(1j, 1))

    def test_parallel(self):
        a = LTIOperator(self.tf1, W0)
        b = LTIOperator(self.tf2, W0)
        assert np.allclose((a + b).dense(1j, 1), a.dense(1j, 1) + b.dense(1j, 1))

    def test_scaled_and_neg(self):
        a = LTIOperator(self.tf1, W0)
        assert np.allclose((3 * a).dense(1j, 1), 3 * a.dense(1j, 1))
        assert np.allclose((-a).dense(1j, 1), -a.dense(1j, 1))

    def test_scalar_only_multiplication(self):
        a = IdentityOperator(W0)
        with pytest.raises(TypeError):
            a * a

    def test_fundamental_mismatch_rejected(self):
        a = IdentityOperator(W0)
        b = IdentityOperator(2 * W0)
        with pytest.raises(ValidationError):
            SeriesOperator(a, b)
        with pytest.raises(ValidationError):
            ParallelOperator(a, b)

    def test_lti_series_commutes(self):
        """Diagonal HTMs commute — LTI blocks can be reordered (sanity)."""
        a = LTIOperator(self.tf1, W0)
        b = LTIOperator(self.tf2, W0)
        s = 0.7j
        assert np.allclose((a @ b).dense(s, 2), (b @ a).dense(s, 2))

    def test_sampler_does_not_commute_with_lti(self):
        """Time-varying blocks do not commute — the essence of the paper."""
        a = LTIOperator(self.tf1, W0)
        p = SamplingOperator(W0)
        s = 0.2j
        assert not np.allclose((a @ p).dense(s, 2), (p @ a).dense(s, 2))


class TestFeedbackOperator:
    def test_matches_manual_closure(self):
        g = ScaledOperator(SamplingOperator(W0), 0.5)
        s = 0.3j
        order = 3
        closed = FeedbackOperator(g).dense(s, order)
        gm = g.dense(s, order)
        expected = np.linalg.solve(np.eye(2 * order + 1) + gm, gm)
        assert np.allclose(closed, expected)

    def test_element_helper(self):
        op = IdentityOperator(W0)
        assert op.element(0.5j, 0, 0) == pytest.approx(1.0)
        assert op.element(0.5j, 1, 0, order=2) == 0.0

    def test_feedback_sugar(self):
        g = ScaledOperator(IdentityOperator(W0), 1.0)
        closed = g.feedback()
        assert np.allclose(closed.dense(0.0, 1), 0.5 * np.eye(3))


class TestOnesVector:
    def test_size(self):
        assert np.allclose(ones_vector(2), np.ones(5))
