"""Tests for repro.core.aliasing — the coth closed-form aliasing sums."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.core.aliasing import (
    AliasedSum,
    coth,
    elementary_alias_sum,
    truncated_alias_sum,
)
from repro.lti.rational import RationalFunction
from repro.lti.transfer import TransferFunction

W0 = 2 * np.pi


def brute_sum(func, s, harmonics=30000):
    total = func(s)
    for m in range(1, harmonics + 1):
        total += func(s + 1j * m * W0) + func(s - 1j * m * W0)
    return total


class TestCoth:
    def test_real_argument(self):
        assert coth(1.0) == pytest.approx(1.0 / np.tanh(1.0))

    def test_odd_symmetry(self):
        z = 0.7 + 0.4j
        assert coth(-z) == pytest.approx(-coth(z))

    def test_large_argument_saturates(self):
        assert coth(500.0) == pytest.approx(1.0)
        assert coth(-500.0) == pytest.approx(-1.0)

    def test_no_overflow_for_huge_real_part(self):
        value = coth(1e6 + 3j)
        assert np.isfinite(value)

    def test_small_argument(self):
        z = 1e-6
        assert coth(z) == pytest.approx(1.0 / z + z / 3.0, rel=1e-6)

    def test_vectorized(self):
        z = np.array([0.5, 1.0 + 1j])
        out = coth(z)
        assert out.shape == (2,)
        assert out[0] == pytest.approx(1 / np.tanh(0.5))


class TestElementaryAliasSum:
    @pytest.mark.parametrize("order", [1, 2, 3, 4, 5])
    def test_matches_brute_force(self, order):
        x = 0.31 + 0.22j
        closed = elementary_alias_sum(x, W0, order)
        brute = brute_sum(lambda s: 1.0 / s**order, x)
        # Brute truncation error dominates for orders 1-2.
        assert closed == pytest.approx(brute, rel=2e-5)

    def test_known_identity_order1(self):
        """S_1(x) = (T/2) coth(T x/2) — the Mittag-Leffler expansion."""
        x = 0.5 - 0.3j
        c = np.pi / W0
        assert elementary_alias_sum(x, W0, 1) == pytest.approx(c * coth(c * x))

    def test_known_identity_order2(self):
        """S_2(x) = c^2 csch^2(c x) = c^2 (coth^2 - 1)."""
        x = 0.4 + 0.1j
        c = np.pi / W0
        y = coth(c * x)
        assert elementary_alias_sum(x, W0, 2) == pytest.approx(c**2 * (y**2 - 1))

    def test_known_identity_order3(self):
        """S_3(x) = c^3 coth csch^2."""
        x = 0.6 - 0.2j
        c = np.pi / W0
        y = coth(c * x)
        assert elementary_alias_sum(x, W0, 3) == pytest.approx(c**3 * y * (y**2 - 1))

    def test_periodicity(self):
        x = 0.2 + 0.3j
        for order in (1, 2, 3):
            assert elementary_alias_sum(x + 1j * W0, W0, order) == pytest.approx(
                elementary_alias_sum(x, W0, order), rel=1e-10
            )

    def test_vectorized(self):
        x = np.array([0.1, 0.2 + 0.1j])
        out = elementary_alias_sum(x, W0, 2)
        assert out.shape == (2,)

    def test_order_validated(self):
        with pytest.raises(ValidationError):
            elementary_alias_sum(1.0, W0, 0)


class TestAliasedSum:
    def loop_gain(self):
        # K (1 + s/wz) / (s^2 (1 + s/wp)) — the paper's shape.
        wz, wp, k = 0.25 * W0, 4.0 * W0, (0.5 * W0) ** 2
        return RationalFunction([k / wz, k], [1.0 / wp, 1.0, 0.0, 0.0])

    def test_matches_truncated(self):
        a = self.loop_gain()
        alias = AliasedSum.of(a, W0)
        s = 1j * 0.21 * W0
        closed = alias(s)
        trunc = truncated_alias_sum(a, s, W0, 5000)
        # The truncated tail decays like 1/M — agreement at the 1e-3 level.
        assert closed == pytest.approx(trunc, rel=1e-3)

    def test_truncated_converges_toward_closed(self):
        """Doubling the truncation should halve the distance to the closed form."""
        a = self.loop_gain()
        alias = AliasedSum.of(a, W0)
        s = 1j * 0.21 * W0
        closed = alias(s)
        err_coarse = abs(truncated_alias_sum(a, s, W0, 500) - closed)
        err_fine = abs(truncated_alias_sum(a, s, W0, 2000) - closed)
        assert err_fine < err_coarse / 2.0

    def test_accepts_transfer_function(self):
        tf = TransferFunction([1.0], [1.0, 1.0, 1.0])
        alias = AliasedSum.of(tf, W0)
        assert np.isfinite(alias(0.3j))

    def test_rejects_biproper(self):
        with pytest.raises(ValidationError):
            AliasedSum.of(RationalFunction([1.0, 0.0], [1.0, 1.0]), W0)

    def test_rejects_non_rational(self):
        with pytest.raises(ValidationError):
            AliasedSum.of(lambda s: 1.0 / s, W0)

    def test_periodicity(self):
        alias = AliasedSum.of(self.loop_gain(), W0)
        assert alias.is_periodic_check(0.17j * W0)

    def test_conjugate_symmetry(self):
        """Real-coefficient summand: lambda(-jw) = conj(lambda(jw))."""
        alias = AliasedSum.of(self.loop_gain(), W0)
        w = 0.23 * W0
        assert alias(-1j * w) == pytest.approx(np.conj(alias(1j * w)))

    def test_vectorized_and_jomega(self):
        alias = AliasedSum.of(self.loop_gain(), W0)
        omega = np.array([0.1, 0.2, 0.3]) * W0
        out = alias.eval_jomega(omega)
        assert out.shape == (3,)
        assert out[1] == pytest.approx(alias(1j * omega[1]))

    def test_base_poles(self):
        alias = AliasedSum.of(self.loop_gain(), W0)
        poles = alias.base_poles()
        assert any(abs(p) < 1e-6 for p in poles)
        assert any(abs(p + 4.0 * W0) < 1e-3 for p in poles)

    def test_double_pole_handled(self):
        """The double DC pole of the loop gain needs the order-2 sum."""
        a = RationalFunction([1.0], [1.0, 0.0, 0.0])  # 1/s^2
        alias = AliasedSum.of(a, W0)
        s = 0.3 + 0.1j
        brute = brute_sum(lambda x: 1.0 / x**2, s)
        assert alias(s) == pytest.approx(brute, rel=1e-4)


class TestTruncatedAliasSum:
    def test_zero_harmonics_is_plain_eval(self):
        f = RationalFunction([1.0], [1.0, 1.0])
        s = 0.5j
        assert truncated_alias_sum(f, s, W0, 0) == pytest.approx(complex(f(s)))

    def test_symmetric_pairing_converges_relative_degree_one(self):
        f = RationalFunction([1.0], [1.0, 1.0])  # 1/(s+1), relative degree 1
        s = 0.2j
        coarse = truncated_alias_sum(f, s, W0, 50)
        fine = truncated_alias_sum(f, s, W0, 5000)
        assert coarse == pytest.approx(fine, rel=1e-3)

    def test_works_with_callable(self):
        s = 0.1j
        out = truncated_alias_sum(lambda x: 1.0 / (x + 1.0) ** 2, s, W0, 500)
        exact = elementary_alias_sum(s + 1.0, W0, 2)
        assert out == pytest.approx(exact, rel=1e-3)

    def test_array_input(self):
        f = RationalFunction([1.0], [1.0, 0.5, 1.0])
        s = 1j * np.array([0.1, 0.2])
        out = truncated_alias_sum(f, s, W0, 100)
        assert out.shape == (2,)
