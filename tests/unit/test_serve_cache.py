"""Sharded serve cache: addressing, byte budgets, payload wrapping, stats."""

import numpy as np

from repro.serve.cache import Payload, ShardedGridCache

OMEGA = np.linspace(0.1, 1.0, 8)


class TestSharding:
    def test_shard_index_is_deterministic_and_in_range(self):
        cache = ShardedGridCache(shards=4)
        for fp in ("00ab12cd", "ffab12cd", "1234abcd", "deadbeef"):
            idx = cache.shard_index(fp)
            assert idx == cache.shard_index(fp)
            assert 0 <= idx < 4

    def test_non_hex_fingerprints_still_shard(self):
        cache = ShardedGridCache(shards=3)
        assert 0 <= cache.shard_index("not-hex!") < 3

    def test_same_design_lands_on_one_shard(self):
        """All variants of one fingerprint (grids, flavors) share a shard."""
        cache = ShardedGridCache(shards=8)
        fp = "0a1b2c3d4e5f0011"
        cache.store(fp, OMEGA, np.ones(8), flavor=("response",))
        cache.store(fp, None, {"pm": 60.0}, flavor=("margins",))
        occupied = [i for i, n in enumerate(cache.stats()["entries_per_shard"]) if n]
        assert occupied == [cache.shard_index(fp)]

    def test_byte_budget_splits_across_shards(self):
        cache = ShardedGridCache(shards=4, max_bytes=4000)
        assert cache.stats()["max_bytes"] == 1000


class TestLookupStore:
    def test_array_round_trip_read_only(self):
        cache = ShardedGridCache()
        value = np.linspace(0, 1, 8)
        cache.store("fp1", OMEGA, value)
        out = cache.lookup("fp1", OMEGA, flavor=None)
        assert np.array_equal(out, value)
        assert not out.flags.writeable

    def test_dict_payload_unwraps(self):
        cache = ShardedGridCache()
        cache.store("fp2", None, {"phase_margin": 55.5})
        assert cache.lookup("fp2", None) == {"phase_margin": 55.5}

    def test_flavor_separates_endpoints(self):
        cache = ShardedGridCache()
        cache.store("fp3", None, {"a": 1.0}, flavor=("margins",))
        assert cache.lookup("fp3", None, flavor=("noise",)) is None
        assert cache.lookup("fp3", None, flavor=("margins",)) == {"a": 1.0}

    def test_grid_separates_entries(self):
        cache = ShardedGridCache()
        cache.store("fp4", OMEGA, np.ones(8))
        assert cache.lookup("fp4", 2 * OMEGA) is None

    def test_fetch_computes_once(self):
        cache = ShardedGridCache()
        calls = []

        def compute():
            calls.append(1)
            return {"x": 1.0}

        assert cache.fetch("fp5", None, compute) == {"x": 1.0}
        assert cache.fetch("fp5", None, compute) == {"x": 1.0}
        assert len(calls) == 1

    def test_clear(self):
        cache = ShardedGridCache()
        cache.store("fp6", OMEGA, np.ones(8))
        cache.clear()
        assert cache.stats()["entries"] == 0


class TestPayloadAccounting:
    def test_payload_nbytes_tracks_encoded_size(self):
        small = Payload({"a": 1.0})
        big = Payload({"key": list(range(1000))})
        assert 0 < small.nbytes < big.nbytes

    def test_unencodable_payload_degrades_to_zero(self):
        assert Payload({"x": object()}).nbytes > 0  # default=str covers it
        assert Payload({1j: "bad-key"}).nbytes == 0

    def test_byte_budget_evicts_dict_payloads(self):
        blob = {"values": list(range(2000))}
        per_entry = Payload(blob).nbytes
        cache = ShardedGridCache(shards=1, max_bytes=2 * per_entry + 10)
        for i in range(5):
            cache.store(f"fp{i:02d}", None, dict(blob))
        stats = cache.stats()
        assert stats["entries"] <= 2
        assert stats["evictions"] >= 3


class TestStats:
    def test_merged_counters_and_hit_rate(self):
        cache = ShardedGridCache(shards=2)
        cache.store("aa000000", None, {"v": 1.0})
        assert cache.lookup("aa000000", None) is not None  # hit
        assert cache.lookup("bb000000", None) is None  # miss
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["shards"] == 2
        assert sum(stats["entries_per_shard"]) == stats["entries"] == 1

    def test_ttl_expiry_counts(self, monkeypatch):
        import repro.core.memo as memo

        clock = [0.0]
        monkeypatch.setattr(memo.time, "monotonic", lambda: clock[0])
        cache = ShardedGridCache(shards=2, ttl_seconds=5.0)
        cache.store("cc000000", None, {"v": 1.0})
        clock[0] = 6.0
        assert cache.lookup("cc000000", None) is None
        assert cache.stats()["expirations"] == 1

    def test_configure_forwards_to_every_shard(self):
        cache = ShardedGridCache(shards=3)
        cache.configure(ttl_seconds=9.0)
        assert cache.stats()["ttl_seconds"] == 9.0
