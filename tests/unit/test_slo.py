"""SLO definitions, burn-rate math, store evaluation, CLI gating."""

import json
import math

import pytest

from repro._errors import ValidationError
from repro.campaign import CampaignSpec, GridSpace
from repro.campaign.store import ResultStore
from repro.cli import main
from repro.obs import slo
from repro.obs import spans as obs


# -- definitions and validation ---------------------------------------------------


def test_burn_window_validation():
    with pytest.raises(ValidationError, match="positive"):
        slo.BurnWindow("w", 0.0, 60.0, 1.0)
    with pytest.raises(ValidationError, match="short window"):
        slo.BurnWindow("w", 120.0, 60.0, 1.0)
    with pytest.raises(ValidationError, match="factor"):
        slo.BurnWindow("w", 60.0, 120.0, 0.0)


def test_sli_spec_validation():
    with pytest.raises(ValidationError, match="kind"):
        slo.SLISpec(kind="vibes")
    with pytest.raises(ValidationError, match="bad"):
        slo.SLISpec(kind="error_ratio")
    with pytest.raises(ValidationError, match="histogram"):
        slo.SLISpec(kind="latency")
    with pytest.raises(ValidationError, match="threshold_seconds"):
        slo.SLISpec(kind="latency", histogram="h", threshold_seconds=-1.0)
    with pytest.raises(ValidationError, match="min_severity"):
        slo.SLISpec(kind="health_events", total=("done",), min_severity="meh")


def test_slo_definition_validation_and_budget():
    sli = slo.SLISpec(kind="error_ratio", bad=("failed",), total=("done",))
    with pytest.raises(ValidationError, match="objective"):
        slo.SLODefinition(name="x", objective=1.5, sli=sli)
    with pytest.raises(ValidationError, match="name"):
        slo.SLODefinition(name="", objective=0.99, sli=sli)
    definition = slo.SLODefinition(name="x", objective=0.99, sli=sli)
    assert definition.budget == pytest.approx(0.01)
    assert definition.windows == slo.DEFAULT_WINDOWS


def test_parse_slo_spec_round_trip_and_errors():
    spec = {
        "slos": [
            {
                "name": "avail",
                "objective": 0.995,
                "sli": {"kind": "error_ratio", "bad": ["failed"],
                        "total": ["done", "failed"]},
                "windows": [{"name": "only", "short_seconds": 60,
                             "long_seconds": 600, "factor": 2.0}],
            }
        ]
    }
    (definition,) = slo.parse_slo_spec(spec)
    assert definition.name == "avail"
    assert definition.windows[0].factor == 2.0
    with pytest.raises(ValidationError, match="slos"):
        slo.parse_slo_spec({"slos": "nope"})
    with pytest.raises(ValidationError, match="sli"):
        slo.parse_slo_spec([{"name": "x", "objective": 0.9}])
    with pytest.raises(ValidationError, match="no slos"):
        slo.parse_slo_spec([])


def test_load_slo_spec_file_errors(tmp_path):
    with pytest.raises(ValidationError, match="cannot read"):
        slo.load_slo_spec(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ValidationError, match="valid JSON"):
        slo.load_slo_spec(bad)


def test_default_slos_are_valid():
    names = [d.name for d in slo.default_campaign_slos()]
    assert names == ["campaign-success", "campaign-health"]
    names = [d.name for d in slo.default_serve_slos()]
    assert names == ["serve-availability", "serve-latency-p95"]


# -- histogram_good_count ---------------------------------------------------------


def test_histogram_good_count_whole_decades():
    # decade -2 covers [0.01, 0.1); decade -1 covers [0.1, 1).
    entry = {"count": 10, "buckets": {"-2": 6, "-1": 4}}
    assert slo.histogram_good_count(entry, 0.1) == pytest.approx(6.0)
    assert slo.histogram_good_count(entry, 1.0) == pytest.approx(10.0)
    assert slo.histogram_good_count(entry, 0.01) == pytest.approx(0.0)


def test_histogram_good_count_log_interpolates_partial_decade():
    entry = {"count": 10, "buckets": {"-1": 10}}
    # sqrt(0.1*1.0) ~ 0.316 is halfway through the decade in log space.
    mid = slo.histogram_good_count(entry, math.sqrt(0.1))
    assert mid == pytest.approx(5.0)
    assert slo.histogram_good_count(entry, 0.0) == 0.0
    assert slo.histogram_good_count({"count": 0, "buckets": {}}, 1.0) == 0.0


# -- burn-rate evaluation ---------------------------------------------------------


def _error_slo(objective=0.99, windows=None):
    return slo.SLODefinition(
        name="avail",
        objective=objective,
        sli=slo.SLISpec(kind="error_ratio", bad=("failed",),
                        total=("done", "failed")),
        windows=windows or (slo.BurnWindow("w", 60.0, 600.0, 2.0),),
    )


def test_healthy_series_does_not_breach():
    samples = [(float(t), {"done": t, "failed": 0}) for t in range(0, 1200, 60)]
    result = slo.evaluate_slos([_error_slo()], samples=samples, now=1140.0)
    assert not result["breach"]
    (report,) = result["slos"]
    assert report["windows"][0]["short"]["burn"] == 0.0


def test_breach_requires_both_windows_over():
    # 50% of recent events fail: burn 50x against a 1% budget in the short
    # window, but the long window has enough healthy history to stay low.
    samples = [(float(t), {"done": t, "failed": 0}) for t in range(0, 541, 60)]
    samples.append((600.0, {"done": 540 + 5, "failed": 5}))
    definition = _error_slo()
    result = slo.evaluate_slos([definition], samples=samples, now=600.0)
    window = result["slos"][0]["windows"][0]
    assert window["short"]["burn"] > definition.windows[0].factor
    assert window["long"]["burn"] < definition.windows[0].factor
    assert not window["breach"]
    # A sustained failure rate trips both windows.
    sustained = [
        (float(t), {"done": t // 2, "failed": t // 2}) for t in range(0, 601, 60)
    ]
    result = slo.evaluate_slos([definition], samples=sustained, now=600.0)
    assert result["breach"]


def test_short_series_clamps_to_available_span():
    # One sample, far younger than any window: baseline is zero, so the
    # single cumulative point is the whole window (the CI-store rule).
    samples = [(100.0, {"done": 1, "failed": 1})]
    result = slo.evaluate_slos([_error_slo()], samples=samples, now=100.0)
    window = result["slos"][0]["windows"][0]
    assert window["short"]["bad_fraction"] == pytest.approx(0.5)
    assert result["breach"]


def test_zero_budget_burns_infinite_on_any_failure():
    definition = _error_slo(objective=1.0)
    samples = [(0.0, {"done": 9, "failed": 1})]
    result = slo.evaluate_slos([definition], samples=samples, now=0.0)
    assert math.isinf(result["slos"][0]["windows"][0]["short"]["burn"])
    healthy = [(0.0, {"done": 9, "failed": 0})]
    result = slo.evaluate_slos([definition], samples=healthy, now=0.0)
    assert result["slos"][0]["windows"][0]["short"]["burn"] == 0.0


def test_empty_series_evaluates_clean():
    result = slo.evaluate_slos([_error_slo()])
    assert not result["breach"]
    assert result["slos"][0]["samples"] == 0


def test_latency_slo_uses_snapshots():
    definition = slo.SLODefinition(
        name="p95",
        objective=0.9,
        sli=slo.SLISpec(kind="latency", histogram="serve.latency",
                        threshold_seconds=1.0),
        windows=(slo.BurnWindow("w", 60.0, 600.0, 2.0),),
    )
    snapshot = {
        "histograms": {
            # decade 0 covers [1, 10): all 10 observations are over 1 s.
            "serve.latency[endpoint=margins]": {
                "count": 10, "buckets": {"0": 10}, "total": 20.0
            },
        }
    }
    result = slo.evaluate_slos(
        [definition], snapshots=[(0.0, snapshot)], now=0.0
    )
    assert result["slos"][0]["bad"] == pytest.approx(10.0)
    assert result["breach"]


def test_health_events_slo_counts_by_severity():
    definition = slo.SLODefinition(
        name="health",
        objective=0.9,
        sli=slo.SLISpec(kind="health_events", min_severity="error",
                        total=("done",)),
        windows=(slo.BurnWindow("w", 60.0, 600.0, 2.0),),
    )
    samples = [
        (0.0, {"done": 10, "health": {"info": 3, "warning": 5, "error": 2}}),
    ]
    result = slo.evaluate_slos([definition], samples=samples, now=0.0)
    assert result["slos"][0]["bad"] == pytest.approx(2.0)  # errors only


def test_breach_emits_health_event_when_obs_enabled():
    obs.enable()
    obs.reset()
    try:
        samples = [(0.0, {"done": 0, "failed": 10})]
        slo.evaluate_slos([_error_slo()], samples=samples, now=0.0)
        snap = obs.snapshot()
        events = snap.get("events") or {}
        assert any("obs.slo.burn" in key for key in events)
    finally:
        obs.disable()
        obs.reset()


def test_format_slo_report_mentions_state():
    samples = [(0.0, {"done": 0, "failed": 10})]
    result = slo.evaluate_slos([_error_slo()], samples=samples, now=0.0)
    text = slo.format_slo_report(result)
    assert "avail: objective 99%" in text
    assert "overall: BREACH" in text
    assert "no slos evaluated" in slo.format_slo_report({"slos": []})


# -- SLOMonitor -------------------------------------------------------------------


def test_monitor_rings_are_bounded_and_evaluate():
    monitor = slo.SLOMonitor([_error_slo()], max_samples=4)
    for t in range(8):
        monitor.sample({"done": t, "failed": 0}, now=float(t))
    assert len(monitor._samples) == 4
    result = monitor.evaluate(now=7.0)
    assert not result["breach"]


# -- evaluate_store and CLI gate --------------------------------------------------


def _write_stream(store, samples):
    lines = [json.dumps(dict(s, kind="stream")) for s in samples]
    (store.parent / (store.name + ".stream.jsonl")).write_text(
        "\n".join(lines) + "\n"
    )


def test_evaluate_store_reads_stream_samples(tmp_path):
    store = tmp_path / "c.jsonl"
    store.write_text("")  # stream carries the data; store just exists
    _write_stream(store, [
        {"time": float(t), "done": t, "failed": 0} for t in range(0, 600, 60)
    ])
    result = slo.evaluate_store(store)
    assert result["store"] == str(store)
    assert not result["breach"]


def test_evaluate_store_falls_back_to_merged_status(tmp_path):
    spec = CampaignSpec.create(
        name="slo-fallback",
        space=GridSpace.of(ratio=[0.05, 0.1], separation=[4.0]),
        task="margins",
    )
    store = ResultStore.create(tmp_path / "c.jsonl", spec)
    store.append_point({"kind": "point", "id": "p0", "status": "ok"})
    store.append_point({"kind": "point", "id": "p1", "status": "failed"})
    result = slo.evaluate_store(store.path)
    success = next(
        s for s in result["slos"] if s["name"] == "campaign-success"
    )
    assert success["bad"] == pytest.approx(1.0)
    assert success["total"] == pytest.approx(2.0)
    assert result["breach"]  # 50% failure burns any 1% budget


def test_cli_slo_gate_exit_codes(tmp_path, capsys):
    healthy = tmp_path / "healthy.jsonl"
    healthy.write_text("")
    _write_stream(healthy, [{"time": 0.0, "done": 100, "failed": 0}])
    assert main(["obs", "slo", str(healthy), "--fail-on", "breach"]) == 0
    assert "overall: ok" in capsys.readouterr().out

    broken = tmp_path / "broken.jsonl"
    broken.write_text("")
    _write_stream(broken, [{"time": 0.0, "done": 1, "failed": 1}])
    assert main(["obs", "slo", str(broken)]) == 0  # report-only never gates
    capsys.readouterr()
    assert main(["obs", "slo", str(broken), "--fail-on", "breach"]) == 1
    captured = capsys.readouterr()
    assert "breach" in captured.err

    assert main(["obs", "slo", str(tmp_path / "missing.jsonl")]) == 2
    assert capsys.readouterr().err


def test_cli_slo_json_and_custom_spec(tmp_path, capsys):
    store = tmp_path / "c.jsonl"
    store.write_text("")
    _write_stream(store, [{"time": 0.0, "ok_count": 99, "err_count": 1}])
    spec = tmp_path / "slos.json"
    spec.write_text(json.dumps({
        "slos": [{
            "name": "custom",
            "objective": 0.9,
            "sli": {"kind": "error_ratio", "bad": ["err_count"],
                    "total": ["ok_count", "err_count"]},
        }]
    }))
    code = main(["obs", "slo", str(store), "--spec", str(spec), "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert [s["name"] for s in payload["slos"]] == ["custom"]
    assert payload["slos"][0]["bad"] == 1.0
