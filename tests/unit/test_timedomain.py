"""Tests for repro.lti.timedomain against closed-form responses."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.lti.timedomain import impulse_response, step_response
from repro.lti.transfer import TransferFunction


class TestImpulse:
    def test_first_order(self):
        tf = TransferFunction([1.0], [1.0, 2.0])  # h = e^{-2t}
        t = np.linspace(0, 3, 50)
        assert np.allclose(impulse_response(tf, t), np.exp(-2 * t), rtol=1e-10)

    def test_double_pole(self):
        tf = TransferFunction([1.0], np.polymul([1.0, 1.0], [1.0, 1.0]))  # h = t e^{-t}
        t = np.linspace(0, 5, 40)
        assert np.allclose(impulse_response(tf, t), t * np.exp(-t), rtol=1e-8, atol=1e-12)

    def test_underdamped_is_real(self):
        tf = TransferFunction([1.0], [1.0, 0.4, 1.0])
        t = np.linspace(0, 10, 30)
        h = impulse_response(tf, t)
        assert np.isrealobj(h)
        wd = np.sqrt(1 - 0.04)
        expected = np.exp(-0.2 * t) * np.sin(wd * t) / wd
        assert np.allclose(h, expected, rtol=1e-8, atol=1e-12)

    def test_biproper_rejected(self):
        with pytest.raises(ValidationError):
            impulse_response(TransferFunction([1.0, 0.0], [1.0, 1.0]), [0.0])

    def test_negative_time_rejected(self):
        with pytest.raises(ValidationError):
            impulse_response(TransferFunction([1.0], [1.0, 1.0]), [-1.0])


class TestStep:
    def test_first_order(self):
        tf = TransferFunction([3.0], [1.0, 3.0])
        t = np.linspace(0, 4, 30)
        assert np.allclose(step_response(tf, t), 1 - np.exp(-3 * t), rtol=1e-9)

    def test_integrator_ramp(self):
        tf = TransferFunction.integrator(2.0)
        t = np.linspace(0, 3, 10)
        assert np.allclose(step_response(tf, t), 2 * t, atol=1e-10)

    def test_double_integrator_parabola(self):
        tf = TransferFunction([1.0], [1.0, 0.0, 0.0])
        t = np.linspace(0, 2, 10)
        assert np.allclose(step_response(tf, t), t**2 / 2, atol=1e-10)

    def test_second_order_final_value(self):
        tf = TransferFunction([4.0], [1.0, 2.0, 4.0])
        value = step_response(tf, [20.0])[0]
        assert value == pytest.approx(1.0, abs=1e-6)

    def test_biproper_step_allowed(self):
        # H = (s + 2)/(s + 1): step response 2 - e^{-t} ... check value
        tf = TransferFunction([1.0, 2.0], [1.0, 1.0])
        t = np.linspace(0, 5, 20)
        y = step_response(tf, t)
        assert np.allclose(y, 2.0 - np.exp(-t), rtol=1e-9)

    def test_improper_rejected(self):
        with pytest.raises(ValidationError):
            step_response(TransferFunction([1.0, 0.0, 0.0], [1.0, 1.0]), [0.0])

    def test_matches_statespace_simulation(self):
        tf = TransferFunction([1.0, 2.0], [1.0, 2.0, 3.0])
        ss = tf.to_statespace()
        t = np.linspace(0, 5, 200)
        _, sim = ss.simulate_held(t, np.ones_like(t))
        analytic = step_response(tf, t)
        assert np.allclose(sim, analytic, rtol=1e-9, atol=1e-10)
