"""Tests for the shared exception hierarchy and validation helpers."""

import numpy as np
import pytest

from repro._errors import (
    ConvergenceError,
    DesignError,
    LockError,
    ReproError,
    StabilityError,
    TruncationError,
    ValidationError,
)
from repro._validation import (
    as_complex_array,
    as_float_array,
    check_finite,
    check_fraction,
    check_nonnegative,
    check_odd_dimension,
    check_order,
    check_positive,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ValidationError, TruncationError, ConvergenceError, StabilityError, LockError, DesignError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise TruncationError("boom")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_converts_int(self):
        value = check_positive("x", 3)
        assert isinstance(value, float) and value == 3.0

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects(self, bad):
        with pytest.raises(ValidationError):
            check_positive("x", bad)

    def test_message_contains_name(self):
        with pytest.raises(ValidationError, match="myparam"):
            check_positive("myparam", -1)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_nonnegative("x", -1e-9)


class TestCheckFinite:
    def test_accepts_negative(self):
        assert check_finite("x", -5.0) == -5.0

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_finite("x", float("nan"))


class TestCheckOrder:
    def test_accepts_minimum(self):
        assert check_order("k", 0) == 0

    def test_respects_custom_minimum(self):
        with pytest.raises(ValidationError):
            check_order("k", 0, minimum=1)

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_order("k", 2.0)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_order("k", True)

    def test_accepts_numpy_integer(self):
        assert check_order("k", np.int64(4)) == 4


class TestCheckFraction:
    def test_accepts_half(self):
        assert check_fraction("d", 0.5) == 0.5

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.1])
    def test_rejects_boundary_and_outside(self, bad):
        with pytest.raises(ValidationError):
            check_fraction("d", bad)


class TestArrayHelpers:
    def test_complex_array_from_list(self):
        arr = as_complex_array("v", [1, 2j])
        assert arr.dtype == complex and arr.shape == (2,)

    def test_complex_array_rejects_empty(self):
        with pytest.raises(ValidationError):
            as_complex_array("v", [])

    def test_complex_array_rejects_2d(self):
        with pytest.raises(ValidationError):
            as_complex_array("v", [[1, 2], [3, 4]])

    def test_float_array_rejects_nan(self):
        with pytest.raises(ValidationError):
            as_float_array("v", [1.0, float("nan")])

    def test_float_array_scalar_promotes(self):
        arr = as_float_array("v", 3.0)
        assert arr.shape == (1,)


class TestOddDimension:
    def test_accepts_odd(self):
        assert check_odd_dimension("n", 5) == 5

    def test_rejects_even(self):
        with pytest.raises(ValidationError):
            check_odd_dimension("n", 4)

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_odd_dimension("n", 0)
