"""Tests for repro.pll.spurs — reference spurs from charge-pump leakage."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.blocks.chargepump import ChargePump
from repro.pll.architecture import PLL
from repro.pll.design import design_typical_loop
from repro.pll.spurs import (
    measure_reference_spurs,
    predict_reference_spurs,
)

W0 = 2 * np.pi


def leaky_pll(leakage, icp=1e-3, ratio=0.05):
    base = design_typical_loop(omega0=W0, omega_ug=ratio * W0, charge_pump_current=icp)
    return PLL(
        pfd=base.pfd,
        charge_pump=ChargePump(icp, leakage=leakage),
        filter_impedance=base.filter_impedance,
        vco=base.vco,
    )


class TestPrediction:
    def test_pulse_width_formula(self):
        pll = leaky_pll(leakage=1e-6)
        pred = predict_reference_spurs(pll)
        assert pred.pulse_width == pytest.approx(1e-6 / 1e-3 * pll.period)
        assert pred.static_phase_offset == pred.pulse_width

    def test_spur_levels_scale_with_leakage(self):
        small = predict_reference_spurs(leaky_pll(1e-7)).harmonics[1]
        large = predict_reference_spurs(leaky_pll(1e-6)).harmonics[1]
        assert abs(large) == pytest.approx(10 * abs(small), rel=1e-3)

    def test_harmonics_decay(self):
        pred = predict_reference_spurs(leaky_pll(1e-6), harmonics=4)
        mags = [abs(pred.harmonics[k]) for k in (1, 2, 3, 4)]
        assert all(b < a for a, b in zip(mags, mags[1:]))

    def test_spur_dbc(self):
        pred = predict_reference_spurs(leaky_pll(1e-6))
        level = pred.spur_dbc(1, carrier_frequency_hz=1.0)
        beta = 2 * np.pi * 1.0 * abs(pred.harmonics[1])
        assert level == pytest.approx(20 * np.log10(beta / 2))

    def test_spur_dbc_unknown_harmonic(self):
        pred = predict_reference_spurs(leaky_pll(1e-6), harmonics=2)
        with pytest.raises(ValidationError):
            pred.spur_dbc(5, 1.0)

    def test_no_leakage_rejected(self):
        with pytest.raises(ValidationError):
            predict_reference_spurs(leaky_pll(0.0))

    def test_gross_leakage_rejected(self):
        with pytest.raises(ValidationError):
            predict_reference_spurs(leaky_pll(0.6e-3))


class TestMeasurementAgreement:
    @pytest.fixture(scope="class")
    def pair(self):
        pll = leaky_pll(1e-6)
        return (
            predict_reference_spurs(pll, harmonics=3),
            measure_reference_spurs(pll, harmonics=3, settle_cycles=300, measure_cycles=64),
        )

    def test_static_offset(self, pair):
        pred, meas = pair
        assert meas.static_phase_offset == pytest.approx(pred.pulse_width, rel=1e-3)

    def test_fundamental_within_five_percent(self, pair):
        pred, meas = pair
        assert abs(meas.harmonics[1]) == pytest.approx(abs(pred.harmonics[1]), rel=0.05)

    def test_phase_agreement(self, pair):
        pred, meas = pair
        angle = np.angle(meas.harmonics[1] / pred.harmonics[1])
        assert abs(angle) < 0.05

    def test_higher_harmonics_within_ten_percent(self, pair):
        pred, meas = pair
        for k in (2, 3):
            assert abs(meas.harmonics[k]) == pytest.approx(
                abs(pred.harmonics[k]), rel=0.10
            )

    def test_oversample_guard(self):
        with pytest.raises(ValidationError):
            measure_reference_spurs(leaky_pll(1e-6), harmonics=20, oversample=8)


class TestMismatchInteraction:
    def test_prediction_uses_up_current(self):
        """Mismatch raises I_up, shrinking the compensating pulse width."""
        base = design_typical_loop(omega0=W0, omega_ug=0.05 * W0, charge_pump_current=1e-3)
        matched = PLL(
            pfd=base.pfd,
            charge_pump=ChargePump(1e-3, leakage=1e-6),
            filter_impedance=base.filter_impedance,
            vco=base.vco,
        )
        skewed = PLL(
            pfd=base.pfd,
            charge_pump=ChargePump(1e-3, mismatch=0.2, leakage=1e-6),
            filter_impedance=base.filter_impedance,
            vco=base.vco,
        )
        w_matched = predict_reference_spurs(matched).pulse_width
        w_skewed = predict_reference_spurs(skewed).pulse_width
        assert w_skewed == pytest.approx(w_matched / 1.1, rel=1e-9)

    def test_mismatch_measured_offset_follows_prediction(self):
        base = design_typical_loop(omega0=W0, omega_ug=0.05 * W0, charge_pump_current=1e-3)
        skewed = PLL(
            pfd=base.pfd,
            charge_pump=ChargePump(1e-3, mismatch=0.2, leakage=1e-6),
            filter_impedance=base.filter_impedance,
            vco=base.vco,
        )
        pred = predict_reference_spurs(skewed)
        meas = measure_reference_spurs(skewed, settle_cycles=300, measure_cycles=32)
        assert meas.static_phase_offset == pytest.approx(pred.pulse_width, rel=1e-2)
