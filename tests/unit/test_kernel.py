"""Tests for repro.core.kernel — HTM-to-kernel reconstruction (eqs. 1-3)."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.core.kernel import reconstruct_kernel
from repro.core.operators import (
    LTIOperator,
    MultiplicationOperator,
    SamplingOperator,
    SeriesOperator,
)
from repro.lti.timedomain import impulse_response
from repro.lti.transfer import TransferFunction
from repro.signals.fourier import FourierSeries

W0 = 2 * np.pi


@pytest.fixture(scope="module")
def lowpass():
    return TransferFunction([2.0], [1.0, 2.0])  # 2/(s+2), h(t) = 2 e^{-2t}


class TestLTIReconstruction:
    def test_central_harmonic_is_impulse_response(self, lowpass):
        op = LTIOperator(lowpass, W0)
        recon = reconstruct_kernel(op, order=1, tau_max=16.0, samples=4096)
        h0 = recon.harmonic(0)
        expected = impulse_response(lowpass, recon.tau)
        # The kernel jumps at tau = 0 (relative degree 1), so the rectangular
        # band truncation rings near the origin (Gibbs); compare past it.
        mask = (recon.tau > 0.2) & (recon.tau < 4.0)
        assert np.allclose(h0[mask].real, expected[mask], atol=2e-2)
        assert np.max(np.abs(h0.imag)) < 1e-3

    def test_other_harmonics_vanish(self, lowpass):
        op = LTIOperator(lowpass, W0)
        recon = reconstruct_kernel(op, order=1, tau_max=16.0, samples=2048)
        assert np.max(np.abs(recon.harmonic(1))) < 1e-8
        assert np.max(np.abs(recon.harmonic(-1))) < 1e-8

    def test_kernel_time_invariant(self, lowpass):
        op = LTIOperator(lowpass, W0)
        recon = reconstruct_kernel(op, order=1, tau_max=16.0, samples=2048)
        slice_a = recon.kernel(0.0)
        slice_b = recon.kernel(0.37)
        assert np.allclose(slice_a, slice_b, atol=1e-8)


class TestLPTVReconstruction:
    @pytest.fixture(scope="class")
    def modulated(self, lowpass):
        """Filter after multiplier: h(t, tau) = f(tau) p(t - tau)."""
        p = FourierSeries([0.25, 1.0, 0.25], W0)  # 1 + 0.5 cos(w0 t)
        op = SeriesOperator(LTIOperator(lowpass, W0), MultiplicationOperator(p))
        return op, p

    def test_harmonic_structure(self, modulated, lowpass):
        op, p = modulated
        recon = reconstruct_kernel(op, order=2, tau_max=16.0, samples=4096)
        # h_k(tau) = P_k f(tau) e^{-j k w0 tau}.
        f_tau = impulse_response(lowpass, recon.tau)
        mask = (recon.tau > 0.2) & (recon.tau < 3.0)
        for k in (-1, 0, 1):
            expected = complex(p.coefficient(k)) * f_tau * np.exp(
                -1j * k * W0 * recon.tau
            )
            assert np.allclose(recon.harmonic(k)[mask], expected[mask], atol=3e-2)
        assert np.max(np.abs(recon.harmonic(2))) < 1e-6

    def test_kernel_slice_formula(self, modulated, lowpass):
        op, p = modulated
        recon = reconstruct_kernel(op, order=2, tau_max=16.0, samples=4096)
        t = 0.41
        tau = np.linspace(0.05, 2.0, 17)
        slice_vals = recon.kernel(t, tau)
        expected = impulse_response(lowpass, tau) * np.asarray(p(t - tau))
        assert np.allclose(slice_vals, expected, atol=3e-2)

    def test_impulse_applied_at_different_phases(self, modulated, lowpass):
        """The LPTV hallmark: the response depends on *when* the impulse
        lands within the period."""
        op, _ = modulated
        recon = reconstruct_kernel(op, order=2, tau_max=16.0, samples=4096)
        observe = np.linspace(1.0, 2.0, 9)
        resp_a = recon.response_to_impulse_at(0.0, observe)
        resp_b = recon.response_to_impulse_at(0.5, observe + 0.5)
        assert not np.allclose(resp_a, resp_b, atol=1e-3)

    def test_causality(self, modulated):
        op, _ = modulated
        recon = reconstruct_kernel(op, order=1, tau_max=16.0, samples=2048)
        out = recon.response_to_impulse_at(5.0, np.array([4.0, 4.9]))
        assert np.allclose(out, 0.0)


class TestValidation:
    def test_memoryless_rejected(self):
        op = SamplingOperator(W0)
        with pytest.raises(ValidationError):
            reconstruct_kernel(op, order=1, tau_max=4.0, samples=256)

    def test_harmonic_bounds(self, lowpass):
        op = LTIOperator(lowpass, W0)
        recon = reconstruct_kernel(op, order=1, tau_max=8.0, samples=512)
        with pytest.raises(ValidationError):
            recon.harmonic(3)
