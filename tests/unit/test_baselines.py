"""Tests for repro.baselines — classical LTI and z-domain models."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.baselines.lti_approx import ClassicalLTIAnalysis
from repro.baselines.zdomain import (
    ZTransferFunction,
    closed_loop_z,
    sampled_open_loop,
    stability_limit_ratio,
)
from repro.blocks.delay import LoopDelay
from repro.blocks.vco import VCO
from repro.pll.architecture import PLL
from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.design import design_typical_loop
from repro.signals.isf import ImpulseSensitivity

W0 = 2 * np.pi


def designer(ratio, sep=4.0):
    return design_typical_loop(omega0=W0, omega_ug=ratio * W0, separation=sep)


class TestClassicalLTI:
    def test_unity_gain_frequency(self):
        analysis = ClassicalLTIAnalysis(designer(0.1))
        assert analysis.unity_gain_frequency() == pytest.approx(0.1 * W0, rel=1e-6)

    def test_phase_margin_matches_shape(self):
        analysis = ClassicalLTIAnalysis(designer(0.1))
        assert analysis.phase_margin_deg() == pytest.approx(61.93, abs=0.05)

    def test_closed_loop_response(self):
        pll = designer(0.1)
        analysis = ClassicalLTIAnalysis(pll)
        from repro.pll.openloop import lti_open_loop

        a = lti_open_loop(pll)
        omega = np.array([0.05]) * W0
        expected = a(1j * omega[0]) / (1 + a(1j * omega[0]))
        assert analysis.closed_loop_response(omega)[0] == pytest.approx(expected)

    def test_always_predicts_stable(self):
        """The LTI blind spot: stable verdict at every ratio (cf. Fig. 7)."""
        for ratio in (0.05, 0.2, 0.4):
            assert ClassicalLTIAnalysis(designer(ratio)).is_stable()

    def test_bandwidth_and_peaking(self):
        analysis = ClassicalLTIAnalysis(designer(0.1))
        bw = analysis.bandwidth()
        assert 0.1 * W0 < bw < 0.3 * W0
        assert 0.0 < analysis.peaking() < 3.0

    def test_phase_step_settles_to_one(self):
        analysis = ClassicalLTIAnalysis(designer(0.05))
        t_settle = 40.0 / (0.05 * W0)
        value = analysis.phase_step_response([t_settle])[0]
        assert value == pytest.approx(1.0, abs=1e-3)

    def test_error_transfer_complements(self):
        analysis = ClassicalLTIAnalysis(designer(0.1))
        s = 0.2j * W0
        assert analysis.error_transfer()(s) + analysis.closed_loop(s) == pytest.approx(1.0)

    def test_margins_report(self):
        report = ClassicalLTIAnalysis(designer(0.1)).margins()
        assert report.phase_margin_deg == pytest.approx(61.93, abs=0.05)


class TestZTransferFunction:
    def test_evaluation(self):
        g = ZTransferFunction([1.0], [1.0, -0.5], period=1.0)
        assert g(2.0) == pytest.approx(1.0 / 1.5)

    def test_at_s(self):
        g = ZTransferFunction([1.0, 0.0], [1.0, -0.5], period=1.0)
        s = 0.3j
        z = np.exp(s * 1.0)
        assert g.at_s(s) == pytest.approx(z / (z - 0.5))

    def test_frequency_response(self):
        g = ZTransferFunction([1.0, 0.0], [1.0, -0.5], period=1.0)
        omega = np.array([0.3])
        assert g.frequency_response(omega)[0] == pytest.approx(g.at_s(1j * 0.3))

    def test_stability(self):
        assert ZTransferFunction([1.0], [1.0, -0.5], 1.0).is_stable()
        assert not ZTransferFunction([1.0], [1.0, -1.5], 1.0).is_stable()

    def test_gain_only_stable(self):
        assert ZTransferFunction([2.0], [1.0], 1.0).is_stable()


class TestSampledOpenLoop:
    def test_identity_with_lambda(self):
        """The structural identity lambda(s) = G_z(e^{sT})."""
        pll = designer(0.1)
        gz = sampled_open_loop(pll)
        closed = ClosedLoopHTM(pll)
        for s in (0.11j * W0, 0.3 + 0.2j * W0, 0.05 + 0.41j * W0):
            assert gz.at_s(s) == pytest.approx(closed.effective_gain(s), rel=1e-10)

    def test_pole_structure(self):
        gz = sampled_open_loop(designer(0.1))
        poles = gz.poles()
        assert np.sum(np.abs(poles - 1.0) < 1e-6) == 2  # double pole at z=1
        assert len(poles) == 3

    def test_rejects_delay(self):
        base = designer(0.05)
        delayed = PLL(
            pfd=base.pfd,
            charge_pump=base.charge_pump,
            filter_impedance=base.filter_impedance,
            vco=base.vco,
            delay=LoopDelay(0.01, W0),
        )
        with pytest.raises(ValidationError):
            sampled_open_loop(delayed)

    def test_rejects_lptv_vco(self):
        base = designer(0.05)
        lptv = PLL(
            pfd=base.pfd,
            charge_pump=base.charge_pump,
            filter_impedance=base.filter_impedance,
            vco=VCO(ImpulseSensitivity.sinusoidal(1.0, 0.3, W0)),
        )
        with pytest.raises(ValidationError):
            sampled_open_loop(lptv)


class TestClosedLoopZ:
    def test_dc_tracking(self):
        """Type-2 discrete loop: closed-loop gain 1 at z = 1 direction."""
        cz = closed_loop_z(sampled_open_loop(designer(0.1)))
        # Evaluate just off the pole at z=1.
        assert abs(cz(np.exp(1e-5j))) == pytest.approx(1.0, abs=1e-3)

    def test_stable_at_slow_ratio(self):
        assert closed_loop_z(sampled_open_loop(designer(0.05))).is_stable()

    def test_unstable_at_fast_ratio(self):
        assert not closed_loop_z(sampled_open_loop(designer(0.32))).is_stable()

    def test_matches_htm_response_on_unit_circle(self):
        """z-domain closed loop equals H00's sampled-domain counterpart:
        G_z/(1+G_z) at z=e^{jwT} equals lambda/(1+lambda)."""
        pll = designer(0.1)
        cz = closed_loop_z(sampled_open_loop(pll))
        closed = ClosedLoopHTM(pll)
        omega = 0.13 * W0
        lam = closed.effective_gain(1j * omega)
        assert cz.frequency_response([omega])[0] == pytest.approx(
            lam / (1 + lam), rel=1e-9
        )


class TestStabilityLimit:
    def test_limit_in_expected_range(self):
        limit = stability_limit_ratio(designer)
        assert 0.2 < limit < 0.35

    def test_unstable_start_rejected(self):
        with pytest.raises(ValidationError):
            stability_limit_ratio(designer, lo=0.4)

    def test_limit_boundary_consistent(self):
        """Just inside is stable, just outside is not."""
        limit = stability_limit_ratio(designer, tol=1e-4)
        assert closed_loop_z(sampled_open_loop(designer(limit * 0.995))).is_stable()
        assert not closed_loop_z(sampled_open_loop(designer(limit * 1.01))).is_stable()
