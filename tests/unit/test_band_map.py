"""Tests for repro.experiments.band_map."""

import numpy as np
import pytest

from repro.experiments.band_map import format_table, run_band_map


@pytest.fixture(scope="module")
def result():
    return run_band_map(ratios=(0.05, 0.2), bands=2, points=60)


class TestBandMap:
    def test_shapes(self, result):
        assert result.peak_gains.shape == (2, 5)
        assert list(result.bands) == [-2, -1, 0, 1, 2]

    def test_baseband_dominates(self, result):
        for row in result.peak_gains:
            centre = row[2]
            assert centre == np.max(row)
            assert centre > 1.0  # peaking above unity in the passband

    def test_conversion_grows_with_ratio(self, result):
        slow = result.row(0.05)
        fast = result.row(0.2)
        for n in (-1, 1):
            assert fast[n] > slow[n]

    def test_conversion_decays_with_band(self, result):
        fast = result.row(0.2)
        assert fast[1] > fast[2]
        assert fast[-1] > fast[-2]

    def test_conversion_nonzero_unlike_lti(self, result):
        """Every band carries signal — the LTI map would be zero off n=0."""
        assert np.all(result.peak_gains > 1e-4)

    def test_table(self, result):
        text = format_table(result)
        assert "n=+1" in text and "LTI" in text
