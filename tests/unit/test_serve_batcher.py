"""Micro-batcher semantics: coalescing, merged-grid equivalence, failures.

The load-bearing property is *bitwise* equivalence: a request served from a
merged-grid batch must return exactly the floats a serial evaluation of its
own grid would have produced.  That holds because grid evaluation is
elementwise across frequency points, and the batcher only ever reorders
*which* call computes a point, never how it is computed.
"""

import asyncio

import numpy as np
import pytest

from repro.serve.batcher import MicroBatcher


def _eval(omega: np.ndarray) -> np.ndarray:
    """An elementwise stand-in for a grid evaluation (deterministic)."""
    return np.sin(omega) * np.exp(-0.25 * omega) + omega**2


class TestCoalescing:
    def test_concurrent_same_key_is_one_underlying_call(self):
        async def scenario():
            batcher = MicroBatcher(window=0.02)
            calls = []

            def compute(merged):
                calls.append(merged)
                return _eval(merged)

            omega = np.linspace(0.1, 1.0, 16)
            results = await asyncio.gather(
                *(batcher.submit("k", omega, compute) for _ in range(20))
            )
            return calls, results, batcher.stats

        calls, results, stats = asyncio.run(scenario())
        assert len(calls) == 1
        assert stats.underlying_calls == 1
        assert stats.requests == 20 and stats.coalesced == 19
        assert stats.to_dict()["coalescing_ratio"] == pytest.approx(19 / 20)
        for r in results:
            assert r.tobytes() == _eval(np.linspace(0.1, 1.0, 16)).tobytes()

    def test_different_keys_do_not_coalesce(self):
        async def scenario():
            batcher = MicroBatcher(window=0.01)
            calls = []

            def compute(merged):
                calls.append(1)
                return _eval(merged)

            omega = np.linspace(0.1, 1.0, 4)
            await asyncio.gather(
                batcher.submit("a", omega, compute),
                batcher.submit("b", omega, compute),
            )
            return calls

        assert len(asyncio.run(scenario())) == 2

    def test_sequential_submits_do_not_coalesce(self):
        async def scenario():
            batcher = MicroBatcher(window=0.001)
            calls = []

            def compute(merged):
                calls.append(1)
                return _eval(merged)

            omega = np.linspace(0.1, 1.0, 4)
            await batcher.submit("k", omega, compute)
            await batcher.submit("k", omega, compute)
            return calls

        assert len(asyncio.run(scenario())) == 2

    def test_max_batch_flushes_immediately(self):
        async def scenario():
            batcher = MicroBatcher(window=10.0, max_batch=3)  # huge window
            omega = np.linspace(0.1, 1.0, 4)
            results = await asyncio.wait_for(
                asyncio.gather(
                    *(batcher.submit("k", omega, _eval) for _ in range(3))
                ),
                timeout=5.0,
            )
            return results

        assert len(asyncio.run(scenario())) == 3


class TestMergedGridEquivalence:
    def test_slices_are_bitwise_identical_to_serial(self):
        """Each waiter's answer equals a direct evaluation of its own grid,
        down to the last bit — the acceptance criterion of the serving PR."""
        grids = [
            np.linspace(0.1, 1.0, 37),
            np.linspace(0.1, 1.0, 37)[::3],
            np.linspace(0.4, 2.0, 11),
            np.array([0.55]),
        ]

        async def scenario():
            batcher = MicroBatcher(window=0.02)
            return await asyncio.gather(
                *(batcher.submit("k", g, _eval) for g in grids)
            )

        results = asyncio.run(scenario())
        for grid, result in zip(grids, results):
            serial = _eval(grid)
            assert result.tobytes() == serial.tobytes()
            assert not result.flags.writeable

    def test_merged_points_counter(self):
        async def scenario():
            batcher = MicroBatcher(window=0.02)
            await asyncio.gather(
                batcher.submit("k", np.array([1.0, 2.0]), _eval),
                batcher.submit("k", np.array([2.0, 3.0]), _eval),
            )
            return batcher.stats

        stats = asyncio.run(scenario())
        assert stats.merged_points == 3  # union of {1,2} and {2,3}

    def test_exact_grid_match_shares_the_result_array(self):
        async def scenario():
            batcher = MicroBatcher(window=0.02)
            omega = np.linspace(0.1, 1.0, 8)
            a, b = await asyncio.gather(
                batcher.submit("k", omega, _eval),
                batcher.submit("k", omega.copy(), _eval),
            )
            return a, b

        a, b = asyncio.run(scenario())
        assert a is b  # zero copy for identical grids


class TestScalarMode:
    def test_all_waiters_share_one_result(self):
        async def scenario():
            batcher = MicroBatcher(window=0.02)
            calls = []

            def compute(merged):
                assert merged is None
                calls.append(1)
                return {"metric": 1.25}

            results = await asyncio.gather(
                *(batcher.submit("s", None, compute) for _ in range(5))
            )
            return calls, results

        calls, results = asyncio.run(scenario())
        assert len(calls) == 1
        assert all(r is results[0] for r in results)


class TestFailureAndCancellation:
    def test_compute_failure_propagates_to_every_waiter(self):
        async def scenario():
            batcher = MicroBatcher(window=0.02)

            def compute(merged):
                raise RuntimeError("injected evaluation failure")

            tasks = [
                asyncio.ensure_future(
                    batcher.submit("k", np.array([float(i + 1)]), compute)
                )
                for i in range(4)
            ]
            results = await asyncio.gather(*tasks, return_exceptions=True)
            return results, batcher.stats

        results, stats = asyncio.run(scenario())
        assert len(results) == 4
        assert all(isinstance(r, RuntimeError) for r in results)
        assert stats.errors == 1  # one batch failed, not four

    def test_cancelled_waiter_does_not_poison_the_batch(self):
        async def scenario():
            batcher = MicroBatcher(window=0.05)
            omega = np.linspace(0.1, 1.0, 9)
            victim = asyncio.ensure_future(batcher.submit("k", omega, _eval))
            survivor = asyncio.ensure_future(
                batcher.submit("k", omega[::2], _eval)
            )
            await asyncio.sleep(0.01)  # both joined the same open batch
            victim.cancel()
            result = await survivor
            with pytest.raises(asyncio.CancelledError):
                await victim
            return result, batcher.stats

        result, stats = asyncio.run(scenario())
        assert result.tobytes() == _eval(np.linspace(0.1, 1.0, 9)[::2]).tobytes()
        assert stats.cancelled == 1
        assert stats.underlying_calls == 1

    def test_fully_cancelled_batch_still_computes(self):
        """Work in flight completes even if every client walked away — the
        result would land in the serve cache, so it is not wasted."""

        async def scenario():
            batcher = MicroBatcher(window=0.05)
            calls = []

            def compute(merged):
                calls.append(1)
                return _eval(merged)

            task = asyncio.ensure_future(
                batcher.submit("k", np.array([0.5]), compute)
            )
            await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            await asyncio.sleep(0.2)  # let the batch run out
            return calls

        assert len(asyncio.run(scenario())) == 1
