"""Unit tests for the live-telemetry obs modules.

Covers ``repro.obs.heartbeat`` (atomic beats, tolerant reads, emitter
lifecycle), ``repro.obs.stream`` (JSONL time-series, torn-line tolerance,
fault injection: a raising sampler is swallowed + counted),
``repro.obs.resources`` (RSS probes, memory budget sentinel), and
``repro.obs.manifest`` (build/write/load/check round-trip).
"""

import json
import os
import time

import pytest

from repro.obs import heartbeat, manifest, resources, stream
from repro.obs import spans as obs


@pytest.fixture(autouse=True)
def _obs_reset():
    was_enabled = obs.enabled()
    obs.disable()
    obs.reset()
    yield
    heartbeat.stop_emitter()
    (obs.enable if was_enabled else obs.disable)()
    obs.reset()


# -- heartbeat ---------------------------------------------------------------------


class TestHeartbeat:
    def test_emitter_writes_beat_for_this_pid(self, tmp_path):
        directory = tmp_path / "beats"
        heartbeat.ensure_emitter(directory, interval=10.0)
        beats = heartbeat.read_heartbeats(directory)
        assert [b["pid"] for b in beats] == [os.getpid()]
        beat = beats[0]
        assert beat["kind"] == "heartbeat"
        assert beat["phase"] == "idle"
        assert beat["rss_bytes"] > 0

    def test_point_phase_round_trip(self, tmp_path):
        directory = tmp_path / "beats"
        heartbeat.point_started("abc123")
        heartbeat.ensure_emitter(directory, interval=10.0)
        (beat,) = heartbeat.read_heartbeats(directory)
        assert beat["phase"] == "point"
        assert beat["point_id"] == "abc123"
        assert beat["point_elapsed"] >= 0.0
        heartbeat.point_finished()
        errors = heartbeat.stop_emitter()
        assert errors == 0
        (final,) = heartbeat.read_heartbeats(directory)
        assert final["phase"] == "stopped"

    def test_counters_included_when_obs_enabled(self, tmp_path):
        obs.enable()
        obs.add("campaign.points_processed", 3.0)
        directory = tmp_path / "beats"
        heartbeat.ensure_emitter(directory, interval=10.0)
        (beat,) = heartbeat.read_heartbeats(directory)
        assert beat["counters"]["campaign.points_processed"] == 3.0

    def test_reader_skips_garbage_files(self, tmp_path):
        directory = tmp_path / "beats"
        directory.mkdir()
        (directory / "123.json").write_text('{"kind": "heartbeat", "pid": 123, "time": 1.0}')
        (directory / "456.json").write_text("{torn mid-wri")
        (directory / "789.json").write_text('["not", "a", "beat"]')
        beats = heartbeat.read_heartbeats(directory)
        assert [b["pid"] for b in beats] == [123]

    def test_missing_directory_reads_empty(self, tmp_path):
        assert heartbeat.read_heartbeats(tmp_path / "nope") == []

    def test_beat_age(self):
        beat = {"time": 100.0}
        assert heartbeat.beat_age(beat, now=103.5) == pytest.approx(3.5)
        assert heartbeat.beat_age(beat, now=99.0) == 0.0  # clock skew clamps

    def test_heartbeat_dir_is_next_to_store(self, tmp_path):
        store = tmp_path / "run.jsonl"
        assert heartbeat.heartbeat_dir(store) == tmp_path / "run.jsonl.heartbeats"


# -- stream ------------------------------------------------------------------------


class TestStream:
    def test_emits_sequenced_samples(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        emitter = stream.StreamEmitter(path, lambda: {"done": 1}, interval=0.02)
        emitter.start()
        time.sleep(0.1)
        emitter.stop()
        records = stream.read_stream(path)
        assert len(records) >= 3  # t=0 sample + periodic + final
        assert [r["seq"] for r in records] == list(range(len(records)))
        times = [r["time"] for r in records]
        assert times == sorted(times)
        assert all(r["kind"] == "stream" and r["done"] == 1 for r in records)
        assert emitter.errors == 0

    def test_raising_sampler_swallowed_and_counted(self, tmp_path):
        obs.enable()

        def bad_sample():
            raise RuntimeError("boom")

        emitter = stream.StreamEmitter(tmp_path / "m.jsonl", bad_sample, interval=0.02)
        emitter.start()
        time.sleep(0.08)
        emitter.stop()
        assert emitter.errors >= 2  # t=0 + final at minimum
        counters = obs.snapshot()["counters"]
        assert counters["campaign.stream_errors"]["value"] == emitter.errors
        assert stream.read_stream(tmp_path / "m.jsonl") == []

    def test_read_stream_skips_torn_tail(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(
            json.dumps({"kind": "stream", "seq": 0}) + "\n"
            + json.dumps({"kind": "stream", "seq": 1}) + "\n"
            + '{"kind": "stream", "seq": 2, "tru'  # SIGKILL mid-append
        )
        assert [r["seq"] for r in stream.read_stream(path)] == [0, 1]

    def test_read_missing_stream_is_empty(self, tmp_path):
        assert stream.read_stream(tmp_path / "none.jsonl") == []

    def test_requested_env_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_STREAM", raising=False)
        assert not stream.stream_requested()
        monkeypatch.setenv("REPRO_OBS_STREAM", "1")
        assert stream.stream_requested()
        monkeypatch.setenv("REPRO_OBS_STREAM", "off")
        assert not stream.stream_requested()

    def test_default_path_is_next_to_store(self, tmp_path):
        store = tmp_path / "run.jsonl"
        assert stream.stream_path(store) == tmp_path / "run.jsonl.stream.jsonl"


# -- resources ---------------------------------------------------------------------


class TestResources:
    def test_rss_probes_positive_and_consistent(self):
        peak = resources.peak_rss_bytes()
        current = resources.current_rss_bytes()
        assert peak > 0
        assert current > 0
        assert current <= peak * 1.5  # same order of magnitude

    def test_point_probe_round_trip(self):
        resources.configure(None)
        state = resources.point_probe_begin()
        mem = resources.point_probe_end(state)
        assert mem["rss_peak"] > 0
        assert mem["rss_delta"] >= 0
        assert "over_budget" not in mem

    def test_budget_sentinel_flags_and_emits(self):
        obs.enable()
        resources.configure(budget_mb=0.001)  # guaranteed exceeded
        try:
            mem = resources.point_probe_end(resources.point_probe_begin())
        finally:
            resources.configure(None)
        assert mem["over_budget"] is True
        events = obs.snapshot()["events"]
        assert "campaign.memory_budget#warning" in events

    def test_budget_silent_when_obs_disabled(self):
        resources.configure(budget_mb=0.001)
        try:
            mem = resources.point_probe_end(resources.point_probe_begin())
        finally:
            resources.configure(None)
        assert mem["over_budget"] is True  # record flag still present
        assert obs.snapshot()["events"] == {}

    def test_tracemalloc_requested_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_MEM", raising=False)
        assert not resources.tracemalloc_requested()
        monkeypatch.setenv("REPRO_OBS_MEM", "yes")
        assert resources.tracemalloc_requested()

    def test_tracemalloc_top_allocations(self, monkeypatch):
        import tracemalloc

        monkeypatch.setenv("REPRO_OBS_MEM", "1")
        was_tracing = tracemalloc.is_tracing()
        try:
            state = resources.point_probe_begin()
            ballast = [bytes(200_000) for _ in range(5)]
            mem = resources.point_probe_end(state)
            del ballast
        finally:
            if not was_tracing:
                tracemalloc.stop()
        top = mem.get("alloc_top")
        assert top, "expected tracemalloc top allocations"
        assert all({"site", "size_bytes", "count"} <= set(entry) for entry in top)
        assert max(entry["size_bytes"] for entry in top) >= 500_000


# -- manifest ----------------------------------------------------------------------


def _spec():
    from repro.campaign import CampaignSpec, ListSpace

    return CampaignSpec.create(
        name="manifest-spec",
        space=ListSpace.of([{"x": 1.0}, {"x": 2.0}]),
        task="margins",
    )


class TestManifest:
    def test_build_write_load_round_trip(self, tmp_path):
        from repro.campaign import ExecutionPolicy

        spec = _spec()
        built = manifest.build_manifest(spec, ExecutionPolicy(workers=3))
        path = manifest.manifest_path(tmp_path / "run.jsonl")
        manifest.write_manifest(path, built)
        loaded = manifest.load_manifest(path)
        assert loaded == json.loads(json.dumps(built))  # JSON-stable
        assert loaded["campaign"] == "manifest-spec"
        assert loaded["task"] == "margins"
        assert loaded["points"] == 2
        assert loaded["policy"]["workers"] == 3
        assert loaded["python"]
        assert loaded["numpy"]
        assert len(loaded["spec_hash"]) == 16

    def test_fingerprint_is_deterministic_and_sensitive(self):
        from repro.campaign import CampaignSpec, ListSpace

        a = manifest.spec_fingerprint(_spec())
        b = manifest.spec_fingerprint(_spec())
        other = CampaignSpec.create(
            name="manifest-spec",
            space=ListSpace.of([{"x": 1.0}, {"x": 3.0}]),
            task="margins",
        )
        assert a == b
        assert a != manifest.spec_fingerprint(other)

    def test_load_missing_or_corrupt_is_none(self, tmp_path):
        assert manifest.load_manifest(tmp_path / "nope.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert manifest.load_manifest(bad) is None
        wrong = tmp_path / "wrong.json"
        wrong.write_text('{"kind": "something-else"}')
        assert manifest.load_manifest(wrong) is None

    def test_check_reports_only_real_drift(self):
        current = {"spec_hash": "aa", "task": "margins", "points": 4, "python": "3.11.1"}
        same = dict(current)
        assert manifest.check_manifest(same, current) == []
        drifted = dict(current, spec_hash="bb", task="noise_summary")
        mismatches = manifest.check_manifest(drifted, current)
        assert len(mismatches) == 2
        assert any("spec_hash" in m for m in mismatches)
        # keys absent on one side are not drift (schema growth stays resumable)
        assert manifest.check_manifest({"spec_hash": "aa"}, current) == []
