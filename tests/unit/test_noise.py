"""Tests for repro.pll.noise — HTM-based noise shaping."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.pll.design import design_typical_loop
from repro.pll.noise import NoiseAnalysis, flat_psd, one_over_f2_psd

W0 = 2 * np.pi


@pytest.fixture(scope="module")
def analysis():
    return NoiseAnalysis(design_typical_loop(omega0=W0, omega_ug=0.1 * W0))


class TestTransfers:
    def test_reference_lowpass(self, analysis):
        omega = np.array([0.001, 0.45]) * W0
        gains = np.abs(analysis.reference_transfer(omega))
        assert gains[0] == pytest.approx(1.0, abs=1e-3)
        assert gains[1] < 1.0

    def test_vco_highpass(self, analysis):
        omega = np.array([0.001, 0.45]) * W0
        gains = np.abs(analysis.vco_transfer(omega))
        assert gains[0] < 0.01
        assert gains[1] > 0.3

    def test_transfers_complementary(self, analysis):
        omega = np.array([0.05, 0.2]) * W0
        total = analysis.reference_transfer(omega) + analysis.vco_transfer(omega)
        assert np.allclose(total, 1.0)

    def test_folded_gain_counts_bands(self, analysis):
        omega = np.array([0.05]) * W0
        base = analysis.folded_reference_gain(omega, bands=0)
        folded = analysis.folded_reference_gain(omega, bands=3)
        assert folded[0] == pytest.approx(7 * base[0])


class TestOutputPsd:
    def test_zero_sources_zero_output(self, analysis):
        omega = np.array([0.1]) * W0
        assert analysis.output_psd(omega)[0] == 0.0

    def test_reference_only(self, analysis):
        omega = np.array([0.01, 0.1]) * W0
        psd = analysis.output_psd(omega, reference_psd=flat_psd(1e-12))
        h = np.abs(analysis.reference_transfer(omega)) ** 2
        assert np.allclose(psd, 1e-12 * h)

    def test_vco_only_shaped(self, analysis):
        omega = np.linspace(0.01, 0.45, 5) * W0
        psd = analysis.output_psd(omega, vco_psd=one_over_f2_psd(1e-14, 0.1 * W0))
        assert np.all(psd >= 0)
        # In-band VCO noise is suppressed relative to out-of-band.
        assert psd[0] < psd[-1] * 10

    def test_sources_add(self, analysis):
        omega = np.array([0.07]) * W0
        ref = analysis.output_psd(omega, reference_psd=flat_psd(1e-12))
        vco = analysis.output_psd(omega, vco_psd=flat_psd(1e-12))
        both = analysis.output_psd(
            omega, reference_psd=flat_psd(1e-12), vco_psd=flat_psd(1e-12)
        )
        assert both[0] == pytest.approx(ref[0] + vco[0])


class TestJitter:
    def test_flat_psd_integral(self, analysis):
        omega = np.linspace(0.01, 0.4, 200) * W0
        psd = np.full(omega.size, 2 * np.pi * 1e-12)
        sigma = analysis.rms_jitter(omega, psd)
        span = omega[-1] - omega[0]
        assert sigma == pytest.approx(np.sqrt(1e-12 * span), rel=1e-6)

    def test_monotone_in_bandwidth(self, analysis):
        omega_small = np.linspace(0.01, 0.1, 100) * W0
        omega_large = np.linspace(0.01, 0.4, 400) * W0
        psd_fn = flat_psd(1e-12)
        s1 = analysis.rms_jitter(omega_small, psd_fn(omega_small))
        s2 = analysis.rms_jitter(omega_large, psd_fn(omega_large))
        assert s2 > s1

    def test_grid_checks(self, analysis):
        with pytest.raises(ValidationError):
            analysis.rms_jitter([1.0, 2.0], [1.0])
        with pytest.raises(ValidationError):
            analysis.rms_jitter([2.0, 1.0], [1.0, 1.0])
        with pytest.raises(ValidationError):
            analysis.rms_jitter([1.0, 2.0], [1.0, -1.0])


class TestPsdFactories:
    def test_flat(self):
        psd = flat_psd(3.0)
        assert np.allclose(psd(np.array([1.0, 2.0])), 3.0)

    def test_flat_rejects_negative(self):
        with pytest.raises(ValidationError):
            flat_psd(-1.0)

    def test_one_over_f2(self):
        psd = one_over_f2_psd(4.0, omega_ref=2.0)
        assert psd(np.array([2.0]))[0] == pytest.approx(4.0)
        assert psd(np.array([4.0]))[0] == pytest.approx(1.0)

    def test_one_over_f2_validation(self):
        with pytest.raises(ValidationError):
            one_over_f2_psd(1.0, omega_ref=0.0)
