"""Tests for repro.core.sweep and repro.core.truncation."""

import numpy as np
import pytest

from repro._errors import ConvergenceError, ValidationError
from repro.core.operators import LTIOperator, SamplingOperator, ScaledOperator, SeriesOperator
from repro.core.sweep import band_transfer_map, dominant_conversion, sweep_element, sweep_matrix
from repro.core.truncation import (
    choose_truncation_order,
    truncation_error_estimate,
)
from repro.lti.transfer import TransferFunction

W0 = 2 * np.pi


def lowpass_operator():
    return LTIOperator(TransferFunction.first_order_lowpass(0.5 * W0), W0)


def sampled_lowpass():
    """Lowpass after a sampler: genuinely time-varying."""
    return SeriesOperator(lowpass_operator(), SamplingOperator(W0))


class TestSweepMatrix:
    def test_shape(self):
        omega = np.array([0.1, 0.2, 0.3]) * W0
        stack = sweep_matrix(lowpass_operator(), omega, order=2)
        assert stack.shape == (3, 5, 5)

    def test_values_match_pointwise(self):
        omega = np.array([0.15]) * W0
        stack = sweep_matrix(lowpass_operator(), omega, order=1)
        direct = lowpass_operator().dense(1j * omega[0], 1)
        assert np.allclose(stack[0], direct)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValidationError):
            sweep_matrix(lowpass_operator(), [], order=1)


class TestSweepElement:
    def test_diagonal_element_matches_transfer(self):
        tf = TransferFunction.first_order_lowpass(0.5 * W0)
        omega = np.linspace(0.05, 0.4, 5) * W0
        vals = sweep_element(LTIOperator(tf, W0), omega, 0, 0)
        assert np.allclose(vals, tf.frequency_response(omega))

    def test_order_guard(self):
        with pytest.raises(ValidationError):
            sweep_element(lowpass_operator(), [0.1], 3, 0, order=1)

    def test_default_order_covers_indices(self):
        vals = sweep_element(sampled_lowpass(), [0.1 * W0], 2, -2)
        assert vals.shape == (1,)


class TestBandTransferMap:
    def test_lti_map_is_diagonal(self):
        mags = band_transfer_map(lowpass_operator(), 0.1 * W0, order=2)
        off = mags - np.diag(np.diag(mags))
        assert np.max(off) == 0.0

    def test_sampler_map_is_full(self):
        mags = band_transfer_map(SamplingOperator(W0), 0.1 * W0, order=2)
        assert np.min(mags) > 0.0

    def test_dominant_conversion_lti_zero(self):
        n, m, gain = dominant_conversion(lowpass_operator(), 0.1 * W0, order=2)
        assert gain == 0.0

    def test_dominant_conversion_sampled(self):
        n, m, gain = dominant_conversion(sampled_lowpass(), 0.05 * W0, order=2)
        assert gain > 0.0
        assert (n, m) != (0, 0)
        # Output lands where the lowpass passes: near baseband, from any band.
        assert abs(n) <= 1


class TestChooseTruncationOrder:
    def test_lti_converges_immediately(self):
        report = choose_truncation_order(lowpass_operator(), [0.1 * W0], rtol=1e-9)
        assert report.order <= 8
        assert report.achieved_change <= 1e-9

    def test_feedback_operator_needs_growth(self):
        from repro.core.operators import FeedbackOperator

        # A relative-degree-2 filter gives an O(1/K^2) truncation tail.
        steep = LTIOperator(
            TransferFunction([1.0], np.polymul([1.0 / (0.3 * W0), 1.0], [1.0 / (0.5 * W0), 1.0])),
            W0,
        )
        loop = ScaledOperator(SeriesOperator(steep, SamplingOperator(W0)), 0.8)
        closed = FeedbackOperator(loop)
        # The aliasing tail decays like 1/K here, so ask for a modest rtol.
        report = choose_truncation_order(closed, [0.07 * W0], rtol=5e-3)
        assert report.order >= 8
        assert report.history[-1][1] <= 5e-3

    def test_history_recorded(self):
        report = choose_truncation_order(lowpass_operator(), [0.1 * W0])
        assert len(report.history) >= 1
        assert report.history[0][0] == 4

    def test_max_order_exhaustion_raises(self):
        from repro.core.operators import FeedbackOperator

        loop = ScaledOperator(sampled_lowpass(), 0.8)
        closed = FeedbackOperator(loop)
        with pytest.raises(ConvergenceError):
            choose_truncation_order(closed, [0.07 * W0], rtol=1e-14, max_order=8)

    def test_rtol_validated(self):
        with pytest.raises(ValidationError):
            choose_truncation_order(lowpass_operator(), [0.1], rtol=-1.0)


class TestTruncationErrorEstimate:
    def test_lti_error_zero(self):
        err = truncation_error_estimate(lowpass_operator(), [0.1 * W0], order=2)
        assert err < 1e-14

    def test_decreases_with_order(self):
        from repro.core.operators import FeedbackOperator

        loop = ScaledOperator(sampled_lowpass(), 0.8)
        closed = FeedbackOperator(loop)
        omega = [0.07 * W0]
        coarse = truncation_error_estimate(closed, omega, order=2)
        fine = truncation_error_estimate(closed, omega, order=16)
        assert fine < coarse

    def test_reference_must_exceed_order(self):
        with pytest.raises(ValidationError):
            truncation_error_estimate(lowpass_operator(), [0.1], order=4, reference_order=4)
