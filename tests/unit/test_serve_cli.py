"""CLI surface of the serving layer: ``repro serve`` and ``repro jobs``."""

import json

import pytest

from repro.campaign.spec import CampaignSpec, GridSpace
from repro.campaign.store import ResultStore
from repro.cli import build_parser, main
from repro.serve import job_id_for


def _partial_store(path, done=2):
    spec = CampaignSpec.create(
        name="cli-map",
        space=GridSpace.of(separation=[2.0, 4.0], ratio=[0.05, 0.1]),
        task="stability_cell",
    )
    store = ResultStore.create(path, spec)
    for point_id, params in list(spec.points())[:done]:
        store.append_point(
            {
                "kind": "point",
                "id": point_id,
                "status": "ok",
                "params": params,
                "metrics": {"z_stable": 1.0},
                "elapsed": 0.0,
            }
        )
    store.close()
    return spec


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8080 and args.host == "127.0.0.1"
        assert args.workers == 4 and args.max_inflight == 64
        assert args.cache_bytes is None and args.cache_ttl is None
        assert args.jobs_dir is None

    def test_serve_all_knobs(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--port", "0",
                "--workers", "2",
                "--max-inflight", "8",
                "--cache-bytes", "1000000",
                "--cache-ttl", "30",
                "--cache-shards", "2",
                "--batch-window", "0.01",
                "--spill-threshold", "10",
                "--jobs-dir", "jobs",
                "--manifest", "m.json",
            ]
        )
        assert args.cache_bytes == 1_000_000 and args.cache_ttl == 30.0
        assert args.spill_threshold == 10 and args.jobs_dir == "jobs"

    def test_jobs_positional_and_id(self):
        args = build_parser().parse_args(["jobs", "some/dir", "--id", "abc"])
        assert args.command == "jobs"
        assert args.store == "some/dir" and args.id == "abc"

    def test_help_mentions_serving(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(["serve", "--help"])
        assert exc_info.value.code == 0
        out = capsys.readouterr().out
        assert "--max-inflight" in out and "429" in out
        assert "--cache-bytes" in out and "--jobs-dir" in out


class TestServeErrors:
    def test_bad_port_is_clean_error(self, capsys):
        assert main(["serve", "--port", "70000"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "port" in err
        assert main(["serve", "--port", "-1"]) == 2

    def test_bad_workers_and_inflight(self, capsys):
        assert main(["serve", "--workers", "0"]) == 2
        assert "workers" in capsys.readouterr().err
        assert main(["serve", "--max-inflight", "0"]) == 2
        assert "max-inflight" in capsys.readouterr().err

    def test_bad_cache_bytes(self, capsys):
        assert main(["serve", "--cache-bytes", "0"]) == 2
        assert "cache-bytes" in capsys.readouterr().err

    def test_port_in_use_is_clean_error(self, capsys):
        import socket

        sock = socket.socket()
        try:
            sock.bind(("127.0.0.1", 0))
            sock.listen(1)
            port = sock.getsockname()[1]
            assert main(["serve", "--port", str(port)]) == 2
            assert "cannot bind" in capsys.readouterr().err
        finally:
            sock.close()


class TestJobs:
    def test_missing_path_is_clean_error(self, capsys):
        assert main(["jobs", "/nonexistent/jobs-dir"]) == 2
        assert "no jobs directory" in capsys.readouterr().err

    def test_empty_directory(self, tmp_path, capsys):
        assert main(["jobs", str(tmp_path)]) == 0
        assert "no jobs" in capsys.readouterr().out

    def test_directory_lists_jobs(self, tmp_path, capsys):
        spec = _partial_store(tmp_path / "aaaa.jsonl", done=2)
        _ = spec
        assert main(["jobs", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "aaaa" in out and "running/partial" in out
        assert "2 ok" in out and "2 pending" in out

    def test_single_store_prints_json(self, tmp_path, capsys):
        _partial_store(tmp_path / "bbbb.jsonl", done=1)
        assert main(["jobs", str(tmp_path / "bbbb.jsonl")]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["done"] == 1 and status["pending"] == 3
        assert status["task"] == "stability_cell"

    def test_id_selects_store_in_directory(self, tmp_path, capsys):
        spec = _partial_store(tmp_path / "x.jsonl", done=1)
        job_id = job_id_for(spec)
        (tmp_path / "x.jsonl").rename(tmp_path / f"{job_id}.jsonl")
        assert main(["jobs", str(tmp_path), "--id", job_id]) == 0
        assert json.loads(capsys.readouterr().out)["done"] == 1

    def test_id_on_a_file_is_clean_error(self, tmp_path, capsys):
        _partial_store(tmp_path / "cc.jsonl", done=1)
        assert main(["jobs", str(tmp_path / "cc.jsonl"), "--id", "cc"]) == 2
        assert "jobs directory" in capsys.readouterr().err

    def test_unknown_id_is_clean_error(self, tmp_path, capsys):
        assert main(["jobs", str(tmp_path), "--id", "nope"]) == 2
        assert "no job" in capsys.readouterr().err

    def test_store_that_is_a_directory_is_clean_error(self, tmp_path, capsys):
        """A directory named like a store: ResultStore.open's pointed error
        surfaces through ``repro jobs`` as a clean exit-2 message."""
        bad = tmp_path / "weird.jsonl"
        bad.mkdir()
        assert main(["jobs", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "unreadable" in out or "no jobs" in out
