"""Live-telemetry acceptance tests for the campaign executor.

The ISSUE 5 acceptance criteria live here:

* **stall detection** — a task sleeping past the heartbeat stall
  threshold produces a ``campaign.worker_stalled`` health event and a
  straggler flag in telemetry; a clean run produces neither;
* **stall escalation** — ``stall_action="retry"`` speculatively
  re-dispatches the stalled point, the first terminal record wins and the
  loser is counted as a duplicate;
* **kill-resume demo** — a pooled run with heartbeats + stream enabled is
  SIGKILLed mid-run; ``repro campaign watch --once`` renders sane state
  from the torn files, ``resume_campaign`` verifies the manifest, and the
  resumed run completes with a continuous stream timeline;
* **progress-callback isolation** — the callback sees every record with
  live telemetry, and a raising callback is counted, never fatal;
* **timeout degradation** — when SIGALRM cannot be armed the record is
  flagged and a ``campaign.timeout_unavailable`` counter + warning event
  are emitted (satellite task).
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignSpec,
    ExecutionPolicy,
    ListSpace,
    resume_campaign,
    run_campaign,
)
from repro.campaign.executor import _run_point
from repro.obs import manifest as obs_manifest
from repro.obs import spans as obs
from repro.obs import stream as obs_stream
from repro.obs.heartbeat import heartbeat_dir

pytestmark = pytest.mark.campaign

SLEEP_MARK = 3.0
STALL_SLEEP = 0.5


@pytest.fixture(autouse=True)
def _obs_enabled():
    was_enabled = obs.enabled()
    obs.enable()
    obs.reset()
    yield
    (obs.enable if was_enabled else obs.disable)()
    obs.reset()


def quick_task(params):
    return {"y": params["x"] * 2.0}


def sleepy_task(params):
    if params["x"] == SLEEP_MARK:
        time.sleep(STALL_SLEEP)
    return {"y": params["x"]}


def stuck_once_task(params):
    """Sleeps on its first execution of the marked point; fast afterwards."""
    if params["x"] == 0.0:
        marker = Path(os.environ["REPRO_TEST_STALL_MARKER"])
        if not marker.exists():
            marker.write_text("seen")
            time.sleep(1.2)
    return {"y": params["x"]}


def slow_task(params):
    time.sleep(0.25)
    return {"y": params["x"] * 2.0}


def _xspace(n):
    return ListSpace.of([{"x": float(i)} for i in range(n)])


def _spec(task, n=8, name="live"):
    return CampaignSpec.create(name=name, space=_xspace(n), task=task)


def _stall_policy(**overrides):
    base = dict(
        heartbeat_interval=0.1,
        stall_factor=3.0,
        straggler_factor=4.0,
        checkpoint_every=1,
    )
    base.update(overrides)
    return ExecutionPolicy(**base)


def _event_names(telemetry):
    snapshot = telemetry.obs_snapshot() or {}
    return set(snapshot.get("events", {}))


class TestStallDetection:
    def test_sleeping_point_flags_stall_and_straggler_serial(self, tmp_path):
        result = run_campaign(
            _spec(sleepy_task), tmp_path / "r.jsonl", policy=_stall_policy()
        )
        t = result.telemetry
        assert t.done == 8
        assert t.stalls >= 1
        assert t.stragglers >= 1
        assert len(t.straggler_ids) == t.stragglers
        events = _event_names(t)
        assert "campaign.worker_stalled#warning" in events
        assert "campaign.point_straggler#info" in events
        assert any("stall" in note for note in t.notes)

    def test_sleeping_point_flags_stall_pool(self, tmp_path):
        result = run_campaign(
            _spec(sleepy_task),
            tmp_path / "r.jsonl",
            policy=_stall_policy(workers=2),
        )
        t = result.telemetry
        assert t.done == 8
        assert t.stalls >= 1
        assert "campaign.worker_stalled#warning" in _event_names(t)

    def test_clean_run_flags_nothing(self, tmp_path):
        result = run_campaign(
            _spec(quick_task),
            tmp_path / "r.jsonl",
            policy=_stall_policy(workers=2),
        )
        t = result.telemetry
        assert t.done == 8
        assert t.stalls == 0
        assert t.stragglers == 0
        events = _event_names(t)
        assert "campaign.worker_stalled#warning" not in events
        assert "campaign.point_straggler#info" not in events

    def test_summary_reports_health_counts(self, tmp_path):
        result = run_campaign(
            _spec(sleepy_task), tmp_path / "r.jsonl", policy=_stall_policy()
        )
        counts = result.telemetry.health_counts()
        assert counts.get("warning", 0) >= 1
        assert "live:" in result.telemetry.summary()

    def test_heartbeat_dir_cleaned_after_completion(self, tmp_path):
        store = tmp_path / "r.jsonl"
        run_campaign(_spec(quick_task), store, policy=_stall_policy())
        assert not heartbeat_dir(store).exists()

    def test_no_heartbeats_when_interval_none(self, tmp_path):
        store = tmp_path / "r.jsonl"
        result = run_campaign(
            _spec(sleepy_task), store, heartbeat_interval=None
        )
        assert result.telemetry.stalls == 0
        assert not heartbeat_dir(store).exists()


class TestStallEscalation:
    def test_retry_action_speculatively_redispatches(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_TEST_STALL_MARKER", str(tmp_path / "marker")
        )
        result = run_campaign(
            _spec(stuck_once_task),
            tmp_path / "r.jsonl",
            policy=_stall_policy(workers=2, stall_action="retry"),
        )
        t = result.telemetry
        assert len(result.ok_records) == 8
        assert t.stalls >= 1
        assert t.stall_duplicates >= 1  # the losing copy was dropped
        assert any("stall escalation" in note for note in t.notes)
        # every spec point finalized exactly once despite the duplicate
        assert len({r["id"] for r in result.records}) == 8


class TestProgressCallback:
    def test_callback_sees_every_record_with_live_telemetry(self, tmp_path):
        seen = []

        def progress(record, telemetry):
            seen.append((record["id"], telemetry.processed))

        result = run_campaign(
            _spec(quick_task), tmp_path / "r.jsonl", progress=progress
        )
        assert len(seen) == 8
        # telemetry is live: processed counts the record just folded in
        assert [count for _, count in seen] == list(range(1, 9))
        assert {pid for pid, _ in seen} == {r["id"] for r in result.records}

    def test_raising_callback_is_counted_not_fatal(self, tmp_path):
        def explode(record, telemetry):
            raise RuntimeError("reporter bug")

        result = run_campaign(
            _spec(quick_task), tmp_path / "r.jsonl", progress=explode
        )
        t = result.telemetry
        assert t.done == 8  # the run survived every callback failure
        assert t.progress_errors == 8
        assert sum("progress callback raised" in n for n in t.notes) == 1
        assert "campaign.progress_errors" in (
            (t.obs_snapshot() or {}).get("counters", {})
        )


class TestTimeoutDegradation:
    def test_unarmable_timeout_is_flagged_and_counted(self):
        # SIGALRM only arms in the main thread; running the point in a
        # worker thread reproduces the non-Unix degradation everywhere.
        out = {}

        def run():
            out["record"] = _run_point(quick_task, "pid0", {"x": 1.0}, 5.0, 1)

        thread = threading.Thread(target=run)
        thread.start()
        thread.join()
        record = out["record"]
        assert record["status"] == "ok"
        assert record["timeout_degraded"] is True
        delta = record["obs"]
        assert "campaign.timeout_unavailable" in delta["counters"]
        assert "campaign.timeout_unavailable#warning" in delta["events"]

    def test_armed_timeout_not_flagged(self):
        record = _run_point(quick_task, "pid0", {"x": 1.0}, 5.0, 1)
        assert "timeout_degraded" not in record

    def test_degraded_count_reaches_telemetry(self):
        from repro.campaign.telemetry import CampaignTelemetry

        t = CampaignTelemetry(total_points=1)
        t.record(
            {"status": "ok", "id": "a", "elapsed": 0.1, "timeout_degraded": True}
        )
        assert t.timeout_degraded == 1
        assert t.to_dict()["live"]["timeout_degraded"] == 1


class TestManifestOnResume:
    def test_mismatch_warns_but_resumes(self, tmp_path):
        store = tmp_path / "r.jsonl"
        # Run only half the campaign by killing via retry exhaustion: easier
        # to fabricate drift directly — run fully, tamper, resume retry_failed.
        run_campaign(_spec(quick_task, n=4), store, policy=_stall_policy())
        mpath = obs_manifest.manifest_path(store)
        manifest = obs_manifest.load_manifest(mpath)
        manifest["spec_hash"] = "deadbeefdeadbeef"
        manifest["python"] = "2.7.18"
        obs_manifest.write_manifest(mpath, manifest)
        result = resume_campaign(store, task=quick_task, retry_failed=True)
        t = result.telemetry
        mismatch_notes = [n for n in t.notes if "manifest mismatch" in n]
        assert len(mismatch_notes) == 2
        assert "campaign.manifest_mismatch#warning" in _event_names(t)
        updated = obs_manifest.load_manifest(mpath)
        assert updated["runs"] == 2
        assert updated["spec_hash"] != "deadbeefdeadbeef"  # rewritten clean

    def test_clean_resume_has_no_mismatch(self, tmp_path):
        store = tmp_path / "r.jsonl"
        run_campaign(_spec(quick_task, n=4), store, policy=_stall_policy())
        result = resume_campaign(store, task=quick_task)
        assert not [
            n for n in result.telemetry.notes if "manifest mismatch" in n
        ]
        assert obs_manifest.load_manifest(
            obs_manifest.manifest_path(store)
        )["runs"] == 2


_KILL_CHILD = """
import sys, time
from repro.campaign import CampaignSpec, ListSpace, run_campaign
from tests.unit.test_campaign_live import slow_task

spec = CampaignSpec.create(
    name="kill-demo",
    space=ListSpace.of([{"x": float(i)} for i in range(14)]),
    task=slow_task,
)
run_campaign(spec, sys.argv[1], workers=2, heartbeat_interval=0.1,
             stream_interval=0.1, checkpoint_every=1)
"""


class TestKillResumeDemo:
    def test_sigkill_watch_resume_with_continuous_stream(self, tmp_path):
        store = tmp_path / "kill.jsonl"
        env = dict(
            os.environ,
            PYTHONPATH=os.pathsep.join(
                filter(None, ["src", os.environ.get("PYTHONPATH", "")])
            ),
            REPRO_OBS="1",
            REPRO_OBS_STREAM="1",
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", _KILL_CHILD, str(store)],
            env=env,
            cwd=Path(__file__).resolve().parents[2],
            start_new_session=True,  # killpg takes the pool workers down too
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.time() + 30.0
            while time.time() < deadline:
                if store.exists() and store.read_text().count('"kind":"point"') >= 3:
                    break
                if proc.poll() is not None:
                    pytest.fail(
                        "campaign child exited early: "
                        + proc.stderr.read().decode(errors="replace")
                    )
                time.sleep(0.05)
            else:
                pytest.fail("campaign child never wrote 3 point records")
        finally:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            proc.wait(timeout=10)

        # The corpse: torn store tail is possible, heartbeats + stream remain.
        assert heartbeat_dir(store).exists()
        stream_file = obs_stream.stream_path(store)
        pre_kill_samples = obs_stream.read_stream(stream_file)
        assert pre_kill_samples, "stream should have samples from before the kill"

        # watch --once renders sane state from the torn files via the CLI.
        from repro.cli import main

        assert main(["campaign", "watch", str(store), "--once"]) == 0

        from repro.campaign.watch import render

        frame = render(store)
        assert "kill-demo" in frame
        assert "COMPLETE" not in frame.splitlines()[0]
        assert "manifest: spec" in frame

        # Resume: manifest verified (no drift -> no mismatch notes), run
        # completes, and the stream timeline continues monotonically.
        result = resume_campaign(
            store,
            task=slow_task,
            workers=2,
            heartbeat_interval=0.1,
            stream_path=stream_file,
            stream_interval=0.1,
        )
        t = result.telemetry
        assert not [n for n in t.notes if "manifest mismatch" in n]
        assert t.skipped >= 3  # pre-kill records were not recomputed
        assert len(result.records) == 14
        assert all(r["status"] == "ok" for r in result.records)

        manifest = obs_manifest.load_manifest(obs_manifest.manifest_path(store))
        assert manifest["runs"] == 2

        samples = obs_stream.read_stream(stream_file)
        assert len(samples) > len(pre_kill_samples)
        times = [s["time"] for s in samples]
        assert times == sorted(times)
        assert samples[-1]["done"] + samples[-1]["failed"] + t.skipped >= 14 or (
            samples[-1]["done"] >= t.done
        )
        # every parseable line is a dict with the stream schema basics
        assert all({"seq", "time", "done"} <= set(s) for s in samples)
        # the store itself was never corrupted by the side-channel writers
        from repro.campaign import campaign_status

        status = campaign_status(store)
        assert status["complete"] is True
        assert not heartbeat_dir(store).exists()  # cleaned by the clean finish
