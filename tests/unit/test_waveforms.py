"""Tests for repro.signals.waveforms — analytic vs numerical projections."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.signals.fourier import FourierSeries
from repro.signals.waveforms import (
    dirac_comb_coefficients,
    pulse_train_coefficients,
    pulse_train_samples,
    sawtooth_coefficients,
    sine_coefficients,
    square_coefficients,
    triangle_coefficients,
)

W0 = 2 * np.pi


def project(func, order=15):
    return FourierSeries.from_function(func, W0, order=order, samples=4096)


class TestSine:
    def test_lines(self):
        fs = sine_coefficients(W0, amplitude=2.0)
        assert fs.coefficient(1) == pytest.approx(2.0 / 2j)
        assert fs.coefficient(-1) == pytest.approx(np.conj(2.0 / 2j))
        assert fs.coefficient(0) == 0.0

    def test_evaluates_to_sine(self):
        fs = sine_coefficients(W0, amplitude=1.5, phase=0.3)
        t = np.linspace(0, 1, 7)
        assert np.allclose(fs(t), 1.5 * np.sin(W0 * t + 0.3), atol=1e-12)

    def test_real(self):
        assert sine_coefficients(W0).is_real_signal()


class TestSquare:
    def test_matches_projection(self):
        analytic = square_coefficients(W0, order=15)
        numeric = project(lambda t: np.where((t % 1.0) < 0.5, 1.0, -1.0))
        assert np.allclose(analytic.coefficients, numeric.coefficients, atol=1e-3)

    def test_even_harmonics_vanish(self):
        fs = square_coefficients(W0, order=10)
        for k in (2, 4, 6):
            assert fs.coefficient(k) == 0.0

    def test_mean_zero(self):
        assert square_coefficients(W0, order=5).mean() == 0.0


class TestSawtooth:
    def test_matches_projection(self):
        analytic = sawtooth_coefficients(W0, order=15)
        numeric = project(lambda t: 2 * (t % 1.0) - 1.0)
        assert np.allclose(analytic.coefficients, numeric.coefficients, atol=2e-3)

    def test_real(self):
        assert sawtooth_coefficients(W0, order=8).is_real_signal()


class TestTriangle:
    def test_matches_projection(self):
        analytic = triangle_coefficients(W0, order=15)

        def tri(t):
            frac = t % 1.0
            return np.where(frac < 0.5, 1 - 4 * frac, -3 + 4 * frac)

        numeric = project(tri)
        assert np.allclose(analytic.coefficients, numeric.coefficients, atol=1e-4)

    def test_fast_decay(self):
        fs = triangle_coefficients(W0, order=9)
        assert abs(fs.coefficient(9)) < abs(fs.coefficient(1)) / 50


class TestPulseTrain:
    def test_matches_projection(self):
        analytic = pulse_train_coefficients(W0, order=15, duty=0.3)
        numeric = project(lambda t: pulse_train_samples(t, 1.0, 0.3))
        assert np.allclose(analytic.coefficients, numeric.coefficients, atol=1e-3)

    def test_dc_is_duty(self):
        fs = pulse_train_coefficients(W0, order=3, duty=0.25, amplitude=2.0)
        assert fs.mean() == pytest.approx(0.5)

    def test_duty_validated(self):
        with pytest.raises(ValidationError):
            pulse_train_coefficients(W0, order=3, duty=1.5)

    def test_narrow_pulse_approaches_dirac_comb(self):
        """The paper's Fig. 4 equivalence: unit-area narrow pulses -> comb."""
        duty = 1e-4
        pulses = pulse_train_coefficients(W0, order=5, duty=duty, amplitude=1.0 / duty)
        comb = dirac_comb_coefficients(W0, order=5)
        assert np.allclose(pulses.coefficients, comb.coefficients, rtol=1e-2)


class TestDiracComb:
    def test_all_coefficients_equal(self):
        fs = dirac_comb_coefficients(W0, order=4)
        assert np.allclose(fs.coefficients, W0 / (2 * np.pi))

    def test_weight_is_one_over_period(self):
        fs = dirac_comb_coefficients(4 * np.pi, order=2)
        assert fs.coefficient(0) == pytest.approx(2.0)  # 1/T with T = 0.5

    def test_toeplitz_rank_one(self):
        # Coefficients up to |n-m| = 2K are needed for a size-(2K+1) Toeplitz
        # block to capture the true (rank-one) sampling matrix.
        m = dirac_comb_coefficients(W0, order=6).toeplitz(7)
        svals = np.linalg.svd(m, compute_uv=False)
        assert svals[0] > 1e-6
        assert svals[1] < 1e-12 * svals[0]


class TestPulseSamples:
    def test_values(self):
        t = np.array([0.0, 0.1, 0.4, 0.9])
        out = pulse_train_samples(t, 1.0, 0.25, amplitude=3.0)
        assert np.allclose(out, [3.0, 3.0, 0.0, 0.0])

    def test_bad_period_rejected(self):
        with pytest.raises(ValidationError):
            pulse_train_samples(np.array([0.0]), -1.0, 0.5)
