"""Tests for the FrequencyGrid value object, the batched dense_grid API and
the grid-evaluation memoization layer (repro.core.grid / memo / operators)."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.core.grid import FrequencyGrid, as_omega_grid, as_s_grid
from repro.core.memo import cache_stats, clear_cache, grid_cache
from repro.core.operators import (
    FeedbackOperator,
    IdentityOperator,
    IsfIntegrationOperator,
    LTIOperator,
    MultiplicationOperator,
    ParallelOperator,
    SamplingOperator,
    ScaledOperator,
    SeriesOperator,
    default_element_order,
)
from repro.core.sweep import sweep_element, sweep_matrix
from repro.lti.transfer import TransferFunction
from repro.signals.fourier import FourierSeries
from repro.signals.isf import ImpulseSensitivity

W0 = 2 * np.pi


class TestFrequencyGrid:
    def test_linear_constructor(self):
        grid = FrequencyGrid.linear(1.0, 5.0, 5)
        assert np.allclose(grid.omega, [1, 2, 3, 4, 5])
        assert np.allclose(grid.s, 1j * grid.omega)
        assert len(grid) == 5

    def test_log_constructor(self):
        grid = FrequencyGrid.log(0.01, 100.0, 5)
        assert np.allclose(grid.omega, np.logspace(-2, 2, 5))

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            FrequencyGrid.log(0.0, 1.0, 4)
        with pytest.raises(ValidationError):
            FrequencyGrid.log(2.0, 1.0, 4)

    def test_baseband_spans_alias_band(self):
        grid = FrequencyGrid.baseband(W0, points=30)
        assert grid.omega[0] == pytest.approx(1e-3 * W0)
        assert grid.omega[-1] == pytest.approx(0.499 * W0)

    def test_immutable(self):
        grid = FrequencyGrid.linear(1.0, 2.0, 3)
        with pytest.raises((ValueError, AttributeError)):
            grid.omega[0] = 9.0
        with pytest.raises(AttributeError):
            grid.points = 7

    def test_views_are_read_only(self):
        """Both exposed arrays refuse writes — slices of them may be shared
        across cached/batched results, so aliasing a writable buffer out of a
        grid would let one consumer corrupt another's answer."""
        grid = FrequencyGrid.linear(1.0, 2.0, 4)
        assert not grid.omega.flags.writeable
        assert not grid.s.flags.writeable
        with pytest.raises(ValueError):
            grid.omega[:] = 0.0
        with pytest.raises(ValueError):
            grid.s[1] = 0.0

    def test_s_is_computed_once_and_cached(self):
        grid = FrequencyGrid.linear(1.0, 2.0, 4)
        assert grid.s is grid.s
        assert np.allclose(grid.s, 1j * grid.omega)

    def test_equality_and_hash(self):
        a = FrequencyGrid.linear(1.0, 2.0, 4)
        b = FrequencyGrid.linear(1.0, 2.0, 4)
        c = FrequencyGrid.linear(1.0, 2.0, 5)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_iteration_and_indexing(self):
        grid = FrequencyGrid([1.0, 2.0, 3.0])
        assert list(grid) == [1.0, 2.0, 3.0]
        assert grid[-1] == 3.0

    def test_coercers_accept_grid_and_raw(self):
        grid = FrequencyGrid([0.5, 1.5])
        assert np.array_equal(as_omega_grid("omega", grid), grid.omega)
        assert np.array_equal(as_omega_grid("omega", [0.5, 1.5]), [0.5, 1.5])
        assert np.array_equal(as_s_grid("s", grid), 1j * grid.omega)
        assert np.array_equal(as_s_grid("s", [1j, 2j]), [1j, 2j])

    def test_as_s_grid_validates(self):
        with pytest.raises(ValidationError):
            as_s_grid("s", [])
        with pytest.raises(ValidationError):
            as_s_grid("s", [[1j, 2j]])
        with pytest.raises(ValidationError):
            as_s_grid("s", [np.nan * 1j])


def _loop_operator():
    lf = LTIOperator(TransferFunction([2.0, 1.0], [1.0, 3.0, 1.0]), W0)
    vco = IsfIntegrationOperator(
        ImpulseSensitivity.from_coefficients([0.1j, 1.0, -0.1j], W0)
    )
    return SeriesOperator(vco, SeriesOperator(lf, SamplingOperator(W0)))


def _operator_zoo():
    tf = TransferFunction([1.0], [1.0, 1.0])
    loop = _loop_operator()
    return {
        "identity": IdentityOperator(W0),
        "lti": LTIOperator(tf, W0),
        "mult": MultiplicationOperator(FourierSeries([0.3, 1.0, 0.5], W0)),
        "sampling": SamplingOperator(W0, offset=0.05),
        "isf": IsfIntegrationOperator(
            ImpulseSensitivity.from_coefficients([0.2j, 1.0, -0.2j], W0)
        ),
        "series": loop,
        "parallel": ParallelOperator(loop, ScaledOperator(LTIOperator(tf, W0), 0.5)),
        "scaled": ScaledOperator(loop, 1.5 - 0.5j),
        "feedback": FeedbackOperator(loop),
    }


class TestDenseGrid:
    @pytest.mark.parametrize("name", sorted(_operator_zoo()))
    def test_matches_scalar_dense(self, name):
        op = _operator_zoo()[name]
        clear_cache()
        s = 1j * np.linspace(0.02, 2.9, 11) + 0.1
        for order in (0, 1, 3):
            stack = op.dense_grid(s, order)
            assert stack.shape == (s.size, 2 * order + 1, 2 * order + 1)
            for i in range(s.size):
                ref = op.dense(complex(s[i]), order)
                scale = max(float(np.max(np.abs(ref))), 1e-300)
                assert np.max(np.abs(stack[i] - ref)) <= 1e-9 * scale

    def test_accepts_frequency_grid(self):
        op = _operator_zoo()["lti"]
        grid = FrequencyGrid.linear(0.1, 1.0, 4)
        stack = op.dense_grid(grid, 1)
        assert np.allclose(stack, op.dense_grid(grid.s, 1))

    def test_result_read_only(self):
        op = _operator_zoo()["mult"]
        stack = op.dense_grid(np.array([1j]), 1)
        with pytest.raises(ValueError):
            stack[0, 0, 0] = 99.0


class TestGridCache:
    def test_repeat_evaluation_hits(self):
        op = _loop_operator()
        clear_cache()
        s = 1j * np.linspace(0.1, 1.0, 8)
        first = op.dense_grid(s, 2)
        before = cache_stats()["hits"]
        second = op.dense_grid(s, 2)
        assert cache_stats()["hits"] > before
        assert second is first  # the cached block itself

    def test_distinct_grids_miss(self):
        op = _loop_operator()
        clear_cache()
        a = op.dense_grid(1j * np.linspace(0.1, 1.0, 4), 1)
        b = op.dense_grid(1j * np.linspace(0.1, 1.1, 4), 1)
        assert a is not b

    def test_value_identical_operators_share_entries(self):
        """Content-fingerprinted primitives hit across distinct instances."""
        tf_a = TransferFunction([1.0], [1.0, 2.0])
        tf_b = TransferFunction([1.0], [1.0, 2.0])
        clear_cache()
        s = 1j * np.linspace(0.1, 1.0, 5)
        first = LTIOperator(tf_a, W0).dense_grid(s, 1)
        second = LTIOperator(tf_b, W0).dense_grid(s, 1)
        assert second is first

    def test_clear_cache(self):
        op = _loop_operator()
        op.dense_grid(np.array([1j]), 1)
        clear_cache()
        stats = cache_stats()
        assert stats["entries"] == 0

    def test_disabled_cache_still_correct(self):
        op = _loop_operator()
        clear_cache()
        try:
            grid_cache.configure(enabled=False)
            s = np.array([0.5j, 1.0j])
            a = op.dense_grid(s, 1)
            b = op.dense_grid(s, 1)
            assert a is not b
            assert np.allclose(a, b)
        finally:
            grid_cache.configure(enabled=True)


class TestSweepIntegration:
    def test_sweep_matrix_matches_dense(self):
        op = _loop_operator()
        omega = np.linspace(0.05, 1.2, 6)
        stack = sweep_matrix(op, omega, 2)
        for i, w in enumerate(omega):
            assert np.allclose(stack[i], op.dense(1j * w, 2), rtol=1e-9)

    def test_sweep_accepts_frequency_grid(self):
        op = _loop_operator()
        grid = FrequencyGrid.linear(0.05, 1.2, 6)
        assert np.allclose(
            sweep_matrix(op, grid, 2), sweep_matrix(op, grid.omega, 2)
        )
        assert np.allclose(
            sweep_element(op, grid, 1, 0, order=2),
            sweep_element(op, grid.omega, 1, 0, order=2),
        )


class TestDefaultOrderUnification:
    def test_canonical_rule(self):
        assert default_element_order(0, 0) == 1
        assert default_element_order(2, -3) == 3
        assert default_element_order(-1, 0) == 1

    def test_element_warns_only_in_divergent_case(self):
        op = IdentityOperator(W0)
        with pytest.warns(DeprecationWarning):
            value = op.element(0.5j, 0, 0)
        assert value == pytest.approx(1.0)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            op.element(0.5j, 1, 0)  # rule unchanged for |n| or |m| >= 1
            op.element(0.5j, 0, 0, order=0)  # explicit order never warns

    def test_element_and_sweep_element_agree(self):
        op = _loop_operator()
        omega = np.array([0.3])
        swept = sweep_element(op, omega, 0, 0)
        direct = op.element(1j * omega[0], 0, 0, order=default_element_order(0, 0))
        assert swept[0] == pytest.approx(direct)


class TestScalarMultiplication:
    def test_accepts_0d_numpy_array(self):
        op = IdentityOperator(W0)
        scaled = op * np.array(2.0)
        assert isinstance(scaled, ScaledOperator)
        assert np.allclose(scaled.dense(0.1j, 1), 2.0 * np.eye(3))
        scaled_left = np.float64(3.0) * op
        assert np.allclose(scaled_left.dense(0.1j, 1), 3.0 * np.eye(3))

    def test_rejects_nonscalar_arrays(self):
        op = IdentityOperator(W0)
        with pytest.raises(TypeError):
            op * np.array([1.0, 2.0])
        with pytest.raises(TypeError):
            op * "2.0"
