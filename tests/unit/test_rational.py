"""Tests for repro.lti.rational — the algebraic foundation."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.lti.rational import PartialFractionTerm, RationalFunction


class TestConstruction:
    def test_basic(self):
        rf = RationalFunction([1.0], [1.0, 1.0])
        assert rf.num_degree == 0 and rf.den_degree == 1

    def test_denominator_made_monic(self):
        rf = RationalFunction([2.0], [2.0, 4.0])
        assert np.allclose(rf.den, [1.0, 2.0])
        assert np.allclose(rf.num, [1.0])

    def test_leading_zeros_trimmed(self):
        rf = RationalFunction([0.0, 0.0, 3.0], [0.0, 1.0, 1.0])
        assert rf.num_degree == 0 and rf.den_degree == 1

    def test_zero_denominator_rejected(self):
        with pytest.raises(ValidationError):
            RationalFunction([1.0], [0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            RationalFunction([], [1.0])

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            RationalFunction([float("nan")], [1.0])

    def test_from_zpk(self):
        rf = RationalFunction.from_zpk([-1.0], [-2.0, -3.0], gain=5.0)
        assert rf(0) == pytest.approx(5.0 * 1.0 / 6.0)

    def test_from_zpk_no_zeros(self):
        rf = RationalFunction.from_zpk([], [-1.0], gain=2.0)
        assert rf(0) == pytest.approx(2.0)

    def test_constant(self):
        rf = RationalFunction.constant(4.0 + 1j)
        assert rf(123.0) == pytest.approx(4.0 + 1j)

    def test_s(self):
        assert RationalFunction.s()(2.5j) == pytest.approx(2.5j)

    def test_integrator(self):
        assert RationalFunction.integrator(2)(2.0) == pytest.approx(0.25)

    def test_integrator_rejects_zero_order(self):
        with pytest.raises(ValidationError):
            RationalFunction.integrator(0)


class TestProperties:
    def test_relative_degree(self):
        rf = RationalFunction([1.0, 0.0], [1.0, 0.0, 0.0, 1.0])
        assert rf.relative_degree == 2

    def test_properness(self):
        strictly = RationalFunction([1.0], [1.0, 1.0])
        proper = RationalFunction([1.0, 0.0], [1.0, 1.0])
        improper = RationalFunction([1.0, 0.0, 0.0], [1.0, 1.0])
        assert strictly.is_strictly_proper() and strictly.is_proper()
        assert proper.is_proper() and not proper.is_strictly_proper()
        assert not improper.is_proper()

    def test_poles_and_zeros(self):
        rf = RationalFunction.from_zpk([-1.0], [-2.0, -3.0], 1.0)
        assert sorted(rf.zeros().real) == pytest.approx([-1.0])
        assert sorted(rf.poles().real) == pytest.approx([-3.0, -2.0])

    def test_dc_gain(self):
        rf = RationalFunction([3.0], [1.0, 6.0])
        assert rf.dc_gain() == pytest.approx(0.5)

    def test_dc_gain_infinite_for_integrator(self):
        assert np.isinf(RationalFunction.integrator().dc_gain())

    def test_is_zero(self):
        assert RationalFunction([0.0], [1.0, 1.0]).is_zero()
        assert not RationalFunction([1e-30], [1.0]).is_zero()


class TestEvaluation:
    def test_scalar_returns_complex(self):
        value = RationalFunction([1.0], [1.0, 1.0])(1j)
        assert isinstance(value, complex)
        assert value == pytest.approx(1.0 / (1j + 1.0))

    def test_array_shape_preserved(self):
        rf = RationalFunction([1.0], [1.0, 1.0])
        s = np.array([1j, 2j, 3j])
        out = rf(s)
        assert out.shape == (3,)
        assert out[2] == pytest.approx(1.0 / (3j + 1.0))

    def test_eval_jomega(self):
        rf = RationalFunction([1.0, 0.0], [1.0])  # H(s) = s
        out = rf.eval_jomega([1.0, 2.0])
        assert np.allclose(out, [1j, 2j])


class TestArithmetic:
    a = RationalFunction([1.0], [1.0, 1.0])  # 1/(s+1)
    b = RationalFunction([1.0], [1.0, 2.0])  # 1/(s+2)

    def test_addition(self):
        s = 0.7j
        assert (self.a + self.b)(s) == pytest.approx(self.a(s) + self.b(s))

    def test_scalar_addition_both_sides(self):
        s = 1.3
        assert (self.a + 2)(s) == pytest.approx(self.a(s) + 2)
        assert (2 + self.a)(s) == pytest.approx(self.a(s) + 2)

    def test_subtraction(self):
        s = 0.5 + 0.5j
        assert (self.a - self.b)(s) == pytest.approx(self.a(s) - self.b(s))

    def test_rsub(self):
        s = 2.0
        assert (1 - self.a)(s) == pytest.approx(1 - self.a(s))

    def test_multiplication(self):
        s = 1j
        assert (self.a * self.b)(s) == pytest.approx(self.a(s) * self.b(s))

    def test_scalar_multiplication(self):
        s = 1j
        assert (3 * self.a)(s) == pytest.approx(3 * self.a(s))

    def test_division(self):
        s = 2j
        assert (self.a / self.b)(s) == pytest.approx(self.a(s) / self.b(s))

    def test_division_by_zero_function(self):
        zero = RationalFunction([0.0], [1.0])
        with pytest.raises(ZeroDivisionError):
            self.a / zero

    def test_negation(self):
        assert (-self.a)(1.0) == pytest.approx(-self.a(1.0))

    def test_power_positive(self):
        s = 0.3j
        assert (self.a**3)(s) == pytest.approx(self.a(s) ** 3)

    def test_power_zero_is_one(self):
        assert (self.a**0)(5.0) == pytest.approx(1.0)

    def test_power_negative_inverts(self):
        s = 1.0 + 1j
        assert (self.a**-1)(s) == pytest.approx(1.0 / self.a(s))

    def test_power_rejects_float(self):
        with pytest.raises(TypeError):
            self.a**0.5

    def test_coerce_rejects_strings(self):
        with pytest.raises(TypeError):
            self.a + "nope"

    def test_equality_and_hash(self):
        c = RationalFunction([2.0], [2.0, 2.0])
        assert c == self.a
        assert hash(c) == hash(self.a)

    def test_close_to_with_different_representation(self):
        expanded = self.a * RationalFunction([1.0, 2.0], [1.0, 2.0])
        assert expanded.close_to(self.a)
        assert not expanded.close_to(self.b)


class TestTransforms:
    def test_scaled_frequency(self):
        rf = RationalFunction([1.0], [1.0, 1.0])
        scaled = rf.scaled_frequency(10.0)
        assert scaled(10.0) == pytest.approx(rf(1.0))

    def test_scaled_frequency_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            RationalFunction([1.0], [1.0, 1.0]).scaled_frequency(0.0)

    def test_shifted(self):
        rf = RationalFunction([1.0, 0.0], [1.0, 0.0, 1.0])  # s/(s^2+1)
        offset = 0.5 + 2j
        s = 1.2 - 0.7j
        assert rf.shifted(offset)(s) == pytest.approx(rf(s + offset))

    def test_shift_then_unshift_roundtrip(self):
        rf = RationalFunction([1.0, 2.0], [1.0, 3.0, 5.0])
        back = rf.shifted(1j).shifted(-1j)
        assert back.close_to(rf)

    def test_derivative(self):
        rf = RationalFunction([1.0], [1.0, 0.0])  # 1/s -> -1/s^2
        assert rf.derivative()(2.0) == pytest.approx(-0.25)

    def test_derivative_of_polynomial(self):
        rf = RationalFunction([1.0, 0.0, 0.0], [1.0])  # s^2 -> 2 s
        assert rf.derivative()(3.0) == pytest.approx(6.0)

    def test_simplified_cancels_common_factor(self):
        rf = RationalFunction(np.polymul([1.0, 1.0], [1.0, 2.0]), np.polymul([1.0, 1.0], [1.0, 3.0]))
        simple = rf.simplified()
        assert simple.den_degree == 1
        assert simple.close_to(RationalFunction([1.0, 2.0], [1.0, 3.0]))

    def test_simplified_keeps_distinct_roots(self):
        rf = RationalFunction([1.0, 1.0], [1.0, 3.0])
        assert rf.simplified().den_degree == 1


class TestPartialFractions:
    def test_simple_poles(self):
        # 1/((s+1)(s+2)) = 1/(s+1) - 1/(s+2)
        rf = RationalFunction.from_zpk([], [-1.0, -2.0], 1.0)
        direct, terms = rf.partial_fractions()
        assert np.allclose(direct, [0.0])
        lookup = {round(t.pole.real, 6): t.residue for t in terms}
        assert lookup[-1.0] == pytest.approx(1.0)
        assert lookup[-2.0] == pytest.approx(-1.0)

    def test_double_pole(self):
        # (s+2)/(s+1)^2 = 1/(s+1) + 1/(s+1)^2
        rf = RationalFunction([1.0, 2.0], np.polymul([1.0, 1.0], [1.0, 1.0]))
        _, terms = rf.partial_fractions()
        by_order = {t.order: t.residue for t in terms}
        assert by_order[1] == pytest.approx(1.0)
        assert by_order[2] == pytest.approx(1.0)

    def test_double_pole_at_origin_with_extra_pole(self):
        # The paper's loop-gain structure: K (1+s/wz) / (s^2 (1+s/wp)).
        wz, wp, k = 0.25, 4.0, 1.0
        rf = RationalFunction([k / wz, k], [1.0 / wp, 1.0, 0.0, 0.0])
        _, terms = rf.partial_fractions()
        recon = sum(t(0.3 + 0.9j) for t in terms)
        assert recon == pytest.approx(rf(0.3 + 0.9j), rel=1e-9)

    def test_reconstruction_random_simple(self):
        rng = np.random.default_rng(42)
        poles = -rng.uniform(0.5, 3.0, size=4) + 1j * rng.uniform(-2, 2, size=4)
        rf = RationalFunction.from_zpk([-0.3], poles, 2.0)
        _, terms = rf.partial_fractions()
        for s in (0.1 + 1j, 2.0, -0.2 + 0.4j):
            recon = sum(t(s) for t in terms)
            assert recon == pytest.approx(rf(s), rel=1e-8)

    def test_triple_pole_reconstruction(self):
        rf = RationalFunction([1.0, 0.5], np.polymul(np.polymul([1.0, 1.0], [1.0, 1.0]), [1.0, 1.0]))
        _, terms = rf.partial_fractions()
        s = 0.7 - 0.4j
        assert sum(t(s) for t in terms) == pytest.approx(rf(s), rel=1e-8)

    def test_improper_gets_direct_part(self):
        # (s^2 + 3 s + 3)/(s+1) = s + 2 + 1/(s+1)
        rf = RationalFunction([1.0, 3.0, 3.0], [1.0, 1.0])
        direct, terms = rf.partial_fractions()
        assert np.allclose(direct, [1.0, 2.0])
        assert len(terms) == 1
        assert terms[0].residue == pytest.approx(1.0)

    def test_zero_function(self):
        direct, terms = RationalFunction([0.0], [1.0, 1.0]).partial_fractions()
        assert np.allclose(direct, [0.0]) and terms == []

    def test_pole_multiplicities_clusters(self):
        rf = RationalFunction([1.0], np.polymul([1.0, 1.0 + 1e-9], [1.0, 1.0]))
        groups = rf.pole_multiplicities(tol=1e-6)
        assert len(groups) == 1 and groups[0][1] == 2

    def test_partial_fraction_term_call(self):
        term = PartialFractionTerm(pole=-1.0, order=2, residue=3.0)
        assert term(0.0) == pytest.approx(3.0)

    def test_term_vectorized(self):
        term = PartialFractionTerm(pole=0.0, order=1, residue=1.0)
        out = term(np.array([1.0, 2.0]))
        assert np.allclose(out, [1.0, 0.5])
