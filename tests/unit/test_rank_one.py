"""Tests for repro.core.rank_one — the SMW closure (paper eqs. 29-34)."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.core.rank_one import (
    RankOneHTM,
    smw_closed_loop,
    smw_identity_check,
    smw_inverse_apply,
)

W0 = 2 * np.pi


def vectors(order=3, seed=0):
    rng = np.random.default_rng(seed)
    n = 2 * order + 1
    col = rng.normal(size=n) + 1j * rng.normal(size=n)
    row = rng.normal(size=n) + 1j * rng.normal(size=n)
    return col, row


class TestRankOneHTM:
    def test_to_htm(self):
        col, row = vectors()
        r1 = RankOneHTM(col, row, W0, 0.1j)
        assert np.allclose(r1.to_htm().matrix, np.outer(col, row))

    def test_order(self):
        col, row = vectors(order=2)
        assert RankOneHTM(col, row, W0).order == 2

    def test_left_multiply_stays_rank_one(self):
        col, row = vectors()
        mat = np.diag(np.arange(1.0, 8.0))
        r1 = RankOneHTM(col, row, W0).left_multiply_dense(mat)
        assert np.allclose(r1.to_htm().matrix, mat @ np.outer(col, row))

    def test_left_multiply_shape_checked(self):
        col, row = vectors()
        with pytest.raises(ValidationError):
            RankOneHTM(col, row, W0).left_multiply_dense(np.eye(3))

    def test_trace_like_is_lambda(self):
        col, row = vectors()
        assert RankOneHTM(col, row, W0).trace_like() == pytest.approx(row @ col)

    def test_mismatched_vectors_rejected(self):
        with pytest.raises(ValidationError):
            RankOneHTM(np.ones(3), np.ones(5), W0)

    def test_even_length_rejected(self):
        with pytest.raises(ValidationError):
            RankOneHTM(np.ones(4), np.ones(4), W0)


class TestSMWInverse:
    def test_matches_dense_inverse(self):
        col, row = vectors(seed=1)
        n = col.size
        rhs = np.arange(n, dtype=complex)
        direct = np.linalg.solve(np.eye(n) + np.outer(col, row), rhs)
        fast = smw_inverse_apply(col, row, rhs)
        assert np.allclose(fast, direct)

    def test_singular_loop_detected(self):
        col = np.array([1.0, 0.0, 0.0], dtype=complex)
        row = np.array([-1.0, 0.0, 0.0], dtype=complex)  # lambda = -1
        with pytest.raises(ZeroDivisionError):
            smw_inverse_apply(col, row, np.ones(3, dtype=complex))

    def test_identity_residual_tiny(self):
        col, row = vectors(seed=2)
        assert smw_identity_check(col, row) < 1e-12


class TestSMWClosedLoop:
    def test_matches_dense_feedback(self):
        col, row = vectors(seed=3)
        n = col.size
        g = np.outer(col, row)
        expected = np.linalg.solve(np.eye(n) + g, g)
        fast = smw_closed_loop(col, row)
        assert np.allclose(fast, expected)

    def test_result_is_rank_one(self):
        col, row = vectors(seed=4)
        closed = smw_closed_loop(col, row)
        svals = np.linalg.svd(closed, compute_uv=False)
        assert svals[1] < 1e-12 * svals[0]

    def test_element_formula_eq34(self):
        """H_{n,m} = V_n row_m / (1 + lambda) for every element."""
        col, row = vectors(seed=5)
        lam = row @ col
        closed = smw_closed_loop(col, row)
        order = (col.size - 1) // 2
        for n in (-order, 0, order):
            for m in (-1, 0, 1):
                expected = col[n + order] * row[m + order] / (1 + lam)
                assert closed[n + order, m + order] == pytest.approx(expected)

    def test_marginal_pole_detected(self):
        col = np.array([2.0, 0.0, 0.0], dtype=complex)
        row = np.array([-0.5, 0.0, 0.0], dtype=complex)
        with pytest.raises(ZeroDivisionError):
            smw_closed_loop(col, row)
