"""Tests for design_for_effective_margin — margin-aware inverse design."""

import numpy as np
import pytest

from repro._errors import DesignError
from repro.pll.design import design_for_effective_margin
from repro.pll.margins import compare_margins

W0 = 2 * np.pi


class TestInverseDesign:
    def test_hits_target_slow_loop(self):
        pll = design_for_effective_margin(W0, 0.05 * W0, target_margin_deg=55.0)
        achieved = compare_margins(pll).phase_margin_eff_deg
        assert achieved == pytest.approx(55.0, abs=0.2)

    def test_fast_loop_needs_extra_separation(self):
        """Hitting the same effective margin at a faster ratio requires a
        larger separation (more LTI margin spent on sampling)."""
        slow = design_for_effective_margin(W0, 0.05 * W0, target_margin_deg=55.0)
        fast = design_for_effective_margin(W0, 0.15 * W0, target_margin_deg=55.0)
        # Recover each design's separation from its LTI margin.
        pm_slow = compare_margins(slow).phase_margin_lti_deg
        pm_fast = compare_margins(fast).phase_margin_lti_deg
        assert pm_fast > pm_slow + 10.0

    def test_unreachable_target_raises(self):
        with pytest.raises(DesignError, match="unreachable"):
            design_for_effective_margin(W0, 0.26 * W0, target_margin_deg=60.0)

    def test_bounds_validated(self):
        with pytest.raises(DesignError):
            design_for_effective_margin(
                W0, 0.05 * W0, 50.0, separation_bounds=(0.5, 4.0)
            )

    def test_loop_kwargs_forwarded(self):
        pll = design_for_effective_margin(
            W0, 0.05 * W0, target_margin_deg=50.0, charge_pump_current=5e-3
        )
        assert pll.charge_pump.current == pytest.approx(5e-3)

    def test_classical_prediction_would_overshoot(self):
        """The naive classical design (atan(sep) - atan(1/sep) = target)
        under-delivers at speed — quantifying the design error the paper's
        method corrects."""
        target = 55.0
        pll = design_for_effective_margin(W0, 0.15 * W0, target_margin_deg=target)
        margins = compare_margins(pll)
        classical_claim = margins.phase_margin_lti_deg
        assert classical_claim > target + 10.0  # classical says way more
        assert margins.phase_margin_eff_deg == pytest.approx(target, abs=0.3)