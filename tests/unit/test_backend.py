"""Compute-backend registry: selection precedence, scoping, and fallback.

The graceful-degradation contract is the load-bearing piece: this
container has no numba, so resolving ``"numba"`` must hand back the numpy
kernels while bumping ``core.backend.fallback`` and emitting a
``health.backend.fallback`` warning event — never raising.
"""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.core import backend as bk
from repro.obs import spans as obs


@pytest.fixture(autouse=True)
def _isolated(monkeypatch):
    monkeypatch.delenv(bk.ENV_VAR, raising=False)
    bk.set_default_backend(None)
    was_enabled = obs.enabled()
    obs.disable()
    obs.reset()
    yield
    bk.set_default_backend(None)
    (obs.enable if was_enabled else obs.disable)()
    obs.reset()


def _numba_missing() -> bool:
    try:
        import numba  # noqa: F401

        return False
    except ImportError:
        return True


class TestRegistry:
    def test_numpy_is_default_and_shared(self):
        a = bk.resolve_backend(None)
        b = bk.resolve_backend("numpy")
        assert a is b and a.name == "numpy"

    def test_unknown_name_raises(self):
        with pytest.raises(ValidationError, match="unknown backend"):
            bk.resolve_backend("no-such-backend")

    def test_duplicate_registration_raises_unless_replace(self):
        with pytest.raises(ValidationError, match="already registered"):
            bk.register_backend("numpy", bk.NumpyBackend)
        bk.register_backend("numpy", bk.NumpyBackend, replace=True)
        assert bk.resolve_backend("numpy").name == "numpy"

    def test_instance_passes_through(self):
        inst = bk.NumpyBackend()
        assert bk.resolve_backend(inst) is inst

    def test_available_backends_reports_numba_importability(self):
        table = bk.available_backends()
        assert table["numpy"] is True
        assert table["numba"] is (not _numba_missing())


class TestPrecedence:
    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(bk.ENV_VAR, "numpy")
        assert bk.default_backend_name() == "numpy"

    def test_scope_overrides_env(self, monkeypatch):
        monkeypatch.setenv(bk.ENV_VAR, "no-such-backend")
        with bk.backend_scope("numpy"):
            assert bk.resolve_backend(None).name == "numpy"
        # Outside the scope the bogus env name is consulted again — loudly.
        with pytest.raises(ValidationError):
            bk.resolve_backend(None)

    def test_explicit_argument_overrides_scope(self):
        with bk.backend_scope("no-such-backend"):
            assert bk.resolve_backend("numpy").name == "numpy"

    def test_none_scope_is_passthrough(self, monkeypatch):
        monkeypatch.setenv(bk.ENV_VAR, "numpy")
        with bk.backend_scope(None):
            assert bk.default_backend_name() == "numpy"

    def test_scopes_nest_and_restore(self):
        with bk.backend_scope("numpy"):
            with bk.backend_scope("numba"):
                assert bk._scoped_default() == "numba"
            assert bk._scoped_default() == "numpy"
        assert bk._scoped_default() is None


@pytest.mark.skipif(not _numba_missing(), reason="numba is installed here")
class TestFallbackWithoutNumba:
    def test_resolve_falls_back_to_numpy(self):
        resolved = bk.resolve_backend("numba")
        assert resolved.name == "numpy"

    def test_get_backend_still_raises(self):
        with pytest.raises(bk.BackendUnavailable):
            bk.get_backend("numba")

    def test_fallback_counter_and_health_event(self):
        obs.enable()
        bk.resolve_backend("numba")
        snap = obs.snapshot()
        counters = {
            name: entry for name, entry in snap["counters"].items()
            if name.startswith("core.backend.fallback")
        }
        assert counters, sorted(snap["counters"])
        assert sum(e["count"] for e in counters.values()) == 1
        events = [
            entry for name, entry in snap["events"].items()
            if name.startswith("health.backend.fallback")
        ]
        assert len(events) == 1
        assert events[0]["severity"] == "warning"

    def test_fallback_is_silent_when_obs_disabled(self):
        assert bk.resolve_backend("numba").name == "numpy"
        assert obs.registry().is_empty()

    def test_evaluate_through_numba_name_matches_numpy(self):
        from repro.core.operators import FeedbackOperator, SamplingOperator

        op = FeedbackOperator(SamplingOperator(2 * np.pi))
        s = 1j * np.linspace(0.3, 2.9, 7)
        via_numba = np.asarray(op.evaluate(s, 3, backend="numba").to_dense())
        via_numpy = np.asarray(op.evaluate(s, 3, backend="numpy").to_dense())
        np.testing.assert_allclose(via_numba, via_numpy, rtol=1e-13)


class TestManifestRecordsBackend:
    def test_build_manifest_carries_backend_name(self):
        from repro.campaign import CampaignSpec, ListSpace
        from repro.obs.manifest import build_manifest

        spec = CampaignSpec.create(
            name="m",
            space=ListSpace.of([{"ratio": 0.1}]),
            task="standard_metrics",
        )
        manifest = build_manifest(spec)
        assert manifest["backend"] == "numpy"
