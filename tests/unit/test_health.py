"""Numerical-health layer: events, probes, CLI gate, trace/CSV export.

Covers the PR acceptance criteria: near-singular ``1 + lambda(s)`` points
produce warning events that surface through ``repro obs health`` (and fail
the ``--fail-on warning`` gate), and ``repro obs export --trace`` writes
valid Chrome Trace Event Format.
"""

import csv
import io
import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.memo import grid_cache
from repro.obs import health
from repro.obs import spans as obs
from repro.obs.registry import MAX_EVENT_BUCKETS, ObsRegistry, snapshot_delta
from repro.obs.report import to_chrome_trace, to_csv


@pytest.fixture(autouse=True)
def _isolated_obs():
    was_enabled = obs.enabled()
    obs.disable()
    obs.reset()
    grid_cache.clear()
    yield
    (obs.enable if was_enabled else obs.disable)()
    obs.reset()
    grid_cache.clear()


def _events(snapshot):
    return list(snapshot["events"].values())


# -- registry event buckets --------------------------------------------------------


def test_record_event_aggregates_count_and_worst():
    reg = ObsRegistry()
    reg.record_event("health.x", "warning", 3.0, 1.0, {"op": "A"})
    reg.record_event("health.x", "warning", 9.0, 1.0, {"op": "A"})
    reg.record_event("health.x", "warning", 5.0, 1.0, {"op": "A"})
    snap = reg.snapshot()
    (entry,) = _events(snap)
    assert entry["count"] == 3
    assert entry["worst"] == 9.0
    assert entry["severity"] == "warning"
    assert entry["tags"] == {"op": "A"}


def test_record_event_direction_below_keeps_smallest():
    reg = ObsRegistry()
    reg.record_event("health.m", "warning", 1e-7, 1e-6, {}, direction="below")
    reg.record_event("health.m", "warning", 1e-9, 1e-6, {}, direction="below",
                     message="worse")
    reg.record_event("health.m", "warning", 1e-8, 1e-6, {}, direction="below")
    (entry,) = _events(reg.snapshot())
    assert entry["worst"] == 1e-9
    assert entry["message"] == "worse"


def test_same_name_different_severity_are_distinct_buckets():
    reg = ObsRegistry()
    reg.record_event("health.x", "warning", 1.0, 0.5, {})
    reg.record_event("health.x", "error", 2.0, 0.5, {})
    assert len(_events(reg.snapshot())) == 2


def test_event_bucket_cap_counts_overflow():
    reg = ObsRegistry()
    for i in range(MAX_EVENT_BUCKETS + 5):
        reg.record_event("health.x", "info", 1.0, 0.0, {"i": i})
    snap = reg.snapshot()
    assert len(snap["events"]) == MAX_EVENT_BUCKETS
    assert snap["events_dropped"] == 5
    # Existing buckets still record past the cap.
    reg.record_event("health.x", "info", 2.0, 0.0, {"i": 0})
    entry = reg.snapshot()["events"]["health.x[i=0]#info"]
    assert entry["count"] == 2


def test_events_merge_like_span_deltas():
    a = ObsRegistry()
    a.record_event("health.x", "warning", 3.0, 1.0, {})
    b = ObsRegistry()
    b.record_event("health.x", "warning", 7.0, 1.0, {})
    b.record_event("health.y", "error", 1.0, 0.0, {})
    merged = ObsRegistry()
    merged.merge(a.snapshot())
    merged.merge(b.snapshot())
    snap = merged.snapshot()
    assert snap["events"]["health.x#warning"]["count"] == 2
    assert snap["events"]["health.x#warning"]["worst"] == 7.0
    assert snap["events"]["health.y#error"]["count"] == 1


def test_event_delta_subtracts_counts_keeps_worst():
    reg = ObsRegistry()
    reg.record_event("health.x", "warning", 3.0, 1.0, {})
    before = reg.snapshot()
    reg.record_event("health.x", "warning", 9.0, 1.0, {})
    delta = snapshot_delta(before, reg.snapshot())
    (entry,) = _events(delta)
    assert entry["count"] == 1
    assert entry["worst"] == 9.0
    # No event activity -> no event section noise.
    quiet = snapshot_delta(reg.snapshot(), reg.snapshot())
    assert quiet["events"] == {}
    assert quiet["events_dropped"] == 0


def test_health_event_is_noop_while_disabled_and_tags_path_when_on():
    obs.health_event("health.x", 1.0, 0.0)
    assert obs.registry().is_empty()
    obs.enable()
    with obs.span("outer"):
        with obs.span("inner"):
            obs.health_event("health.x", 1.0, 0.0, severity="error", op="A")
    (entry,) = _events(obs.snapshot())
    assert entry["path"] == "outer/inner"
    assert entry["tags"] == {"op": "A"}
    assert entry["severity"] == "error"


# -- CheckResult compatibility ----------------------------------------------------


def test_check_result_behaves_like_float_and_bool():
    ok = health.CheckResult("c", 1e-12, 1e-9, True)
    assert ok
    assert float(ok) == 1e-12
    assert ok < 1e-9
    assert ok <= 1e-12
    assert ok > 1e-15
    assert ok == 1e-12
    bad = health.CheckResult("c", 2.0, 1.0, False)
    assert not bad
    assert bad >= 1.0
    assert bad.to_dict() == {
        "name": "c", "value": 2.0, "threshold": 1.0, "passed": False,
    }


def test_check_finite_counts_bad_elements():
    clean = np.ones(4, dtype=complex)
    obs.enable()
    assert health.check_finite("health.t", clean)
    assert obs.registry().is_empty()
    dirty = np.array([1.0, np.nan, np.inf, 2.0])
    assert not health.check_finite("health.t", dirty, op="X")
    (entry,) = _events(obs.snapshot())
    assert entry["worst"] == 2.0  # two poisoned elements
    assert entry["severity"] == "error"


def test_smw_probe_enabled_reads_env(monkeypatch):
    monkeypatch.delenv("REPRO_OBS_SMW_CHECK", raising=False)
    assert not health.smw_probe_enabled()
    monkeypatch.setenv("REPRO_OBS_SMW_CHECK", "1")
    assert health.smw_probe_enabled()
    monkeypatch.setenv("REPRO_OBS_SMW_CHECK", "off")
    assert not health.smw_probe_enabled()


# -- snapshot analysis ------------------------------------------------------------


def _snapshot_with(*events):
    reg = ObsRegistry()
    for (name, severity, value, threshold, direction) in events:
        reg.record_event(name, severity, value, threshold, {},
                         direction=direction)
    return reg.snapshot()


def test_severity_counts_and_max_severity():
    snap = _snapshot_with(
        ("a", "info", 1.0, 0.0, "above"),
        ("b", "warning", 1.0, 0.5, "above"),
        ("b", "warning", 2.0, 0.5, "above"),
        ("c", "error", 1.0, 0.0, "above"),
    )
    assert health.severity_counts(snap) == {"info": 1, "warning": 2, "error": 1}
    assert health.max_severity(snap) == "error"
    assert health.max_severity(None) is None
    assert health.severity_counts({}) == {}


def test_worst_events_ranks_severity_then_badness():
    snap = _snapshot_with(
        ("noise", "info", 1.0, 2.0, "above"),
        ("mild", "warning", 1.1, 1.0, "above"),
        ("severe", "warning", 100.0, 1.0, "above"),
        ("fatal", "error", 1.0, 0.5, "above"),
    )
    ranked = health.worst_events(snap, n=10)
    assert [e["name"] for e in ranked] == ["fatal", "severe", "mild", "noise"]
    # min_severity keeps events at-or-above the floor; n truncates after ranking.
    at_least_warning = health.worst_events(snap, n=10, min_severity="warning")
    assert [e["name"] for e in at_least_warning] == ["fatal", "severe", "mild"]
    assert len(health.worst_events(snap, n=2, min_severity="warning")) == 2


def test_format_health_reports_counts_and_relation():
    assert health.format_health({}) == "health: no events recorded"
    snap = _snapshot_with(("health.m", "warning", 1e-8, 1e-6, "below"))
    text = health.format_health(snap)
    assert "1 warning" in text
    assert "< 1e-06" in text


# -- core probes ------------------------------------------------------------------


def test_smw_solve_emits_near_singular_warning():
    from repro.core.rank_one import smw_closed_loop

    column = np.zeros(5, dtype=complex)
    column[2] = -1.0 + 1e-8
    row = np.zeros(5, dtype=complex)
    row[2] = 1.0
    obs.enable()
    smw_closed_loop(column, row)
    entry = obs.snapshot()["events"][
        "health.rank_one.near_singular[size=5]#warning"
    ]
    assert entry["direction"] == "below"
    assert entry["worst"] == pytest.approx(1e-8)


def test_smw_identity_check_structured_and_compatible():
    from repro.core.rank_one import smw_identity_check

    column = np.array([0.3, 1.0, 0.3], dtype=complex)
    row = np.array([0.1, 0.2, 0.1], dtype=complex)
    result = smw_identity_check(column, row)
    assert isinstance(result, health.CheckResult)
    assert result
    assert result < 1e-12  # the historical bare-float comparison idiom
    # A failing tolerance emits a warning event when obs is on.
    obs.enable()
    failing = smw_identity_check(column, row, rtol=0.0)
    assert not failing
    assert "health.rank_one.smw_residual[size=3]#warning" in (
        obs.snapshot()["events"]
    )


def test_smw_opt_in_probe_runs_identity_check(monkeypatch):
    from repro.core.rank_one import smw_inverse_apply

    monkeypatch.setenv("REPRO_OBS_SMW_CHECK", "1")
    obs.enable()
    column = np.array([0.3, 1.0, 0.3], dtype=complex)
    row = np.array([0.1, 0.2, 0.1], dtype=complex)
    out = smw_inverse_apply(column, row, np.ones(3, dtype=complex))
    assert np.all(np.isfinite(out))
    # The healthy residual stays below tolerance: no event, no crash.
    assert "events" in obs.snapshot()


def test_truncation_convergence_and_tail_growth_events():
    from repro.core.truncation import choose_truncation_order

    def probe(operator, omega, order):
        # rel changes: 2->4 ~0.17, 4->8 ~0.33 (growth), 8->16 ~0.03 (accept).
        values = {2: 1.0, 4: 1.2, 8: 1.8, 16: 1.85}
        return np.full(omega.size, values[order], dtype=complex)

    obs.enable()
    report = choose_truncation_order(
        None, [1.0], rtol=0.1, initial_order=2, max_order=16, probe=probe
    )
    assert report.order == 16
    events = obs.snapshot()["events"]
    assert "health.truncation.tail_growth[order=8]#warning" in events
    assert "health.truncation.converged[order=16]#info" in events


def test_truncation_no_convergence_emits_error_event():
    from repro._errors import ConvergenceError
    from repro.core.truncation import choose_truncation_order

    def probe(operator, omega, order):
        return np.full(omega.size, float(order), dtype=complex)

    obs.enable()
    with pytest.raises(ConvergenceError):
        choose_truncation_order(
            None, [1.0], rtol=1e-9, initial_order=2, max_order=8, probe=probe
        )
    events = obs.snapshot()["events"]
    assert "health.truncation.no_convergence[order=8]#error" in events


def test_truncation_error_estimate_emits_event():
    from repro.core.truncation import truncation_error_estimate
    from repro.lti.transfer import TransferFunction
    from repro.core.operators import LTIOperator

    op = LTIOperator(TransferFunction([1.0], [1.0, 1.0]), omega0=2 * np.pi)
    obs.enable()
    estimate = truncation_error_estimate(op, [0.5, 1.0], order=2)
    events = obs.snapshot()["events"]
    key = next(k for k in events if k.startswith("health.truncation.error_estimate"))
    assert events[key]["worst"] == pytest.approx(estimate)


def test_is_periodic_check_structured_result():
    from repro.core.aliasing import AliasedSum
    from repro.lti.transfer import TransferFunction

    omega0 = 2 * np.pi
    alias = AliasedSum.of(TransferFunction([1.0], [1.0, 2.0, 1.0]), omega0)
    result = alias.is_periodic_check(0.17j * omega0)
    assert isinstance(result, health.CheckResult)
    assert result  # the historical `assert alias.is_periodic_check(s)` idiom
    assert float(result) >= 0.0
    assert result.threshold == 1e-8


def test_dense_grid_nonfinite_guard():
    from repro.core.operators import HarmonicOperator

    class PoisonedOperator(HarmonicOperator):
        def dense(self, s, order):
            n = 2 * order + 1
            out = np.zeros((n, n), dtype=complex)
            out[0, 0] = np.nan
            return out

        def fingerprint(self):
            return ("poisoned", id(self))

    obs.enable()
    PoisonedOperator(1.0).dense_grid(np.array([1j]), 1)
    events = obs.snapshot()["events"]
    key = "health.dense_grid.nonfinite[op=PoisonedOperator]#error"
    assert events[key]["worst"] == 1.0


def test_feedback_condition_sentinel():
    from repro.core.operators import FeedbackOperator, HarmonicOperator

    class IllConditioned(HarmonicOperator):
        def dense(self, s, order):
            n = 2 * order + 1
            out = np.zeros((n, n), dtype=complex)
            out[0, -1] = 1e15
            return out

        def fingerprint(self):
            return ("ill", id(self))

    obs.enable()
    FeedbackOperator(IllConditioned(1.0)).dense_grid(np.array([1j]), 1)
    events = obs.snapshot()["events"]
    key = "health.feedback.condition[order=1]#warning"
    assert events[key]["worst"] > health.CONDITION_LIMIT


def test_effective_gain_near_pole_emits_lambda_singular_warning():
    from repro.pll.closedloop import ClosedLoopHTM
    from repro.pll.design import design_typical_loop
    from repro.pll.poles import find_closed_loop_poles

    omega0 = 2 * np.pi
    pll = design_typical_loop(omega0=omega0, omega_ug=0.1 * omega0)
    pole = find_closed_loop_poles(pll)[0]
    closed = ClosedLoopHTM(pll)
    obs.enable()
    closed.effective_gain(pole.s)
    events = obs.snapshot()["events"]
    key = "health.closedloop.lambda_singular[method=closed]#warning"
    assert key in events
    assert events[key]["worst"] < health.LAMBDA_SINGULAR_TOL


# -- CLI: health report and gate --------------------------------------------------


def _write_snapshot(path, snapshot):
    path.write_text(json.dumps(snapshot, indent=2))
    return str(path)


def test_cli_obs_health_reports_and_gates(tmp_path, capsys):
    snap = _snapshot_with(("health.m", "warning", 1e-8, 1e-6, "below"))
    source = _write_snapshot(tmp_path / "snap.json", snap)

    assert main(["obs", "health", source]) == 0
    out = capsys.readouterr().out
    assert "health.m" in out
    assert "1 warning" in out

    assert main(["obs", "health", source, "--fail-on", "warning"]) == 1
    assert "health gate" in capsys.readouterr().err
    assert main(["obs", "health", source, "--fail-on", "error"]) == 0


def test_cli_obs_health_clean_snapshot_passes_gate(tmp_path, capsys):
    obs.enable()
    with obs.span("work"):
        pass
    source = _write_snapshot(tmp_path / "snap.json", obs.snapshot())
    assert main(["obs", "health", source, "--fail-on", "warning"]) == 0
    assert "no events" in capsys.readouterr().out


def test_cli_obs_health_severity_filter(tmp_path, capsys):
    snap = _snapshot_with(
        ("quiet", "info", 1.0, 2.0, "above"),
        ("loud", "warning", 3.0, 1.0, "above"),
    )
    source = _write_snapshot(tmp_path / "snap.json", snap)
    assert main(["obs", "health", source, "--severity", "warning"]) == 0
    out = capsys.readouterr().out
    assert "loud" in out
    assert "quiet" not in out


# -- exports: CSV and Chrome trace ------------------------------------------------


def _full_snapshot():
    obs.enable()
    with obs.span("core.dense_grid", op="LTIOperator"):
        pass
    obs.add("memo.hit", 3.0)
    obs.observe("residual", 1e-9)
    obs.health_event("health.m", 1e-8, 1e-6, severity="warning",
                     direction="below", message="margin")
    snap = obs.snapshot()
    obs.disable()
    obs.reset()
    return snap


def test_to_csv_emits_one_row_per_bucket():
    rows = list(csv.DictReader(io.StringIO(to_csv(_full_snapshot()))))
    kinds = sorted(r["kind"] for r in rows)
    assert kinds == ["counter", "health", "histogram", "span"]
    (span_row,) = [r for r in rows if r["kind"] == "span"]
    assert span_row["name"] == "core.dense_grid"
    assert span_row["tags"] == "op=LTIOperator"
    (health_row,) = [r for r in rows if r["kind"] == "health"]
    assert health_row["severity"] == "warning"
    assert float(health_row["threshold"]) == 1e-6


def test_chrome_trace_is_valid_trace_event_format():
    trace = json.loads(to_chrome_trace(_full_snapshot()))
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert events, "trace must contain events"
    for event in events:
        assert isinstance(event["name"], str)
        assert event["ph"] in ("X", "C", "i")
        assert isinstance(event["ts"], (int, float))
        assert event["ts"] >= 0
        assert isinstance(event["pid"], int)
        if event["ph"] == "X":
            assert event["dur"] > 0
        if event["ph"] == "i":
            assert event["s"] in ("g", "p", "t")
    phases = {e["ph"] for e in events}
    assert phases == {"X", "C", "i"}


def test_cli_obs_export_csv_and_trace(tmp_path, capsys):
    source = _write_snapshot(tmp_path / "snap.json", _full_snapshot())

    assert main(["obs", "export", source, "--csv"]) == 0
    header = capsys.readouterr().out.splitlines()[0]
    assert header.startswith("kind,name,tags")

    trace_path = tmp_path / "trace.json"
    assert main(["obs", "export", source, "--trace", str(trace_path)]) == 0
    capsys.readouterr()
    trace = json.loads(trace_path.read_text())
    assert isinstance(trace["traceEvents"], list)


# -- campaign acceptance: near-singular point surfaces through the store ----------


@pytest.mark.campaign
def test_campaign_near_singular_point_fails_health_gate(tmp_path, capsys):
    """A grid containing a near-singular 1 + lambda(s) point must produce a
    warning HealthEvent visible via `repro obs health <store>`, and
    `--fail-on warning` must exit nonzero."""
    from repro.campaign import CampaignSpec, GridSpace, run_campaign
    from repro.campaign.tasks import _REGISTRY, register_task

    name = "_health_near_singular_probe"

    @register_task(name)
    def probe_task(params):
        """Evaluate lambda(s) on a micro-grid through a closed-loop pole."""
        from repro.campaign.tasks import design_from_params
        from repro.pll.closedloop import ClosedLoopHTM
        from repro.pll.poles import find_closed_loop_poles

        pll = design_from_params(params)
        closed = ClosedLoopHTM(pll)
        pole = find_closed_loop_poles(pll)[0]
        lam = closed.effective_gain(np.array([pole.s, pole.s + 1.0]))
        return {"min_margin": float(np.min(np.abs(1.0 + lam)))}

    try:
        obs.enable()
        spec = CampaignSpec.create(
            name="health-acceptance",
            space=GridSpace.of(ratio=[0.05, 0.1]),
            task=name,
        )
        store = tmp_path / "run.jsonl"
        result = run_campaign(spec, store, workers=1)
        assert result.telemetry.processed == 2
        assert result.telemetry.health_counts().get("warning", 0) >= 1
        obs.disable()

        assert main(["obs", "health", str(store)]) == 0
        assert "lambda_singular" in capsys.readouterr().out
        assert main(["obs", "health", str(store), "--fail-on", "warning"]) == 1
    finally:
        _REGISTRY.pop(name, None)
