"""Tests for repro.pll.closedloop — the SMW closed form (paper sec. 4)."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.blocks.delay import LoopDelay
from repro.blocks.pfd import SamplingPFD
from repro.blocks.vco import VCO
from repro.pll.architecture import PLL
from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.design import design_typical_loop
from repro.pll.openloop import lti_open_loop
from repro.signals.isf import ImpulseSensitivity

W0 = 2 * np.pi


@pytest.fixture(scope="module")
def pll():
    return design_typical_loop(omega0=W0, omega_ug=0.1 * W0)


@pytest.fixture(scope="module")
def closed(pll):
    return ClosedLoopHTM(pll)


class TestConstruction:
    def test_method_validated(self, pll):
        with pytest.raises(ValidationError):
            ClosedLoopHTM(pll, method="magic")

    def test_delay_forces_truncated(self):
        base = design_typical_loop(omega0=W0, omega_ug=0.05 * W0)
        delayed = PLL(
            pfd=base.pfd,
            charge_pump=base.charge_pump,
            filter_impedance=base.filter_impedance,
            vco=base.vco,
            delay=LoopDelay(0.02, W0),
        )
        with pytest.raises(ValidationError):
            ClosedLoopHTM(delayed, method="closed")
        assert ClosedLoopHTM(delayed, method="truncated").method == "truncated"

    def test_offset_forces_truncated(self):
        base = design_typical_loop(omega0=W0, omega_ug=0.05 * W0)
        shifted = PLL(
            pfd=SamplingPFD(W0, sampling_offset=0.1),
            charge_pump=base.charge_pump,
            filter_impedance=base.filter_impedance,
            vco=base.vco,
        )
        with pytest.raises(ValidationError):
            ClosedLoopHTM(shifted, method="closed")


class TestVtilde:
    def test_equals_shifted_a_for_lti_vco(self, pll, closed):
        """V_n(s) = A(s + j n w0) (eq. 29 with constant ISF)."""
        a = lti_open_loop(pll)
        s = 0.17j * W0
        for n in (-2, 0, 1, 3):
            assert closed.vtilde_element(s, n) == pytest.approx(
                complex(a(s + 1j * n * W0)), rel=1e-9
            )

    def test_vector_shape(self, closed):
        v = closed.vtilde(0.1j, 3)
        assert v.shape == (7,)
        assert v[3] == pytest.approx(closed.vtilde_element(0.1j, 0))

    def test_vectorized_over_s(self, closed):
        s = 1j * np.array([0.1, 0.2]) * W0
        out = closed.vtilde_element(s, 1)
        assert out.shape == (2,)


class TestEffectiveGain:
    def test_closed_equals_truncated(self, pll):
        lam_c = ClosedLoopHTM(pll, method="closed").effective_gain(0.13j * W0)
        lam_t = ClosedLoopHTM(pll, method="truncated", harmonics=4000).effective_gain(
            0.13j * W0
        )
        assert lam_c == pytest.approx(lam_t, rel=1e-3)

    def test_periodic_in_jw0(self, closed):
        s = 0.21j * W0
        assert closed.effective_gain(s + 1j * W0) == pytest.approx(
            closed.effective_gain(s), rel=1e-9
        )

    def test_reduces_to_a_for_slow_loop(self):
        """Deep-LTI regime: lambda(j w) ~ A(j w) near the crossover."""
        slow = design_typical_loop(omega0=W0, omega_ug=0.005 * W0)
        closed = ClosedLoopHTM(slow)
        a = lti_open_loop(slow)
        s = 1j * 0.005 * W0
        assert closed.effective_gain(s) == pytest.approx(complex(a(s)), rel=0.02)

    def test_response_grid(self, closed):
        omega = np.array([0.05, 0.1, 0.2]) * W0
        out = closed.effective_gain_response(omega)
        assert out.shape == (3,)
        assert out[1] == pytest.approx(closed.effective_gain(1j * omega[1]))


class TestClosedLoopElements:
    def test_h00_eq38(self, pll, closed):
        """H00 = A / (1 + lambda)."""
        a = lti_open_loop(pll)
        s = 0.14j * W0
        lam = closed.effective_gain(s)
        assert closed.h00(s) == pytest.approx(complex(a(s)) / (1 + lam), rel=1e-9)

    def test_element_independent_of_m(self, closed):
        """Rank-one row: H_{n,m} does not depend on m (zero offset)."""
        s = 0.19j * W0
        for n in (-1, 0, 2):
            vals = [closed.element(s, n, m) for m in (-2, 0, 1)]
            assert vals[0] == pytest.approx(vals[1])
            assert vals[1] == pytest.approx(vals[2])

    def test_matches_dense_reference_at_matched_truncation(self, pll):
        """SMW with truncated lambda == dense (I+G)^-1 G at the same order."""
        order = 25
        closed_t = ClosedLoopHTM(pll, method="truncated", harmonics=order)
        s = 0.11j * W0
        dense = closed_t.dense_reference(s, order)
        assert closed_t.h00(s) == pytest.approx(dense.element(0, 0), rel=1e-6)
        assert closed_t.element(s, 1, 0) == pytest.approx(dense.element(1, 0), rel=1e-6)

    def test_closed_form_close_to_large_dense(self, pll, closed):
        dense = closed.dense_reference(0.11j * W0, 60)
        assert closed.h00(0.11j * W0) == pytest.approx(dense.element(0, 0), rel=5e-3)

    def test_dc_limit_is_unity(self, closed):
        """Type-2 loop: H00 -> 1 as s -> 0 (perfect tracking)."""
        assert abs(closed.h00(1e-7j * W0)) == pytest.approx(1.0, abs=1e-4)

    def test_sensitivity_complements_h00(self, closed):
        s = 0.23j * W0
        assert closed.sensitivity_element(s, 0, 0) == pytest.approx(
            1.0 - closed.h00(s)
        )
        assert closed.sensitivity_element(s, 1, 0) == pytest.approx(
            -closed.element(s, 1, 0)
        )

    def test_closed_loop_row(self, closed):
        s = 0.2j * W0
        row = closed.closed_loop_row(s, 2)
        assert row.shape == (5,)
        assert row[2] == pytest.approx(closed.h00(s))

    def test_frequency_response_alias(self, closed):
        omega = np.array([0.1, 0.3]) * W0
        assert np.allclose(closed.frequency_response(omega), closed.eval_jomega(omega))


class TestLPTVVCO:
    def make_lptv_pll(self, ripple=0.3):
        base = design_typical_loop(omega0=W0, omega_ug=0.08 * W0)
        isf = ImpulseSensitivity.sinusoidal(1.0, ripple, W0)
        return PLL(
            pfd=base.pfd,
            charge_pump=base.charge_pump,
            filter_impedance=base.filter_impedance,
            vco=VCO(isf),
        )

    def test_closed_form_matches_dense(self):
        pll = self.make_lptv_pll()
        order = 30
        closed = ClosedLoopHTM(pll, method="truncated", harmonics=order)
        s = 0.13j * W0
        dense = closed.dense_reference(s, order)
        # The dense product truncates intermediate bands at +-order while the
        # SMW column convolves the full ISF at the edges: agreement is set by
        # the edge terms, a few times 1e-5 here.
        assert closed.h00(s) == pytest.approx(dense.element(0, 0), rel=1e-3)
        assert closed.element(s, -1, 0) == pytest.approx(dense.element(-1, 0), rel=1e-3)

    def test_closed_method_supported(self):
        """The coth closed form extends to LPTV ISFs (sum over harmonics)."""
        pll = self.make_lptv_pll()
        closed_c = ClosedLoopHTM(pll, method="closed")
        closed_t = ClosedLoopHTM(pll, method="truncated", harmonics=4000)
        s = 0.09j * W0
        assert closed_c.effective_gain(s) == pytest.approx(
            closed_t.effective_gain(s), rel=1e-3
        )

    def test_ripple_changes_conversion(self):
        """A time-varying ISF adds conversion beyond the sampler's."""
        flat = ClosedLoopHTM(self.make_lptv_pll(ripple=1e-12))
        rippled = ClosedLoopHTM(self.make_lptv_pll(ripple=0.5))
        s = 0.1j * W0
        flat_conv = abs(flat.element(s, 1, 0))
        rippled_conv = abs(rippled.element(s, 1, 0))
        assert rippled_conv != pytest.approx(flat_conv, rel=1e-3)
