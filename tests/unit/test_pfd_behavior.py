"""Tests for repro.simulator.pfd_behavior — the tri-state state machine."""

import pytest

from repro._errors import ValidationError
from repro.simulator.pfd_behavior import PFDState, PumpInterval, TriStatePFD


class TestBasicOperation:
    def test_ref_leads_produces_up(self):
        pfd = TriStatePFD()
        pfd.reference_edge(1.0)
        pfd.vco_edge(1.3)
        assert len(pfd.intervals) == 1
        interval = pfd.intervals[0]
        assert interval.state is PFDState.UP
        assert interval.width == pytest.approx(0.3)

    def test_vco_leads_produces_down(self):
        pfd = TriStatePFD()
        pfd.vco_edge(2.0)
        pfd.reference_edge(2.5)
        assert pfd.intervals[0].state is PFDState.DOWN
        assert pfd.intervals[0].width == pytest.approx(0.5)

    def test_simultaneous_edges_zero_width(self):
        pfd = TriStatePFD()
        pfd.reference_edge(1.0)
        pfd.vco_edge(1.0)
        assert pfd.intervals[0].width == 0.0

    def test_state_returns_to_neutral(self):
        pfd = TriStatePFD()
        pfd.reference_edge(1.0)
        assert pfd.state is PFDState.UP
        pfd.vco_edge(1.1)
        assert pfd.state is PFDState.NEUTRAL

    def test_repeated_ref_edges_stay_up(self):
        """Frequency detection: missing VCO edges keep UP asserted."""
        pfd = TriStatePFD()
        pfd.reference_edge(1.0)
        pfd.reference_edge(2.0)
        assert pfd.state is PFDState.UP
        pfd.vco_edge(2.4)
        assert pfd.intervals[0].width == pytest.approx(1.4)

    def test_time_order_enforced(self):
        pfd = TriStatePFD()
        pfd.reference_edge(2.0)
        with pytest.raises(ValidationError):
            pfd.vco_edge(1.0)


class TestProcess:
    def test_locked_sequence(self):
        pfd = TriStatePFD()
        ref = [1.0, 2.0, 3.0]
        vco = [1.1, 2.05, 3.0]
        intervals = pfd.process(ref, vco)
        assert len(intervals) == 3
        assert all(i.state is PFDState.UP for i in intervals[:2])
        widths = [i.width for i in intervals]
        assert widths == pytest.approx([0.1, 0.05, 0.0])

    def test_alternating_leads(self):
        pfd = TriStatePFD()
        intervals = pfd.process([1.0, 2.1], [1.2, 2.0])
        assert intervals[0].state is PFDState.UP
        assert intervals[1].state is PFDState.DOWN

    def test_net_charge_sign(self):
        pfd = TriStatePFD()
        pfd.process([1.0], [1.25])
        assert pfd.net_charge(1e-3) == pytest.approx(0.25e-3)
        pfd2 = TriStatePFD()
        pfd2.process([1.25], [1.0])
        assert pfd2.net_charge(1e-3) == pytest.approx(-0.25e-3)

    def test_acquisition_like_burst(self):
        """VCO running fast: extra VCO edges produce growing DOWN drive."""
        pfd = TriStatePFD()
        ref = [1.0, 2.0]
        vco = [0.5, 1.4, 1.9]
        intervals = pfd.process(ref, vco)
        assert intervals[0].state is PFDState.DOWN
        assert pfd.net_charge(1.0) < 0


class TestPumpInterval:
    def test_width(self):
        assert PumpInterval(1.0, 1.5, PFDState.UP).width == pytest.approx(0.5)

    def test_order_validated(self):
        with pytest.raises(ValidationError):
            PumpInterval(2.0, 1.0, PFDState.UP)
