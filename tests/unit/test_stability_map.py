"""Tests for repro.experiments.stability_map."""

import numpy as np
import pytest

from repro.experiments.stability_map import format_table, run_stability_map


@pytest.fixture(scope="module")
def result():
    return run_stability_map(separations=(2.0, 4.0, 8.0), tol=3e-3)


class TestStabilityMap:
    def test_limits_in_physical_range(self, result):
        assert np.all(result.stability_limits > 0.1)
        assert np.all(result.stability_limits < 0.5)

    def test_margins_monotone_in_separation(self, result):
        assert np.all(np.diff(result.lti_phase_margins_deg) > 0)

    def test_limit_weakly_improves_with_margin(self, result):
        """More LTI margin buys only slightly more usable bandwidth ratio."""
        limits = result.stability_limits
        assert limits[-1] >= limits[0]
        assert limits[-1] - limits[0] < 0.1

    def test_reference_value_at_sep_4(self, result):
        idx = list(result.separations).index(4.0)
        assert result.stability_limits[idx] == pytest.approx(0.276, abs=0.01)

    def test_rows_and_table(self, result):
        rows = result.as_rows()
        assert len(rows) == 3 and len(rows[0]) == 3
        text = format_table(result)
        assert "separation" in text and "LTI" in text
