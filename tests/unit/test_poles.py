"""Tests for repro.pll.poles and AliasedSum.derivative."""

import numpy as np
import pytest

from repro._errors import ConvergenceError
from repro.core.aliasing import AliasedSum
from repro.lti.rational import RationalFunction
from repro.pll.design import design_typical_loop
from repro.pll.poles import dominant_pole, find_closed_loop_poles, refine_pole

W0 = 2 * np.pi


class TestAliasedSumDerivative:
    def test_matches_finite_difference(self):
        f = RationalFunction.from_zpk([-0.3], [-1.0, -2.0, 0.0], 1.0)
        alias = AliasedSum.of(f, W0)
        deriv = alias.derivative()
        s = 0.4 + 0.2j * W0
        h = 1e-6
        fd = (alias(s + h) - alias(s - h)) / (2 * h)
        assert deriv(s) == pytest.approx(fd, rel=1e-6)

    def test_derivative_periodicity(self):
        f = RationalFunction([1.0], [1.0, 1.0, 1.0])
        deriv = AliasedSum.of(f, W0).derivative()
        s = 0.1 + 0.2j
        assert deriv(s + 1j * W0) == pytest.approx(deriv(s), rel=1e-9)


@pytest.fixture(scope="module")
def pll():
    return design_typical_loop(omega0=W0, omega_ug=0.1 * W0)


class TestFindClosedLoopPoles:
    def test_residuals_tiny(self, pll):
        poles = find_closed_loop_poles(pll)
        assert len(poles) == 3
        assert all(p.residual < 1e-9 for p in poles)

    def test_multipliers_match_zdomain(self, pll):
        from repro.baselines.zdomain import closed_loop_z, sampled_open_loop

        poles = find_closed_loop_poles(pll)
        z_poles = np.sort_complex(closed_loop_z(sampled_open_loop(pll)).poles())
        multipliers = np.sort_complex(np.array([p.multiplier for p in poles]))
        assert np.allclose(multipliers, z_poles, atol=1e-10)

    def test_characteristic_equation_satisfied(self, pll):
        from repro.pll.closedloop import ClosedLoopHTM

        closed = ClosedLoopHTM(pll)
        for pole in find_closed_loop_poles(pll):
            assert abs(1.0 + closed.effective_gain(pole.s)) < 1e-8

    def test_stable_loop_all_lhp(self, pll):
        assert all(p.is_stable for p in find_closed_loop_poles(pll))

    def test_unstable_loop_rhp_pole(self):
        hot = design_typical_loop(omega0=W0, omega_ug=0.3 * W0)
        poles = find_closed_loop_poles(hot)
        assert any(not p.is_stable for p in poles)
        worst = dominant_pole(hot)
        assert worst.s.real > 0
        assert worst.damping_time_constant == float("inf")

    def test_instability_mode_at_half_reference_rate(self):
        """The unstable Floquet exponent sits at Im(s) = ±w0/2 — the aliased
        half-rate mode classical analysis cannot represent."""
        hot = design_typical_loop(omega0=W0, omega_ug=0.3 * W0)
        worst = dominant_pole(hot)
        assert abs(abs(worst.s.imag) - W0 / 2) < 1e-6

    def test_sorted_rightmost_first(self, pll):
        poles = find_closed_loop_poles(pll)
        reals = [p.s.real for p in poles]
        assert reals == sorted(reals, reverse=True)

    def test_quality_factor_finite_for_complex_pole(self):
        pll2 = design_typical_loop(omega0=W0, omega_ug=0.15 * W0)
        poles = find_closed_loop_poles(pll2)
        complex_poles = [p for p in poles if abs(p.s.imag) > 1e-6]
        if complex_poles:
            assert all(np.isfinite(p.quality_factor) for p in complex_poles)

    def test_dominant_matches_slow_lti_pole(self):
        """Deep-LTI regime: the dominant exponent approaches the dominant
        continuous closed-loop pole of A/(1+A)."""
        slow = design_typical_loop(omega0=W0, omega_ug=0.02 * W0)
        from repro.baselines.lti_approx import ClassicalLTIAnalysis

        lti_poles = ClassicalLTIAnalysis(slow).closed_loop.poles()
        lti_dominant = lti_poles[np.argmax(lti_poles.real)]
        ours = dominant_pole(slow)
        assert ours.s == pytest.approx(lti_dominant, rel=5e-2)

    def test_refine_pole(self, pll):
        first = find_closed_loop_poles(pll)[0]
        refined = refine_pole(pll, first.s + 0.01)
        assert refined.s == pytest.approx(first.s, abs=1e-8)

    def test_refine_bad_seed_fails_cleanly(self, pll):
        with pytest.raises(ConvergenceError):
            refine_pole(pll, 50.0 + 0.0j, max_iter=5)
