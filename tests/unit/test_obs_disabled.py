"""Disabled observability is invisible: no buckets, identical numerics.

Every instrumented call site is exercised with ``REPRO_OBS`` unset (the
default in the test environment) and must leave the process-global
registry empty; the results must be bitwise-identical to an enabled run of
the same computation.  This is the behavioural half of the "free when off"
contract — the timing half lives in ``benchmarks/bench_obs_overhead.py``.
"""

import numpy as np
import pytest

from repro.campaign import CampaignSpec, GridSpace, run_campaign
from repro.core.grid import FrequencyGrid
from repro.core.memo import grid_cache
from repro.core.operators import FeedbackOperator
from repro.obs import spans as obs
from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.design import design_typical_loop
from repro.pll.openloop import open_loop_operator


@pytest.fixture(autouse=True)
def _disabled_obs():
    """Run with obs off and a clean registry/cache; restore afterwards."""
    was_enabled = obs.enabled()
    obs.disable()
    obs.reset()
    grid_cache.clear()
    yield
    (obs.enable if was_enabled else obs.disable)()
    obs.reset()
    grid_cache.clear()


@pytest.fixture(scope="module")
def loop():
    return design_typical_loop(omega0=2 * np.pi, omega_ug=0.2 * 2 * np.pi)


def _grid(loop, points=20):
    return FrequencyGrid.baseband(loop.omega0, points=points).s


def test_dense_grid_call_sites_record_nothing_when_disabled(loop):
    op = FeedbackOperator(open_loop_operator(loop))
    op.dense_grid(_grid(loop), 4)  # composite: series/feedback/memo paths
    assert obs.registry().is_empty()


def test_closed_loop_call_sites_record_nothing_when_disabled(loop):
    closed = ClosedLoopHTM(loop)
    s = 1j * np.linspace(0.05, 0.5, 16)
    closed.h00(s)  # rank-one SMW + effective-gain instrumentation
    closed.vtilde_grid(s, order=4)
    assert obs.registry().is_empty()


def test_campaign_records_no_obs_when_disabled(tmp_path):
    spec = CampaignSpec.create(
        name="obs-off",
        space=GridSpace.of(ratio=[0.05, 0.1], separation=[4.0]),
        task="margins",
        defaults={"points": 200},
    )
    result = run_campaign(spec, tmp_path / "r.jsonl", workers=1)
    assert obs.registry().is_empty()
    assert result.telemetry.obs_snapshot() is None
    for record in result.records:
        assert "obs" not in record


def test_results_bitwise_identical_enabled_vs_disabled(loop):
    op = FeedbackOperator(open_loop_operator(loop))
    s = _grid(loop)
    closed = ClosedLoopHTM(loop)
    sj = 1j * np.linspace(0.05, 0.5, 16)

    disabled_grid = np.array(op.dense_grid(s, 4), copy=True)
    disabled_h00 = closed.h00(sj)

    grid_cache.clear()  # force recomputation, not a cache hit
    obs.enable()
    enabled_grid = np.array(op.dense_grid(s, 4), copy=True)
    enabled_h00 = closed.h00(sj)
    assert not obs.registry().is_empty()  # the same sites do record when on

    assert disabled_grid.dtype == enabled_grid.dtype
    assert np.array_equal(disabled_grid, enabled_grid)  # bitwise
    assert np.array_equal(disabled_h00, enabled_h00)
