"""Tests for repro.lti.statespace — exact stepping is the simulator's core."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.lti.statespace import StateSpace
from repro.lti.transfer import TransferFunction


def first_order():
    # H(s) = 1/(s+1): A=-1, B=1, C=1, D=0
    return StateSpace([[-1.0]], [[1.0]], [[1.0]], [[0.0]])


class TestConstruction:
    def test_shapes_validated(self):
        with pytest.raises(ValidationError):
            StateSpace([[1.0, 0.0]], [[1.0]], [[1.0]], [[0.0]])

    def test_b_rows_checked(self):
        with pytest.raises(ValidationError):
            StateSpace([[-1.0]], [[1.0], [1.0]], [[1.0]], [[0.0]])

    def test_c_cols_checked(self):
        with pytest.raises(ValidationError):
            StateSpace([[-1.0]], [[1.0]], [[1.0, 0.0]], [[0.0]])

    def test_d_shape_checked(self):
        with pytest.raises(ValidationError):
            StateSpace([[-1.0]], [[1.0]], [[1.0]], [[0.0, 0.0]])


class TestFromTransferFunction:
    @pytest.mark.parametrize(
        "num,den",
        [
            ([1.0], [1.0, 1.0]),
            ([1.0, 2.0], [1.0, 3.0, 5.0]),
            ([2.0, 0.0, 1.0], [1.0, 2.0, 2.0, 1.0]),
            ([1.0, 1.0], [1.0, 1.0, 0.0]),  # pole at origin
        ],
    )
    def test_transfer_matches(self, num, den):
        tf = TransferFunction(num, den)
        ss = StateSpace.from_transfer_function(tf)
        for s in (0.5j, 1.0 + 2j, 3.0):
            assert ss.transfer_at(s) == pytest.approx(tf(s), rel=1e-10)

    def test_feedthrough_biproper(self):
        tf = TransferFunction([2.0, 1.0], [1.0, 3.0])  # D = 2
        ss = StateSpace.from_transfer_function(tf)
        assert ss.D[0, 0] == pytest.approx(2.0)
        assert ss.transfer_at(1j) == pytest.approx(tf(1j))

    def test_pure_gain(self):
        ss = StateSpace.from_transfer_function(TransferFunction.gain(4.0))
        assert ss.order == 1  # degenerate 1-state realization with zero dynamics
        assert ss.transfer_at(2.0) == pytest.approx(4.0)

    def test_improper_rejected(self):
        with pytest.raises(ValidationError):
            StateSpace.from_transfer_function(TransferFunction([1.0, 0.0, 0.0], [1.0, 1.0]))

    def test_complex_coefficients_rejected(self):
        with pytest.raises(ValidationError):
            StateSpace.from_transfer_function(TransferFunction([1j], [1.0, 1.0]))

    def test_poles_match(self):
        tf = TransferFunction([1.0], [1.0, 3.0, 2.0])
        ss = StateSpace.from_transfer_function(tf)
        assert sorted(ss.poles().real) == pytest.approx([-2.0, -1.0])


class TestStepping:
    def test_zero_input_decay(self):
        ss = first_order()
        x, y = ss.step_held_input(np.array([1.0]), 0.0, 0.5)
        assert x[0] == pytest.approx(np.exp(-0.5))
        assert y == pytest.approx(np.exp(-0.5))

    def test_step_response_exact(self):
        ss = first_order()
        x, y = ss.step_held_input(np.zeros(1), 1.0, 0.7)
        assert y == pytest.approx(1.0 - np.exp(-0.7), rel=1e-12)

    def test_zero_dt_is_identity(self):
        ss = first_order()
        x, y = ss.step_held_input(np.array([0.3]), 2.0, 0.0)
        assert x[0] == pytest.approx(0.3)

    def test_negative_dt_rejected(self):
        with pytest.raises(ValidationError):
            first_order().step_held_input(np.zeros(1), 0.0, -1.0)

    def test_step_additivity(self):
        ss = StateSpace.from_transfer_function(TransferFunction([1.0, 2.0], [1.0, 3.0, 5.0]))
        x0 = np.array([0.2, -0.1])
        x_one, _ = ss.step_held_input(x0, 1.5, 0.9)
        x_a, _ = ss.step_held_input(x0, 1.5, 0.4)
        x_b, _ = ss.step_held_input(x_a, 1.5, 0.5)
        assert np.allclose(x_one, x_b, rtol=1e-12)

    def test_discretize_positive_dt_required(self):
        with pytest.raises(ValidationError):
            first_order().discretize(0.0)

    def test_discretize_matches_analytic(self):
        ad, bd = first_order().discretize(1.0)
        assert ad[0, 0] == pytest.approx(np.exp(-1.0))
        assert bd[0, 0] == pytest.approx(1.0 - np.exp(-1.0))

    def test_integrator_ramp(self):
        ss = StateSpace.from_transfer_function(TransferFunction.integrator(1.0))
        x, y = ss.step_held_input(np.zeros(1), 2.0, 3.0)
        assert y == pytest.approx(6.0)


class TestSimulateHeld:
    def test_piecewise_constant_tracks_exact(self):
        ss = first_order()
        times = np.linspace(0, 2.0, 21)
        inputs = np.ones_like(times)
        _, outputs = ss.simulate_held(times, inputs)
        assert np.allclose(outputs, 1.0 - np.exp(-times), rtol=1e-10)

    def test_input_switch(self):
        ss = first_order()
        times = np.array([0.0, 1.0, 2.0])
        inputs = np.array([1.0, 0.0, 0.0])
        _, outputs = ss.simulate_held(times, inputs)
        y1 = 1.0 - np.exp(-1.0)
        assert outputs[1] == pytest.approx(y1)
        assert outputs[2] == pytest.approx(y1 * np.exp(-1.0))

    def test_initial_state_respected(self):
        ss = first_order()
        _, outputs = ss.simulate_held(np.array([0.0, 1.0]), np.zeros(2), x0=np.array([2.0]))
        assert outputs[0] == pytest.approx(2.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            first_order().simulate_held(np.array([0.0, 1.0]), np.zeros(3))

    def test_decreasing_times_rejected(self):
        with pytest.raises(ValidationError):
            first_order().simulate_held(np.array([1.0, 0.0]), np.zeros(2))


class TestQueries:
    def test_dc_gain(self):
        assert first_order().dc_gain() == pytest.approx(1.0)

    def test_order(self):
        ss = StateSpace.from_transfer_function(TransferFunction([1.0], [1.0, 0.0, 1.0]))
        assert ss.order == 2

    def test_output(self):
        ss = StateSpace([[-1.0]], [[1.0]], [[2.0]], [[0.5]])
        assert ss.output(np.array([3.0]), 2.0) == pytest.approx(7.0)
