"""Vectorized batch adapters: the scalar path is the correctness oracle.

Every assertion here is about *identity*, not closeness: the stacked
batch evaluation must produce bit-for-bit the numbers the scalar adapter
produces per point (the contract that lets ``ExecutionPolicy.vectorize``
default to on).  Plus the degradation ladder: per-slot exceptions stay
per-slot, and a broken batch adapter falls back to the scalar path.
"""

import math

import pytest

from repro.campaign import (
    CampaignSpec,
    ExecutionPolicy,
    GridSpace,
    get_batch_task,
    register_batch_task,
    register_task,
    run_campaign,
    run_point_batch,
)
from repro.campaign.tasks import get_task

SPACE = GridSpace.of(ratio=[0.05, 0.1, 0.2], separation=[3.0, 5.0])


def _records_by_id(result):
    return {r["id"]: r for r in result.records}


def _assert_identical_metrics(a, b, context):
    assert a.keys() == b.keys(), context
    for key in a:
        va, vb = a[key], b[key]
        if isinstance(va, float) and math.isnan(va):
            assert math.isnan(vb), (context, key)
        else:
            assert va == vb, (context, key, va, vb)


class TestBitwiseIdentity:
    @pytest.mark.parametrize("task", ["margins", "band_map", "stability_cell"])
    def test_batch_adapter_matches_scalar(self, task):
        batch = list(SPACE.points())
        scalar_fn = get_task(task)
        batch_fn = get_batch_task(task)
        assert batch_fn is not None
        outcomes = batch_fn([dict(p) for p in batch])
        assert len(outcomes) == len(batch)
        for params, outcome in zip(batch, outcomes):
            expected = scalar_fn(dict(params))
            assert not isinstance(outcome, Exception)
            _assert_identical_metrics(
                {k: float(v) for k, v in expected.items()},
                {k: float(v) for k, v in outcome.items()},
                (task, params),
            )

    @pytest.mark.parametrize("task", ["margins", "band_map", "stability_cell"])
    def test_campaign_vectorized_matches_serial_scalar(self, task):
        spec = CampaignSpec.create(name="t", space=SPACE, task=task)
        scalar = run_campaign(
            spec, policy=ExecutionPolicy(scheduler="serial", vectorize=False)
        )
        vectorized = run_campaign(
            spec,
            policy=ExecutionPolicy(scheduler="pool", workers=2, batch_size=6),
        )
        ref = _records_by_id(scalar)
        assert len(vectorized.records) == len(scalar.records) == 6
        for record in vectorized.records:
            expected = ref[record["id"]]
            assert record["status"] == expected["status"] == "ok"
            assert record.get("vectorized") is True
            assert record.get("batch_points") == 6
            _assert_identical_metrics(
                expected["metrics"], record["metrics"], record["id"]
            )

    def test_mixed_shapes_split_into_groups(self):
        # Points with different grid resolutions can share one batch; the
        # adapter groups them internally and each still matches scalar.
        batch = [
            {"ratio": 0.1, "separation": 4.0, "points": 2000},
            {"ratio": 0.1, "separation": 4.0, "points": 4000},
            {"ratio": 0.2, "separation": 4.0, "points": 2000},
        ]
        scalar_fn = get_task("margins")
        outcomes = get_batch_task("margins")([dict(p) for p in batch])
        for params, outcome in zip(batch, outcomes):
            _assert_identical_metrics(
                {k: float(v) for k, v in scalar_fn(dict(params)).items()},
                {k: float(v) for k, v in outcome.items()},
                params,
            )


class TestPerSlotFailure:
    def test_bad_point_fails_alone(self):
        batch = [
            {"ratio": 0.1, "separation": 4.0},
            {"separation": 4.0},  # missing ratio -> ValidationError
            {"ratio": 0.2, "separation": 4.0},
        ]
        outcomes = get_batch_task("margins")([dict(p) for p in batch])
        assert not isinstance(outcomes[0], Exception)
        assert isinstance(outcomes[1], Exception)
        assert not isinstance(outcomes[2], Exception)

    def test_campaign_batch_failure_matches_scalar(self):
        from repro.campaign.spec import ListSpace

        space = ListSpace.of(
            [
                {"ratio": 0.1, "separation": 4.0},
                {"separation": 4.0},
                {"ratio": 0.2, "separation": 4.0},
            ]
        )
        spec = CampaignSpec.create(name="t", space=space, task="margins")
        scalar = run_campaign(
            spec, policy=ExecutionPolicy(scheduler="serial", vectorize=False)
        )
        vectorized = run_campaign(
            spec, policy=ExecutionPolicy(scheduler="pool", workers=2, batch_size=3)
        )
        ref = _records_by_id(scalar)
        for record in vectorized.records:
            expected = ref[record["id"]]
            assert record["status"] == expected["status"]
            if record["status"] == "failed":
                assert (
                    record["error"]["message"] == expected["error"]["message"]
                )
            else:
                _assert_identical_metrics(
                    expected["metrics"], record["metrics"], record["id"]
                )


def _unregistered_square(params):
    x = float(params["x"])
    return {"square": x * x}


class TestRunPointBatch:
    def _payloads(self, task, values):
        return [
            (task, f"p{i}", {"x": v}, None, 1) for i, v in enumerate(values)
        ]

    def test_scalar_task_without_batch_adapter_still_works(self):
        records = run_point_batch(
            self._payloads(_unregistered_square, [2.0, 3.0]), vectorize=True
        )
        assert [r["metrics"]["square"] for r in records] == [4.0, 9.0]
        # no batch adapter -> plain scalar records, no vectorized tag
        assert all("vectorized" not in r for r in records)

    def test_vectorize_off_uses_scalar_path(self):
        payloads = [
            ("margins", f"p{i}", {"ratio": r, "separation": 4.0}, None, 1)
            for i, r in enumerate([0.05, 0.1])
        ]
        records = run_point_batch(payloads, vectorize=False)
        assert all("vectorized" not in r for r in records)
        assert all(r["status"] == "ok" for r in records)

    def test_vectorized_records_carry_batch_shape(self):
        payloads = [
            ("margins", f"p{i}", {"ratio": r, "separation": 4.0}, None, 1)
            for i, r in enumerate([0.05, 0.1, 0.2])
        ]
        records = run_point_batch(payloads, vectorize=True)
        assert all(r["vectorized"] is True for r in records)
        assert all(r["batch_points"] == 3 for r in records)
        assert all(r["status"] == "ok" for r in records)

    def test_broken_batch_adapter_falls_back_to_scalar(self):
        calls = {"batch": 0}

        @register_task("broken_batch_demo")
        def scalar(params):
            return {"y": float(params["x"]) + 1.0}

        @register_batch_task("broken_batch_demo")
        def broken(batch):
            calls["batch"] += 1
            raise RuntimeError("batch machinery exploded")

        records = run_point_batch(
            self._payloads("broken_batch_demo", [1.0, 2.0]), vectorize=True
        )
        assert calls["batch"] == 1
        assert [r["metrics"]["y"] for r in records] == [2.0, 3.0]
        assert all(r["status"] == "ok" for r in records)
        assert all("vectorized" not in r for r in records)

    def test_wrong_length_batch_result_falls_back(self):
        @register_task("short_batch_demo")
        def scalar(params):
            return {"y": float(params["x"]) * 2.0}

        @register_batch_task("short_batch_demo")
        def short(batch):
            return [{"y": 0.0}]  # wrong length -> whole batch unusable

        records = run_point_batch(
            self._payloads("short_batch_demo", [1.0, 2.0]), vectorize=True
        )
        assert [r["metrics"]["y"] for r in records] == [2.0, 4.0]

    def test_single_point_skips_batch_machinery(self):
        records = run_point_batch(
            [("margins", "p0", {"ratio": 0.1, "separation": 4.0}, None, 1)],
            vectorize=True,
        )
        assert len(records) == 1
        assert "vectorized" not in records[0]
