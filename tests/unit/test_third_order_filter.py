"""Tests for the third-order loop filter and its loop-level consequences."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.blocks.chargepump import ChargePump
from repro.blocks.loopfilter import SeriesRCShuntCFilter, ThirdOrderFilter
from repro.blocks.pfd import SamplingPFD
from repro.blocks.vco import VCO
from repro.pll.architecture import PLL
from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.design import design_typical_loop
from repro.pll.margins import compare_margins

W0 = 2 * np.pi


@pytest.fixture(scope="module")
def stage1():
    return SeriesRCShuntCFilter.from_pole_zero(0.025 * W0, 0.4 * W0, 1e-3)


class TestThirdOrderFilter:
    def test_break_frequencies(self, stage1):
        filt = ThirdOrderFilter(stage1, resistance3=10.0, capacitance3=0.01)
        assert filt.third_pole_frequency == pytest.approx(10.0)
        assert filt.zero_frequency == pytest.approx(stage1.zero_frequency)
        assert filt.pole_frequency == pytest.approx(stage1.pole_frequency)

    def test_from_pole_frequencies(self):
        filt = ThirdOrderFilter.from_pole_frequencies(
            zero_frequency=0.1,
            pole_frequency=1.6,
            third_pole_frequency=3.0,
            total_capacitance=1e-3,
        )
        assert filt.third_pole_frequency == pytest.approx(3.0)

    def test_impedance_is_cascade(self, stage1):
        filt = ThirdOrderFilter(stage1, 10.0, 0.01)
        s = 0.3j
        expected = stage1.impedance()(s) / (1 + s / 10.0)
        assert filt.impedance()(s) == pytest.approx(expected)

    def test_four_poles(self, stage1):
        filt = ThirdOrderFilter(stage1, 10.0, 0.01)
        assert filt.impedance().poles().size == 3  # impedance: DC + wp + w3
        # Full open loop adds the VCO integrator -> 4 poles.

    def test_ripple_attenuation(self, stage1):
        filt = ThirdOrderFilter(stage1, resistance3=1.0, capacitance3=1.0 / W0)
        # Third pole at w0: attenuation at w0 is 3 dB.
        assert filt.ripple_attenuation_db(W0) == pytest.approx(3.01, abs=0.02)

    def test_requires_proper_first_stage(self):
        with pytest.raises(ValidationError):
            ThirdOrderFilter("not a filter", 1.0, 1.0)


class TestThirdOrderLoop:
    def make_loop(self, third_pole_factor):
        """Typical second-order design with an added smoothing pole."""
        base = design_typical_loop(omega0=W0, omega_ug=0.1 * W0)
        stage1 = SeriesRCShuntCFilter.from_pole_zero(0.025 * W0, 0.4 * W0, 1e-3)
        # Reuse the designed first stage by wrapping the PLL's impedance:
        filt = ThirdOrderFilter.from_pole_frequencies(
            0.025 * W0, 0.4 * W0, third_pole_factor * 0.1 * W0,
            total_capacitance=_designed_ctot(base),
        )
        return PLL(
            pfd=SamplingPFD(W0),
            charge_pump=ChargePump(base.charge_pump.current),
            filter_impedance=filt.impedance(),
            vco=VCO.time_invariant(1.0, W0),
        )

    def test_margin_cost_of_third_pole(self):
        loose = self.make_loop(third_pole_factor=8.0)
        tight = self.make_loop(third_pole_factor=2.0)
        pm_loose = compare_margins(loose).phase_margin_eff_deg
        pm_tight = compare_margins(tight).phase_margin_eff_deg
        assert pm_tight < pm_loose - 5.0

    def test_closed_form_still_works(self):
        pll = self.make_loop(third_pole_factor=4.0)
        closed = ClosedLoopHTM(pll)  # coth closed form handles extra pole
        s = 0.11j * W0
        trunc = ClosedLoopHTM(pll, method="truncated", harmonics=3000)
        assert closed.effective_gain(s) == pytest.approx(
            trunc.effective_gain(s), rel=1e-3
        )

    def test_zdomain_handles_third_order(self):
        from repro.baselines.zdomain import closed_loop_z, sampled_open_loop

        pll = self.make_loop(third_pole_factor=4.0)
        cz = closed_loop_z(sampled_open_loop(pll))
        assert cz.poles().size == 4
        assert cz.is_stable()


def _designed_ctot(pll) -> float:
    """Recover the designed total capacitance from the impedance DC slope."""
    z = pll.filter_impedance
    s = 1e-9j
    return float(abs(1.0 / (s * z(s))))
