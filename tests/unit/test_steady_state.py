"""Tests for repro.simulator.steady_state — the PSS shooting solver."""

import numpy as np
import pytest

from repro.blocks.chargepump import ChargePump
from repro.pll.architecture import PLL
from repro.pll.design import design_typical_loop
from repro.pll.spurs import measure_reference_spurs, predict_reference_spurs
from repro.simulator.steady_state import solve_periodic_steady_state

W0 = 2 * np.pi


def leaky_pll(leakage=1e-6, ratio=0.05):
    base = design_typical_loop(omega0=W0, omega_ug=ratio * W0, charge_pump_current=1e-3)
    return PLL(
        pfd=base.pfd,
        charge_pump=ChargePump(1e-3, leakage=leakage),
        filter_impedance=base.filter_impedance,
        vco=base.vco,
    )


class TestSolve:
    def test_ideal_loop_fixed_point_is_origin(self):
        pll = design_typical_loop(omega0=W0, omega_ug=0.05 * W0)
        pss = solve_periodic_steady_state(pll)
        assert np.max(np.abs(pss.state)) < 1e-12
        assert np.max(np.abs(pss.theta)) < 1e-12

    def test_converges_to_machine_precision(self):
        pss = solve_periodic_steady_state(leaky_pll())
        assert pss.residual < 1e-13

    def test_orbit_is_periodic(self):
        """Re-propagating the fixed point one cycle returns it."""
        from repro.simulator.floquet import _CycleMap

        pll = leaky_pll()
        pss = solve_periodic_steady_state(pll)
        cm = _CycleMap(pll)
        back = cm(pss.state, cycle=1)
        assert np.allclose(back, pss.state, atol=1e-13)

    def test_unstable_loop_still_has_stationary_orbit(self):
        """Shooting with the Newton correction converges to *unstable*
        periodic orbits too — the stationary orbit the physical loop's limit
        cycle surrounds.  The fixed point is valid; only its Floquet
        stability differs."""
        hot = leaky_pll(ratio=0.3)
        pss = solve_periodic_steady_state(hot)
        assert pss.residual < 1e-12
        from repro.simulator.floquet import floquet_multipliers

        assert not floquet_multipliers(leaky_pll(ratio=0.3)).is_stable


class TestAgainstOtherRoutes:
    @pytest.fixture(scope="class")
    def routes(self):
        pll = leaky_pll()
        return (
            solve_periodic_steady_state(pll),
            predict_reference_spurs(pll, harmonics=3),
            measure_reference_spurs(pll, harmonics=3, settle_cycles=400, measure_cycles=64),
        )

    def test_harmonics_match_settling_route(self, routes):
        # The settle-based estimate carries a residual-transient error of a
        # couple of percent; the PSS value is exact.
        pss, _, settle = routes
        for k in (1, 2, 3):
            assert abs(pss.phase_harmonic(k, W0)) == pytest.approx(
                abs(settle.harmonics[k]), rel=0.05
            )

    def test_harmonics_match_analytic_model(self, routes):
        pss, analytic, _ = routes
        for k in (1, 2, 3):
            assert abs(pss.phase_harmonic(k, W0)) == pytest.approx(
                abs(analytic.harmonics[k]), rel=0.02
            )

    def test_static_offset_consistent(self, routes):
        """The orbit's mean phase equals minus the compensating pulse width
        up to the ripple-induced sub-period correction."""
        pss, analytic, _ = routes
        assert abs(pss.static_phase_offset()) == pytest.approx(
            analytic.pulse_width, rel=0.05
        )

    def test_pss_faster_than_settling(self):
        import time

        pll = leaky_pll()
        start = time.perf_counter()
        solve_periodic_steady_state(pll)
        pss_time = time.perf_counter() - start
        start = time.perf_counter()
        measure_reference_spurs(pll, harmonics=3, settle_cycles=400, measure_cycles=64)
        settle_time = time.perf_counter() - start
        assert pss_time < settle_time
