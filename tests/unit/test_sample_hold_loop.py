"""Tests for sample-and-hold PFD loops — the 'arbitrary PFD' extension."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.baselines.zdomain import closed_loop_z, sampled_open_loop, stability_limit_ratio
from repro.blocks.chargepump import ChargePump
from repro.blocks.pfd import SampleHoldPFD
from repro.core.operators import FeedbackOperator
from repro.pll.architecture import PLL
from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.design import design_typical_loop
from repro.pll.openloop import lti_open_loop, open_loop_callable, open_loop_operator

W0 = 2 * np.pi


def sh_pll(ratio, icp_scale=1.0):
    base = design_typical_loop(omega0=W0, omega_ug=ratio * W0)
    return PLL(
        pfd=SampleHoldPFD(W0),
        charge_pump=ChargePump(base.charge_pump.current * icp_scale),
        filter_impedance=base.filter_impedance,
        vco=base.vco,
    )


class TestOpenLoop:
    def test_rational_a_rejected(self):
        with pytest.raises(ValidationError):
            lti_open_loop(sh_pll(0.05))

    def test_callable_includes_hold(self):
        pll = sh_pll(0.05)
        imp = design_typical_loop(omega0=W0, omega_ug=0.05 * W0)
        a_sh = open_loop_callable(pll)
        a_imp = open_loop_callable(imp)
        s = 1j * 0.07 * W0
        expected = a_imp(s) * pll.pfd.hold_transfer(s) / pll.period
        assert complex(a_sh(s)) == pytest.approx(complex(expected))

    def test_operator_matches_callable_on_diagonal_column(self):
        pll = sh_pll(0.05)
        s = 1j * 0.06 * W0
        mat = open_loop_operator(pll).dense(s, 2)
        a = open_loop_callable(pll)
        # Column 0: V_n(s) = A(s + j n w0) with the hold folded in.
        for n in (-1, 0, 1):
            assert mat[n + 2, 2] == pytest.approx(complex(a(s + 1j * n * W0)), rel=1e-9)


class TestClosedLoop:
    def test_closed_form_rejected(self):
        with pytest.raises(ValidationError):
            ClosedLoopHTM(sh_pll(0.05), method="closed")

    def test_smw_matches_dense_at_matched_truncation(self):
        pll = sh_pll(0.05)
        order = 25
        closed = ClosedLoopHTM(pll, method="truncated", harmonics=order)
        s = 1j * 0.07 * W0
        dense = FeedbackOperator(open_loop_operator(pll)).htm(s, order)
        assert closed.h00(s) == pytest.approx(dense.element(0, 0), rel=1e-9)

    def test_zdomain_identity_for_zoh(self):
        """lambda(s) = G_z(e^{sT}) with the ZOH-transform G_z."""
        pll = sh_pll(0.05)
        closed = ClosedLoopHTM(pll, method="truncated", harmonics=2000)
        gz = sampled_open_loop(pll)
        for s in (1j * 0.07 * W0, 0.2 + 0.11j * W0):
            lam = closed.effective_gain(s)
            assert gz.at_s(s) == pytest.approx(lam, rel=1e-6)

    def test_hold_attenuates_conversion_ripple(self):
        """The ZOH nulls at k*w0 suppress the output content at reference
        harmonics relative to the impulse-sampling loop."""
        imp = design_typical_loop(omega0=W0, omega_ug=0.05 * W0)
        sh = sh_pll(0.05)
        closed_imp = ClosedLoopHTM(imp)
        closed_sh = ClosedLoopHTM(sh, method="truncated", harmonics=400)
        s = 1j * 0.03 * W0
        conv_imp = abs(closed_imp.element(s, 1, 0))
        conv_sh = abs(closed_sh.element(s, 1, 0))
        assert conv_sh < 0.5 * conv_imp


class TestStability:
    def test_zdomain_poles_count(self):
        cz = closed_loop_z(sampled_open_loop(sh_pll(0.05)))
        # ZOH transform of the 3rd-order F/s: poles {1, 1, e^{-wp T}} plus
        # the explicit z factor from (1 - z^-1) -> closed loop order 4.
        assert cz.poles().size == 4
        assert cz.is_stable()

    def test_gain_matched_hold_extends_stability(self):
        """At matched crossover gain (|A(j w_ug)| = 1 for both), the
        sample-and-hold loop is *more* stable than the impulse-sampling
        loop: the ZOH's transmission nulls at k*w0 suppress exactly the
        alias terms of lambda = sum A(s + j m w0) that drive the sampling
        instability, and that wins over the hold's -wT/2 phase lag for this
        loop shape.  (Measured: 0.353 vs 0.276.)"""
        limit_imp = stability_limit_ratio(
            lambda r: design_typical_loop(omega0=W0, omega_ug=r * W0)
        )

        def designer(ratio):
            # Renormalise the pump so |A_sh(j w_ug)| = 1 despite the ZOH
            # sinc roll-off: |ZOH(j w)/T| = |sinc(w T / 2pi)|.
            sinc = abs(np.sinc(ratio))  # w_ug T / 2pi = ratio
            return sh_pll(ratio, icp_scale=1.0 / sinc)

        limit_sh = stability_limit_ratio(designer)
        assert limit_sh > limit_imp
        assert limit_sh == pytest.approx(0.353, abs=0.02)

    def test_compare_margins_supports_hold(self):
        """The margin tooling works directly on the irrational S&H loop."""
        from repro.pll.margins import compare_margins

        margins = compare_margins(sh_pll(0.1))
        assert np.isfinite(margins.phase_margin_eff_deg)
        assert np.isfinite(margins.phase_margin_lti_deg)
        # The hold's phase lag shows even in the 'LTI' (single-band) view.
        assert margins.phase_margin_lti_deg < 61.9

    def test_unmatched_hold_even_more_stable(self):
        """Without gain renormalisation the sinc roll-off additionally
        lowers the loop gain, pushing the raw boundary out further still."""
        limit_matched = 0.353
        limit_sh = stability_limit_ratio(sh_pll)
        assert limit_sh > limit_matched
