"""Tests for the ``repro campaign watch`` dashboard and CLI path validation."""

import io

import pytest

from repro._errors import ValidationError
from repro.campaign import CampaignSpec, ListSpace, run_campaign
from repro.campaign.store import ResultStore
from repro.campaign.watch import _bar, _eta_seconds, _fmt_bytes, _fmt_seconds, render, watch
from repro.cli import main
from repro.obs import stream as obs_stream

pytestmark = pytest.mark.campaign


def double(params):
    return {"y": params["x"] * 2.0}


def _run(store, n=6, **kwargs):
    spec = CampaignSpec.create(
        name="watched",
        space=ListSpace.of([{"x": float(i)} for i in range(n)]),
        task=double,
    )
    return run_campaign(spec, store, **kwargs)


class TestRender:
    def test_complete_run_frame(self, tmp_path):
        store = tmp_path / "r.jsonl"
        _run(store)
        frame = render(store)
        first = frame.splitlines()[0]
        assert "watched" in first
        assert "COMPLETE" in first
        assert "manifest: spec" in frame
        assert "6/6 (100%)" in frame
        assert "finished: 6 ok / 0 failed" in frame
        assert "[" + "#" * 32 + "]" in frame

    def test_partial_store_frame(self, tmp_path):
        store = tmp_path / "r.jsonl"
        _run(store)
        # Truncate to header + 2 point lines: a mid-run (or killed) store.
        lines = store.read_text().splitlines()
        points = [ln for ln in lines if '"kind":"point"' in ln]
        store.write_text("\n".join([lines[0]] + points[:2]) + "\n")
        frame = render(store)
        assert "COMPLETE" not in frame.splitlines()[0]
        assert "2/6" in frame
        assert "4 pending" in frame
        assert "workers: no heartbeats found" in frame

    def test_stream_line_and_eta(self, tmp_path):
        store = tmp_path / "r.jsonl"
        _run(store)
        lines = store.read_text().splitlines()
        points = [ln for ln in lines if '"kind":"point"' in ln]
        store.write_text("\n".join([lines[0]] + points[:3]) + "\n")
        obs_stream.stream_path(store).write_text(
            '{"kind":"stream","seq":0,"time":100.0,"done":0,"failed":0,'
            '"cache_hits":3,"cache_misses":1,"stalls":1}\n'
            '{"kind":"stream","seq":1,"time":103.0,"done":3,"failed":0,'
            '"cache_hits":3,"cache_misses":1,"stalls":1}\n'
        )
        frame = render(store)
        assert "stream: 2 sample(s)" in frame
        assert "cache 75% hit" in frame
        assert "1 stall(s)" in frame
        # 3 pending at 1 point/s observed -> ~3s
        assert "eta: ~3s at observed throughput" in frame

    def test_render_missing_store_raises(self, tmp_path):
        with pytest.raises(ValidationError):
            render(tmp_path / "absent.jsonl")

    def test_render_directory_raises_with_path(self, tmp_path):
        with pytest.raises(ValidationError, match=str(tmp_path)):
            render(tmp_path)


class TestWatchLoop:
    def test_once_prints_single_frame(self, tmp_path):
        store = tmp_path / "r.jsonl"
        _run(store)
        out = io.StringIO()
        assert watch(store, once=True, out=out) == 0
        assert "COMPLETE" in out.getvalue()
        assert "\x1b" not in out.getvalue()  # --once stays pipe-friendly

    def test_refresh_loop_exits_on_complete(self, tmp_path):
        store = tmp_path / "r.jsonl"
        _run(store)
        out = io.StringIO()
        assert watch(store, interval=0.01, out=out) == 0
        assert out.getvalue().startswith("\x1b[2J\x1b[H")


class TestHelpers:
    def test_bar_shapes(self):
        assert _bar(0, 0, 0) == "[" + "?" * 32 + "]"
        assert _bar(4, 0, 8).count("#") == 16
        # a single failure always gets at least one cell
        assert "x" in _bar(999, 1, 1000)

    def test_fmt_seconds(self):
        assert _fmt_seconds(45) == "45s"
        assert _fmt_seconds(600) == "10m"
        assert _fmt_seconds(8000) == "2.2h"

    def test_fmt_bytes(self):
        assert _fmt_bytes(123_000_000) == "123MB"

    def test_eta_none_without_throughput(self):
        assert _eta_seconds([], 5) is None
        assert _eta_seconds(
            [{"time": 1.0, "done": 2, "failed": 0}] * 2, 5
        ) is None  # no gain
        assert _eta_seconds(
            [
                {"time": 1.0, "done": 0, "failed": 0},
                {"time": 2.0, "done": 4, "failed": 0},
            ],
            0,
        ) is None  # nothing pending


class TestCli:
    def test_campaign_watch_once_exit_zero(self, tmp_path, capsys):
        store = tmp_path / "r.jsonl"
        _run(store)
        assert main(["campaign", "watch", str(store), "--once"]) == 0
        out = capsys.readouterr().out
        assert "COMPLETE" in out
        assert "manifest: spec" in out

    def test_campaign_watch_bad_path_exit_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["campaign", "watch", str(missing), "--once"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_obs_on_directory_names_path(self, tmp_path, capsys):
        assert main(["obs", "summary", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert str(tmp_path) in err
        assert "is a directory" in err

    def test_campaign_status_shows_manifest(self, tmp_path, capsys):
        store = tmp_path / "r.jsonl"
        _run(store)
        assert main(["campaign", "status", str(store)]) == 0
        assert "manifest" in capsys.readouterr().out


class TestStoreValidation:
    def test_open_directory_raises_with_path(self, tmp_path):
        with pytest.raises(ValidationError, match="is a directory"):
            ResultStore.open(tmp_path)
