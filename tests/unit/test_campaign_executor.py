"""Failure-path tests for the campaign executor.

Covers the ISSUE acceptance behaviors: retry-then-record-failure, per-point
timeout on a hanging adapter (including adapters that catch ``Exception``
broadly), resume-after-kill from a partial JSONL store, and serial/pool
result equivalence.  Module-level task functions keep everything picklable
for the process-pool paths.
"""

import math
import os
import time

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.campaign import (
    CampaignSpec,
    ExecutionPolicy,
    GridSpace,
    ListSpace,
    ResultStore,
    resume_campaign,
    run_campaign,
)

MARKED = 0.75  # the poisoned x value for failure-injection tasks


def square_task(params):
    """Deterministic, cheap, picklable."""
    x = float(params["x"])
    return {"square": x * x, "cube": x**3}


def flaky_task(params):
    """Raises on the marked point — every attempt."""
    if params["x"] == MARKED:
        raise RuntimeError("singular closed-loop solve")
    return square_task(params)


def hang_task(params):
    """Hangs on the marked point, inside a broad ``except Exception``."""
    if params["x"] == MARKED:
        try:
            time.sleep(30.0)
        except Exception:
            pass  # must NOT be able to swallow the timeout
    return square_task(params)


def pid_task(params):
    return {"pid": float(os.getpid())}


def xspace(values=(0.25, 0.5, MARKED, 1.0)):
    return ListSpace.of([{"x": float(v)} for v in values])


def make_spec(task, values=(0.25, 0.5, MARKED, 1.0), name="exec-test"):
    return CampaignSpec.create(name=name, space=xspace(values), task=task)


class TestErrorCapture:
    def test_one_bad_point_does_not_kill_the_run(self):
        result = run_campaign(make_spec(flaky_task))
        assert result.telemetry.done == 3
        assert result.telemetry.failed == 1
        failed = result.failed_records
        assert len(failed) == 1
        assert failed[0]["params"]["x"] == MARKED
        assert failed[0]["error"]["type"] == "RuntimeError"
        assert "singular" in failed[0]["error"]["message"]
        assert "traceback" in failed[0]["error"]
        # Metric arrays are NaN at the failed point, values elsewhere.
        squares = result.metric("square")
        assert np.isnan(squares[2])
        assert squares[0] == 0.25**2 and squares[3] == 1.0

    def test_retry_then_record_failure(self):
        result = run_campaign(make_spec(flaky_task), retries=2)
        record = result.failed_records[0]
        assert record["attempts"] == 3  # 1 initial + 2 retries
        assert result.telemetry.retried == 2
        # The healthy points were not retried.
        assert all(r["attempts"] == 1 for r in result.ok_records)

    def test_non_mapping_return_is_a_captured_failure(self):
        result = run_campaign(make_spec(lambda params: 42.0))
        assert result.telemetry.failed == 4
        assert result.failed_records[0]["error"]["type"] == "ValidationError"

    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            ExecutionPolicy(retries=-1)
        with pytest.raises(ValidationError):
            ExecutionPolicy(timeout=0.0)
        with pytest.raises(ValidationError):
            ExecutionPolicy(chunk_size=0)


@pytest.mark.skipif(
    not hasattr(__import__("signal"), "SIGALRM"), reason="needs SIGALRM"
)
class TestTimeout:
    def test_hang_is_interrupted_and_recorded(self):
        start = time.perf_counter()
        result = run_campaign(make_spec(hang_task), timeout=0.3)
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0  # nowhere near the 30 s sleep
        assert result.telemetry.done == 3
        failed = result.failed_records
        assert len(failed) == 1
        assert failed[0]["error"]["type"] == "PointTimeout"
        assert "timeout" in failed[0]["error"]["message"]

    def test_timeout_then_retry_counts_attempts(self):
        result = run_campaign(make_spec(hang_task), timeout=0.2, retries=1)
        assert result.failed_records[0]["attempts"] == 2
        assert result.telemetry.retried == 1


class TestSerialPoolEquivalence:
    def test_pool_results_bitwise_identical_to_serial(self):
        spec = make_spec(square_task, values=np.linspace(0.1, 2.0, 8))
        serial = run_campaign(spec, workers=1)
        pooled = run_campaign(spec, workers=2, chunk_size=2)
        assert pooled.telemetry.mode == "pool"
        assert [r["id"] for r in pooled.records] == [
            r["id"] for r in serial.records
        ]
        for a, b in zip(serial.records, pooled.records):
            assert a["metrics"] == b["metrics"]  # bitwise: exact float equality
        assert serial.metric("square").tobytes() == pooled.metric("square").tobytes()

    def test_pool_actually_uses_worker_processes(self):
        spec = make_spec(pid_task, values=np.linspace(0.1, 1.6, 6))
        result = run_campaign(spec, workers=2)
        worker_pids = {r["worker"] for r in result.records}
        assert os.getpid() not in worker_pids

    def test_unpicklable_task_falls_back_to_serial(self):
        marker = object()  # closures over unpicklables cannot cross the pool

        def task(params):
            assert marker is not None
            return {"m": float(params["x"])}

        result = run_campaign(make_spec(task), workers=4)
        assert result.telemetry.mode == "serial"
        assert result.telemetry.done == 4
        assert any("not picklable" in note for note in result.telemetry.notes)

    def test_pool_failures_capture_per_point(self):
        result = run_campaign(
            make_spec(flaky_task), workers=2, retries=1
        )
        assert result.telemetry.done == 3
        assert result.telemetry.failed == 1
        assert result.failed_records[0]["attempts"] == 2


class TestResume:
    def test_resume_after_kill_skips_finished_points(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        spec = make_spec(square_task, values=(0.1, 0.2, 0.3, 0.4, 0.5))
        full = run_campaign(spec, path, checkpoint_every=2)
        assert full.telemetry.done == 5

        # Simulate a crash: keep the header, the first two point records and
        # a torn partial third line.
        lines = path.read_text().splitlines()
        points = [l for l in lines if '"kind":"point"' in l]
        path.write_text(
            "\n".join([lines[0]] + points[:2]) + "\n" + points[2][:25]
        )

        calls_before = ResultStore.open(path).point_records()
        assert len(calls_before) == 2

        resumed = resume_campaign(path, task=square_task)
        assert resumed.telemetry.skipped == 2
        assert resumed.telemetry.done == 3  # only the missing points ran
        assert len(resumed.records) == 5
        # Store now holds all five terminal records, once each.
        final = ResultStore.open(path)
        assert len(final.point_records()) == 5
        assert final.status()["complete"]
        # Recomputed points agree exactly with the uninterrupted run.
        for a, b in zip(full.records, resumed.records):
            assert a["id"] == b["id"] and a["metrics"] == b["metrics"]

    def test_resume_recomputes_nothing_when_complete(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        spec = make_spec(square_task)
        run_campaign(spec, path)
        resumed = resume_campaign(path, task=square_task)
        assert resumed.telemetry.skipped == 4
        assert resumed.telemetry.processed == 0

    def test_resume_from_registry_task_needs_no_callable(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        spec = CampaignSpec.create(
            name="registry-resume",
            space=GridSpace.of(ratio=[0.05, 0.1], separation=[3.0, 4.0]),
            task="stability_limit",
            defaults={"omega0": 2 * math.pi, "tol": 5e-3},
        )
        first = run_campaign(spec, path)
        assert first.telemetry.done == 4
        lines = path.read_text().splitlines()
        points = [l for l in lines if '"kind":"point"' in l]
        path.write_text("\n".join([lines[0]] + points[:1]) + "\n")
        resumed = resume_campaign(path)  # spec + task rebuilt from the header
        assert resumed.telemetry.skipped == 1 and resumed.telemetry.done == 3
        for a, b in zip(first.records, resumed.records):
            assert a["metrics"] == b["metrics"]

    def test_retry_failed_reruns_terminal_failures(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_campaign(make_spec(flaky_task), path)
        # Default resume keeps the failure as terminal...
        resumed = resume_campaign(path, task=flaky_task)
        assert resumed.telemetry.skipped == 4 and resumed.telemetry.processed == 0
        # ...with a now-healthy task, retry_failed completes the map.
        healed = resume_campaign(path, task=square_task, retry_failed=True)
        assert healed.telemetry.skipped == 3
        assert healed.telemetry.done == 1 and healed.telemetry.failed == 0
        assert not healed.failed_records


class TestTelemetry:
    def test_summary_and_dict_fields(self):
        result = run_campaign(make_spec(flaky_task), retries=1)
        data = result.telemetry.to_dict()
        assert data["total_points"] == 4
        assert data["done"] == 3 and data["failed"] == 1 and data["retried"] == 1
        assert data["wall_seconds"] > 0
        assert 0 <= data["utilization"] <= 1.5
        assert data["cache"]["worker_processes"] == 1
        text = result.telemetry.summary()
        assert "3 ok" in text and "1 failed" in text and "1 retries" in text

    def test_store_gets_summary_and_checkpoints(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_campaign(
            make_spec(square_task, values=(0.1, 0.2, 0.3, 0.4, 0.5)),
            path,
            checkpoint_every=2,
        )
        kinds = [r["kind"] for r in ResultStore.open(path).records()]
        assert kinds.count("checkpoint") >= 2
        assert kinds[-1] == "summary"
        assert kinds[0] == "campaign"

    def test_grid_cache_deltas_surface_in_telemetry(self):
        # The band_map task evaluates HTM grids through dense_grid -> cache
        # misses on a cold cache, visible per worker in the telemetry.
        from repro.core.memo import clear_cache

        clear_cache()
        spec = CampaignSpec.create(
            name="cache-vis",
            space=ListSpace.of([{"ratio": 0.05}, {"ratio": 0.08}]),
            task="band_map",
            defaults={"order": 3, "points": 12},
        )
        result = run_campaign(spec)
        stats = result.telemetry.to_dict()["cache"]
        assert stats["misses"] > 0
        assert stats["worker_processes"] == 1
        assert result.telemetry.worker_caches[0].cache_misses > 0
