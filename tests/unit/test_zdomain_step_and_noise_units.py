"""Tests for the discrete step response and the dBc/Hz conversion helpers."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.baselines.zdomain import (
    ZTransferFunction,
    closed_loop_z,
    sampled_open_loop,
    step_response_samples,
)
from repro.pll.design import design_typical_loop
from repro.pll.noise import dbc_hz_to_seconds_psd, seconds_psd_to_dbc_hz

W0 = 2 * np.pi


class TestStepResponseSamples:
    def test_first_order_known(self):
        # y[n] for H = (1-a)z^{-1}/(1 - a z^{-1}) ... use simple H = z^{-1}:
        g = ZTransferFunction([1.0], [1.0, 0.0], period=1.0)  # 1/z
        y = step_response_samples(g, 4)
        assert np.allclose(y, [0.0, 1.0, 1.0, 1.0])

    def test_accumulator(self):
        g = ZTransferFunction([1.0, 0.0], [1.0, -1.0], period=1.0)  # z/(z-1)
        y = step_response_samples(g, 5)
        assert np.allclose(y, [1.0, 2.0, 3.0, 4.0, 5.0])

    def test_noncausal_rejected(self):
        g = ZTransferFunction([1.0, 0.0, 0.0], [1.0, -0.5], period=1.0)
        with pytest.raises(ValidationError):
            step_response_samples(g, 4)

    def test_final_value_tracks(self):
        cz = closed_loop_z(sampled_open_loop(design_typical_loop(W0, 0.1 * W0)))
        y = step_response_samples(cz, 300)
        assert y[-1] == pytest.approx(1.0, abs=1e-6)

    def test_matches_behavioural_samples(self):
        """The z-domain recursion reproduces the engine's sampled phase
        exactly (up to the finite pulse width) for a mid-cycle step."""
        from repro.simulator.engine import BehavioralPLLSimulator, SimulationConfig

        pll = design_typical_loop(W0, 0.1 * W0)
        cz = closed_loop_z(sampled_open_loop(pll))
        y = step_response_samples(cz, 50)
        step = 1e-4
        sim = BehavioralPLLSimulator(
            pll,
            theta_ref=lambda t: step if t >= 0.5 else 0.0,
            config=SimulationConfig(cycles=50, oversample=4),
        )
        result = sim.run()
        theta_samples = (step - result.phase_errors) / step
        # y[0] differs (the engine's cycle-1 sample sees the step already).
        assert np.max(np.abs(y[1:] - theta_samples[1:])) < 1e-3

    def test_overshoot_matches_continuous_peak_ordering(self):
        """Discrete overshoot grows with loop speed (margin erosion)."""
        peaks = []
        for ratio in (0.05, 0.15, 0.25):
            cz = closed_loop_z(sampled_open_loop(design_typical_loop(W0, ratio * W0)))
            peaks.append(float(np.max(step_response_samples(cz, 400).real)))
        assert peaks[0] < peaks[1] < peaks[2]


class TestNoiseUnitConversions:
    def test_round_trip(self):
        level = seconds_psd_to_dbc_hz(1e-30, carrier_frequency_hz=1e9)
        back = dbc_hz_to_seconds_psd(level, carrier_frequency_hz=1e9)
        assert back == pytest.approx(1e-30, rel=1e-12)

    def test_known_value(self):
        # S_theta = 1 s^2/Hz at 1/(2 pi) Hz carrier: S_phi = 1 rad^2/Hz,
        # L = 1/2 -> -3.01 dBc/Hz.
        level = seconds_psd_to_dbc_hz(1.0, carrier_frequency_hz=1 / (2 * np.pi))
        assert level == pytest.approx(-3.0103, abs=1e-3)

    def test_carrier_scaling(self):
        """+20 dB per decade of carrier frequency (phase scales with f_c)."""
        a = seconds_psd_to_dbc_hz(1e-30, 1e8)
        b = seconds_psd_to_dbc_hz(1e-30, 1e9)
        assert b - a == pytest.approx(20.0, abs=1e-9)

    def test_array_support(self):
        out = seconds_psd_to_dbc_hz(np.array([1e-30, 1e-28]), 1e9)
        assert out.shape == (2,)
        assert out[1] - out[0] == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            seconds_psd_to_dbc_hz(-1.0, 1e9)
        with pytest.raises(ValidationError):
            dbc_hz_to_seconds_psd(-100.0, 0.0)
