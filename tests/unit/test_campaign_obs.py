"""Campaign-scale observability acceptance: the 100-point span budget.

The ISSUE acceptance criterion for PR 3: after a 100-point campaign run
with observability on, ``repro obs export --json <store>`` must report
per-stage spans whose summed busy time is consistent with the run's
wall-clock budget — within 20% of the telemetry's busy-seconds figure and
never above ``wall x workers``.
"""

import json

import numpy as np
import pytest

from repro.campaign import CampaignSpec, GridSpace, run_campaign
from repro.cli import main
from repro.core.memo import grid_cache
from repro.obs import spans as obs

pytestmark = pytest.mark.campaign


@pytest.fixture(autouse=True)
def _obs_enabled():
    was_enabled = obs.enabled()
    obs.enable()
    obs.reset()
    grid_cache.clear()
    yield
    (obs.enable if was_enabled else obs.disable)()
    obs.reset()
    grid_cache.clear()


def _hundred_point_spec() -> CampaignSpec:
    return CampaignSpec.create(
        name="obs-acceptance",
        space=GridSpace.of(
            separation=[float(v) for v in np.linspace(3.0, 6.0, 10)],
            ratio=[float(v) for v in np.linspace(0.02, 0.25, 10)],
        ),
        task="stability_cell",
        defaults={"points": 100},
    )


def _point_spans(snapshot) -> list[dict]:
    return [
        s
        for s in snapshot["spans"].values()
        if s["name"] == "campaign.point"
    ]


def test_hundred_point_campaign_spans_match_busy_budget(tmp_path):
    store_path = tmp_path / "run.jsonl"
    result = run_campaign(_hundred_point_spec(), store_path, workers=1)
    telemetry = result.telemetry
    assert telemetry.processed == 100

    snapshot = telemetry.obs_snapshot()
    assert snapshot is not None

    point_spans = _point_spans(snapshot)
    assert sum(s["count"] for s in point_spans) == 100
    span_busy = sum(s["wall"] for s in point_spans)

    # The per-point spans measure the same work the telemetry times; the
    # two must agree within the 20% acceptance envelope, and the spans can
    # never exceed the worker-seconds the run had available.
    busy = telemetry.busy_seconds
    assert busy > 0
    assert abs(span_busy - busy) <= 0.2 * busy, (span_busy, busy)
    wall_budget = telemetry.wall_seconds * max(telemetry.workers, 1)
    assert span_busy <= 1.05 * wall_budget

    # Inner stages were recorded nested under the point span, and the
    # coordinator's counters ride alongside the merged worker deltas.
    assert any(key.startswith("campaign.point/") for key in snapshot["spans"])
    assert snapshot["counters"]["campaign.points_processed"]["value"] == 100.0

    # Point records ship per-point deltas; the store's summary mirrors the
    # merged snapshot that obs_snapshot() reports.
    assert all("obs" in r for r in result.records)


def test_obs_export_json_from_store_cli(tmp_path, capsys):
    store_path = tmp_path / "run.jsonl"
    run_campaign(_hundred_point_spec(), store_path, workers=1)

    assert main(["obs", "export", str(store_path), "--json"]) == 0
    exported = json.loads(capsys.readouterr().out)
    point_spans = _point_spans(exported)
    assert sum(s["count"] for s in point_spans) == 100

    assert main(["obs", "summary", str(store_path)]) == 0
    out = capsys.readouterr().out
    assert "campaign.point" in out
    assert "counters:" in out

    assert main(["obs", "top", str(store_path), "-n", "3"]) == 0
    assert "top 3 span bucket(s)" in capsys.readouterr().out
