"""Tests for repro.core.htm — the dense truncated HTM snapshot."""

import numpy as np
import pytest

from repro._errors import TruncationError, ValidationError
from repro.core.htm import HTM

W0 = 2 * np.pi


def random_htm(order=2, seed=0, s=0.1j):
    rng = np.random.default_rng(seed)
    size = 2 * order + 1
    mat = rng.normal(size=(size, size)) + 1j * rng.normal(size=(size, size))
    return HTM(mat, W0, s)


class TestConstruction:
    def test_basic(self):
        htm = HTM(np.eye(3), W0, 1j)
        assert htm.order == 1 and htm.size == 3 and htm.s == 1j

    def test_rejects_even_size(self):
        with pytest.raises(ValidationError):
            HTM(np.eye(4), W0)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValidationError):
            HTM(np.ones((3, 5)), W0)

    def test_matrix_copied(self):
        mat = np.eye(3, dtype=complex)
        htm = HTM(mat, W0)
        mat[0, 0] = 99
        assert htm.element(-1, -1) == 1.0

    def test_identity(self):
        eye = HTM.identity(2, W0)
        assert eye.is_diagonal()
        assert eye.element(0, 0) == 1.0


class TestElementAccess:
    def test_harmonic_indexing(self):
        mat = np.arange(9, dtype=complex).reshape(3, 3)
        htm = HTM(mat, W0)
        # index (n, m) -> matrix[n+K, m+K]
        assert htm.element(-1, -1) == 0.0
        assert htm.element(0, 0) == 4.0
        assert htm.element(1, -1) == 6.0
        assert htm.baseband_transfer() == 4.0

    def test_out_of_range(self):
        with pytest.raises(TruncationError):
            random_htm().element(3, 0)

    def test_harmonic_transfer_diagonal(self):
        mat = np.arange(9, dtype=complex).reshape(3, 3)
        htm = HTM(mat, W0)
        # k = n - m = 1 -> subdiagonal entries [3, 7]
        assert np.allclose(htm.harmonic_transfer(1), [3.0, 7.0])
        assert np.allclose(htm.harmonic_transfer(0), [0.0, 4.0, 8.0])
        assert np.allclose(htm.harmonic_transfer(-1), [1.0, 5.0])

    def test_harmonic_transfer_out_of_range(self):
        with pytest.raises(TruncationError):
            random_htm(order=1).harmonic_transfer(5)


class TestStructure:
    def test_is_diagonal(self):
        assert HTM(np.diag([1.0, 2.0, 3.0]), W0).is_diagonal()
        assert not random_htm().is_diagonal()

    def test_numerical_rank(self):
        col = np.array([1.0, 2.0, 3.0])
        assert HTM(np.outer(col, col), W0).numerical_rank() == 1
        assert HTM(np.eye(3), W0).numerical_rank() == 3


class TestComposition:
    def test_addition_is_parallel(self):
        a, b = random_htm(seed=1), random_htm(seed=2)
        assert np.allclose((a + b).matrix, a.matrix + b.matrix)

    def test_matmul_is_series(self):
        a, b = random_htm(seed=3), random_htm(seed=4)
        assert np.allclose((a @ b).matrix, a.matrix @ b.matrix)

    def test_scalar_scaling(self):
        a = random_htm()
        assert np.allclose((2.5 * a).matrix, 2.5 * a.matrix)

    def test_mul_rejects_htm(self):
        with pytest.raises(TypeError):
            random_htm() * random_htm()

    def test_subtraction_and_negation(self):
        a = random_htm()
        assert np.allclose((a - a).matrix, 0.0)
        assert np.allclose((-a).matrix, -a.matrix)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            random_htm(order=1) + random_htm(order=2)

    def test_different_s_rejected(self):
        a = random_htm(s=0.1j)
        b = random_htm(s=0.9j)
        with pytest.raises(ValidationError):
            a @ b

    def test_apply_vector(self):
        a = random_htm()
        v = np.arange(5, dtype=complex)
        assert np.allclose(a.apply(v), a.matrix @ v)

    def test_apply_shape_checked(self):
        with pytest.raises(ValidationError):
            random_htm().apply(np.ones(3))


class TestInverse:
    def test_inverse_roundtrip(self):
        a = random_htm(seed=5)
        prod = a @ a.inverse()
        assert np.allclose(prod.matrix, np.eye(5), atol=1e-10)

    def test_singular_rejected(self):
        col = np.ones(3)
        rank_one = HTM(np.outer(col, col), W0)
        with pytest.raises(TruncationError):
            rank_one.inverse()

    def test_feedback_closure(self):
        g = random_htm(seed=6)
        closed = g.feedback_closure()
        expected = np.linalg.solve(np.eye(5) + g.matrix, g.matrix)
        assert np.allclose(closed.matrix, expected)

    def test_truncated(self):
        a = random_htm(order=3, seed=7)
        small = a.truncated(1)
        assert small.order == 1
        assert small.element(0, 0) == a.element(0, 0)
        assert small.element(1, -1) == a.element(1, -1)

    def test_truncated_cannot_grow(self):
        with pytest.raises(TruncationError):
            random_htm(order=1).truncated(2)
