"""Tests for repro.experiments — figure harness sanity (fast settings)."""

import numpy as np
import pytest

from repro.experiments.fig5 import format_table as fig5_table
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import format_table as fig6_table
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import format_table as fig7_table
from repro.experiments.fig7 import run_fig7

W0 = 2 * np.pi


class TestFig5:
    def test_shape_properties(self):
        result = run_fig5(points=120)
        assert result.unity_gain_check == pytest.approx(1.0, rel=1e-6)
        assert result.phase_margin_deg == pytest.approx(61.93, abs=0.05)
        # -40 dB/dec at both ends: 2 decades -> 80 dB drop.
        assert result.magnitude_db[0] == pytest.approx(68.0, abs=1.0)
        assert result.magnitude_db[-1] == pytest.approx(-68.0, abs=1.0)

    def test_phase_dip_structure(self):
        result = run_fig5()
        # Phase starts near -180, peaks near -118 at crossover, returns.
        assert result.phase_deg[0] == pytest.approx(-178.0, abs=1.0)
        assert np.max(result.phase_deg) == pytest.approx(-118.07, abs=0.1)

    def test_table_renders(self):
        text = fig5_table(run_fig5(points=40))
        assert "w/wUG" in text

    def test_rows(self):
        rows = run_fig5(points=16).as_rows()
        assert len(rows) == 16 and len(rows[0]) == 3


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(
            ratios=(0.05, 0.2),
            points=60,
            mark_points=3,
            measure_cycles=100,
            discard_cycles=80,
        )

    def test_marks_within_paper_accuracy(self, result):
        assert result.max_mark_error() < 0.02

    def test_peaking_grows_with_ratio(self, result):
        assert result.curves[1].peaking_db > result.curves[0].peaking_db

    def test_bandwidth_extends(self, result):
        c0 = result.curves[0]
        # For the slow loop the -3 dB bandwidth is finite and near the LTI
        # value (~1.6 w_UG for separation 4).
        assert 1.3 < c0.bandwidth_normalized < 2.0

    def test_htm_beats_lti_at_fast_ratio(self, result):
        """The HTM curve deviates from the LTI curve for the fast loop."""
        fast = result.curves[1]
        deviation = np.max(np.abs(fast.h00_db - fast.lti_db))
        assert deviation > 1.0
        slow = result.curves[0]
        deviation_slow = np.max(np.abs(slow.h00_db - slow.lti_db))
        assert deviation_slow < deviation

    def test_table_renders(self, result):
        assert "wUG/w0" in fig6_table(result)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(points=6)

    def test_margin_collapse(self, result):
        pm = result.phase_margin_eff_deg
        assert pm[0] == pytest.approx(result.phase_margin_lti_deg, abs=1.0)
        assert pm[-1] < result.phase_margin_lti_deg - 20.0
        assert np.all(np.diff(pm) < 0)

    def test_bandwidth_extension_grows(self, result):
        ext = result.bandwidth_extension
        assert ext[0] == pytest.approx(1.0, abs=0.01)
        assert np.all(np.diff(ext) > 0)
        assert ext[-1] > 1.2

    def test_stability_limit_recorded(self, result):
        assert 0.2 < result.stability_limit < 0.35

    def test_degradation_interpolation(self, result):
        """Claim C3: ~9-11% loss at ratio 0.1."""
        assert 0.06 < result.degradation_at(0.1) < 0.15

    def test_table_renders(self, result):
        assert "PM_eff" in fig7_table(result)
