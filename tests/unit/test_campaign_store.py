"""Tests for repro.campaign.store — JSONL persistence and crash tolerance."""

import json

import pytest

from repro._errors import ValidationError
from repro.campaign.spec import CampaignSpec, GridSpace
from repro.campaign.store import ResultStore, StoreCorruptError


def make_spec(task="margins"):
    return CampaignSpec.create(
        name="store-test",
        space=GridSpace.of(ratio=[0.05, 0.1], separation=[2.0, 4.0]),
        task=task,
        defaults={"omega0": 6.283185307179586},
    )


def point_record(pid, status="ok", **extra):
    record = {
        "kind": "point",
        "id": pid,
        "params": {"ratio": 0.05},
        "status": status,
        "attempts": 1,
        "elapsed": 0.01,
        "worker": 1,
        "cache": {"hits": 0, "misses": 0},
    }
    if status == "ok":
        record["metrics"] = {"m": 1.5}
    else:
        record["error"] = {"type": "RuntimeError", "message": "boom", "traceback": ""}
    record.update(extra)
    return record


class TestLifecycle:
    def test_create_writes_header(self, tmp_path):
        path = tmp_path / "c.jsonl"
        ResultStore.create(path, make_spec())
        store = ResultStore.open(path)
        header = store.header()
        assert header["name"] == "store-test"
        assert header["task"] == "margins"
        assert header["points"] == 4
        assert store.spec().name == "store-test"

    def test_create_refuses_overwrite_by_default(self, tmp_path):
        path = tmp_path / "c.jsonl"
        ResultStore.create(path, make_spec())
        with pytest.raises(ValidationError):
            ResultStore.create(path, make_spec())
        ResultStore.create(path, make_spec(), overwrite=True)  # explicit is fine

    def test_open_missing_raises(self, tmp_path):
        with pytest.raises(ValidationError):
            ResultStore.open(tmp_path / "absent.jsonl")

    def test_callable_task_header_keeps_space(self, tmp_path):
        path = tmp_path / "c.jsonl"
        spec = CampaignSpec.create(
            name="cb", space=GridSpace.of(x=[1.0, 2.0]), task=lambda p: {"m": 0.0}
        )
        ResultStore.create(path, spec)
        store = ResultStore.open(path)
        data = store.spec_data()
        assert data["task"] is None
        assert data["space"]["kind"] == "grid"
        with pytest.raises(ValidationError):
            store.spec()  # task is not resolvable from the header alone


class TestRecords:
    def test_append_and_dedup_last_wins(self, tmp_path):
        path = tmp_path / "c.jsonl"
        store = ResultStore.create(path, make_spec())
        store.append_point(point_record("aaa", status="failed"))
        store.append_point(point_record("bbb"))
        store.append_point(point_record("aaa", status="ok", attempts=2))
        store.close()

        loaded = ResultStore.open(path)
        points = {r["id"]: r for r in loaded.point_records()}
        assert len(points) == 2
        assert points["aaa"]["status"] == "ok" and points["aaa"]["attempts"] == 2
        assert loaded.completed_ids() == {"aaa", "bbb"}

    def test_completed_ids_can_exclude_failures(self, tmp_path):
        path = tmp_path / "c.jsonl"
        store = ResultStore.create(path, make_spec())
        store.append_point(point_record("good"))
        store.append_point(point_record("bad", status="failed"))
        store.close()
        loaded = ResultStore.open(path)
        assert loaded.completed_ids() == {"good", "bad"}
        assert loaded.completed_ids(include_failed=False) == {"good"}

    def test_append_point_validates_shape(self, tmp_path):
        store = ResultStore.create(tmp_path / "c.jsonl", make_spec())
        with pytest.raises(ValidationError):
            store.append_point({"kind": "nope"})
        with pytest.raises(ValidationError):
            store.append_point({"kind": "point"})

    def test_truncated_tail_is_ignored(self, tmp_path):
        path = tmp_path / "c.jsonl"
        store = ResultStore.create(path, make_spec())
        store.append_point(point_record("aaa"))
        store.close()
        with path.open("a") as handle:
            handle.write('{"kind": "point", "id": "bbb", "stat')  # torn write
        loaded = ResultStore.open(path)
        assert {r["id"] for r in loaded.point_records()} == {"aaa"}

    def test_corruption_mid_file_raises(self, tmp_path):
        path = tmp_path / "c.jsonl"
        store = ResultStore.create(path, make_spec())
        store.append_point(point_record("aaa"))
        store.close()
        lines = path.read_text().splitlines()
        lines.insert(1, "not json at all {{{")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(StoreCorruptError):
            list(ResultStore.open(path).records())

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text(json.dumps(point_record("aaa")) + "\n")
        with pytest.raises(StoreCorruptError):
            ResultStore.open(path)


class TestStatus:
    def test_status_counts(self, tmp_path):
        path = tmp_path / "c.jsonl"
        store = ResultStore.create(path, make_spec())
        store.append_point(point_record("a1"))
        store.append_point(point_record("a2", status="failed"))
        store.append_checkpoint({"done": 1, "failed": 1, "elapsed": 0.1})
        store.close()
        status = ResultStore.open(path).status()
        assert status["done"] == 1 and status["failed"] == 1
        assert status["pending"] == 2 and not status["complete"]
        assert status["summary"] is None

    def test_status_with_summary(self, tmp_path):
        path = tmp_path / "c.jsonl"
        store = ResultStore.create(path, make_spec())
        for i in range(4):
            store.append_point(point_record(f"p{i}"))
        store.append_summary({"done": 4, "failed": 0, "wall_seconds": 0.5})
        store.close()
        status = ResultStore.open(path).status()
        assert status["complete"]
        assert status["summary"]["wall_seconds"] == 0.5
