"""Lease protocol unit tests: every transition under a frozen clock.

The multi-host scheduler's correctness is the sum of a handful of small
filesystem state machines — claim, renew, expire, reclaim, done,
finalize — each of which takes an explicit ``now`` precisely so these
tests never sleep.  The cross-process behaviour (SIGKILL, elastic
joins) is covered by ``tests/integration/test_distributed.py``.
"""

import json

import pytest

from repro._errors import ValidationError
from repro.campaign import CampaignSpec, GridSpace, ResultStore
from repro.campaign import lease
from repro.campaign.spec import ListSpace

TTL = 10.0


@pytest.fixture
def ldir(tmp_path):
    d = tmp_path / "r.jsonl.leases"
    d.mkdir()
    return d


class TestClaim:
    def test_first_claim_wins(self, ldir):
        assert lease.try_claim(ldir, "b1", "w1", TTL, now=100.0)
        assert not lease.try_claim(ldir, "b1", "w2", TTL, now=100.0)
        assert lease.read_lease(ldir, "b1")["worker"] == "w1"

    def test_lease_records_owner_and_ttl(self, ldir):
        lease.try_claim(ldir, "b1", "w1", TTL, now=100.0)
        record = lease.read_lease(ldir, "b1")
        assert record["batch"] == "b1"
        assert record["ttl"] == TTL
        assert record["time"] == 100.0

    def test_unclaimed_is_free(self, ldir):
        assert lease.read_lease(ldir, "b1") is None
        assert lease.lease_state(ldir, "b1", TTL, now=0.0) == "free"


class TestExpiry:
    def test_fresh_lease_is_leased(self, ldir):
        lease.try_claim(ldir, "b1", "w1", TTL, now=100.0)
        assert lease.lease_state(ldir, "b1", TTL, now=100.0 + TTL) == "leased"

    def test_stale_lease_is_expired(self, ldir):
        lease.try_claim(ldir, "b1", "w1", TTL, now=100.0)
        assert lease.lease_state(ldir, "b1", TTL, now=100.0 + TTL + 0.1) == "expired"

    def test_renew_pushes_expiry_forward(self, ldir):
        lease.try_claim(ldir, "b1", "w1", TTL, now=100.0)
        assert lease.renew(ldir, "b1", "w1", TTL, now=108.0)
        assert lease.lease_state(ldir, "b1", TTL, now=112.0) == "leased"
        assert lease.lease_state(ldir, "b1", TTL, now=118.5) == "expired"

    def test_recorded_ttl_beats_callers(self, ldir):
        # The owner promised ttl=30; a watcher probing with ttl=5 must
        # not see the lease as expired before the owner's own horizon.
        lease.try_claim(ldir, "b1", "w1", 30.0, now=100.0)
        assert lease.lease_state(ldir, "b1", 5.0, now=120.0) == "leased"
        assert lease.lease_state(ldir, "b1", 5.0, now=131.0) == "expired"

    def test_unparsable_lease_is_conservatively_leased(self, ldir):
        (ldir / "b1.lease").write_text("{torn", encoding="utf-8")
        assert lease.lease_state(ldir, "b1", TTL, now=0.0) == "leased"

    def test_renew_refuses_foreign_lease(self, ldir):
        lease.try_claim(ldir, "b1", "w1", TTL, now=100.0)
        assert not lease.renew(ldir, "b1", "w2", TTL, now=101.0)
        assert lease.read_lease(ldir, "b1")["worker"] == "w1"

    def test_renew_recreates_missing_own_lease(self, ldir):
        # A reclaimer's rename window leaves the file briefly absent; the
        # owner's renewal must restore it.
        lease.try_claim(ldir, "b1", "w1", TTL, now=100.0)
        (ldir / "b1.lease").unlink()
        assert lease.renew(ldir, "b1", "w1", TTL, now=101.0)
        assert lease.read_lease(ldir, "b1")["worker"] == "w1"


class TestReclaim:
    def test_expired_lease_reclaims(self, ldir):
        lease.try_claim(ldir, "b1", "w1", TTL, now=100.0)
        assert lease.try_reclaim(ldir, "b1", "w2", TTL, now=100.0 + TTL + 1)
        assert lease.read_lease(ldir, "b1")["worker"] == "w2"

    def test_reclaim_pre_check_skips_fresh_lease(self, ldir):
        # The cheap path: a lease that is fresh at reclaim time is left
        # completely untouched (no rename, no back-off dance).
        lease.try_claim(ldir, "b1", "w1", TTL, now=100.0)
        assert not lease.try_reclaim(ldir, "b1", "w2", TTL, now=105.0)
        assert lease.read_lease(ldir, "b1")["worker"] == "w1"

    def test_reclaim_backs_off_when_owner_renews_mid_race(self, ldir, monkeypatch):
        # The narrow window: the pre-check saw an expired lease, but the
        # owner renewed before the rename landed.  The re-read of the
        # renamed copy sees the fresh timestamp; the reclaimer must back
        # off without claiming, and the owner's next renewal restores the
        # renamed-away file.
        lease.try_claim(ldir, "b1", "w1", TTL, now=200.0)  # fresh on disk
        expired = dict(lease.read_lease(ldir, "b1"), time=100.0)
        monkeypatch.setattr(lease, "read_lease", lambda *a: expired)
        assert not lease.try_reclaim(ldir, "b1", "w2", TTL, now=205.0)
        monkeypatch.undo()
        assert lease.read_lease(ldir, "b1") is None  # renamed away...
        assert lease.renew(ldir, "b1", "w1", TTL, now=205.0)  # ...owner restores
        assert lease.read_lease(ldir, "b1")["worker"] == "w1"

    def test_reclaim_of_missing_lease_fails(self, ldir):
        assert not lease.try_reclaim(ldir, "b1", "w2", TTL, now=0.0)

    def test_concurrent_reclaim_is_exactly_once(self, ldir):
        # Two reclaimers race: only the one whose rename succeeds can win;
        # the loser's rename raises and returns False.
        lease.try_claim(ldir, "b1", "w1", TTL, now=100.0)
        assert lease.try_reclaim(ldir, "b1", "w2", TTL, now=200.0)
        assert not lease.try_reclaim(ldir, "b1", "w3", TTL, now=200.0)
        assert lease.read_lease(ldir, "b1")["worker"] == "w2"

    def test_release_drops_only_own_lease(self, ldir):
        lease.try_claim(ldir, "b1", "w1", TTL, now=100.0)
        lease.release(ldir, "b1", "w2")
        assert lease.read_lease(ldir, "b1")["worker"] == "w1"
        lease.release(ldir, "b1", "w1")
        assert lease.read_lease(ldir, "b1") is None


class TestDoneAndFinalize:
    def test_done_marker_is_exactly_once(self, ldir):
        assert lease.mark_done(ldir, "b1", "w1")
        assert not lease.mark_done(ldir, "b1", "w2")
        assert lease.lease_state(ldir, "b1", TTL, now=0.0) == "done"
        assert lease.done_batch_ids(ldir) == {"b1"}

    def test_done_beats_lease_state(self, ldir):
        lease.try_claim(ldir, "b1", "w1", TTL, now=100.0)
        lease.mark_done(ldir, "b1", "w1")
        assert lease.lease_state(ldir, "b1", TTL, now=500.0) == "done"

    def test_finalize_election_single_winner(self, ldir):
        assert lease.try_finalize(ldir, "w1")
        assert not lease.try_finalize(ldir, "w2")
        assert not lease.try_finalize(ldir, "w1")  # not even re-entrant


class TestPlan:
    def test_partition_is_deterministic_and_ordered(self):
        points = [(f"id{i}", {"x": i}) for i in range(7)]
        batches = lease.partition_points(points, 3)
        assert [len(b["points"]) for b in batches] == [3, 3, 1]
        assert batches[0]["points"] == ["id0", "id1", "id2"]
        again = lease.partition_points(points, 3)
        assert [b["id"] for b in again] == [b["id"] for b in batches]

    def test_batch_id_depends_on_membership(self):
        assert lease.batch_id(["a", "b"]) != lease.batch_id(["a", "c"])
        assert lease.batch_id(["a", "b"]) != lease.batch_id(["b", "a"])

    def test_partition_rejects_nonpositive_batch(self):
        with pytest.raises(ValidationError):
            lease.partition_points([("a", {})], 0)

    def test_plan_frozen_by_first_writer(self, tmp_path):
        spec = CampaignSpec.create(
            name="p",
            space=ListSpace.of([{"x": 1.0}, {"x": 2.0}, {"x": 3.0}]),
            task="margins",
        )
        d = tmp_path / "r.jsonl.leases"
        first = lease.ensure_plan(d, spec, batch_size=2)
        assert [len(b["points"]) for b in first["batches"]] == [2, 1]
        # A later worker with a different batch_size gets the frozen plan.
        second = lease.ensure_plan(d, spec, batch_size=1)
        assert second == first

    def test_plan_rejects_foreign_json(self, tmp_path):
        d = tmp_path / "r.jsonl.leases"
        d.mkdir()
        (d / "plan.json").write_text(json.dumps({"kind": "other"}))
        spec = CampaignSpec.create(
            name="p", space=ListSpace.of([{"x": 1.0}]), task="margins"
        )
        with pytest.raises(ValidationError):
            lease.ensure_plan(d, spec, batch_size=1)


class TestRenewerThread:
    def test_renewer_counts_lost_leases(self, ldir):
        renewer = lease._LeaseRenewer(ldir, "w1", ttl=0.15)
        lease.try_claim(ldir, "b1", "w2", 300.0)  # someone else owns it
        renewer.hold("b1")
        renewer.start()
        import time

        deadline = time.monotonic() + 5.0
        while renewer.lost == 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        renewer.stop()
        assert renewer.lost >= 1
        assert lease.read_lease(ldir, "b1")["worker"] == "w2"

    def test_renewer_keeps_own_lease_fresh(self, ldir):
        lease.try_claim(ldir, "b1", "w1", 0.2)
        renewer = lease._LeaseRenewer(ldir, "w1", ttl=0.2)
        renewer.hold("b1")
        renewer.start()
        import time

        time.sleep(0.6)  # several ttls: without renewal this would expire
        state = lease.lease_state(ldir, "b1", 0.2)
        renewer.stop()
        assert state == "leased"
        assert renewer.lost == 0


class TestWorkerIdentity:
    def test_worker_id_is_host_and_pid(self):
        from repro.obs.heartbeat import host_name, worker_id

        import os

        assert worker_id() == f"{host_name()}-{os.getpid()}"
        assert worker_id(pid=7, host="alpha") == "alpha-7"

    def test_beat_worker_reconstructs_v1_beats(self):
        from repro.obs.heartbeat import beat_worker

        assert beat_worker({"worker": "alpha-7"}) == "alpha-7"
        assert beat_worker({"pid": 9}) == "localhost-9"
        assert beat_worker({"pid": 9, "host": "beta"}) == "beta-9"


class TestRunWorkerEdges:
    def test_worker_requires_existing_store(self, tmp_path):
        with pytest.raises(ValidationError):
            lease.run_worker(tmp_path / "absent.jsonl", max_idle=0.1)

    def test_single_worker_completes_and_finalizes(self, tmp_path):
        spec = CampaignSpec.create(
            name="solo",
            space=GridSpace.of(ratio=[0.05, 0.1], separation=[3.0, 5.0]),
            task="design_summary",
        )
        store_path = tmp_path / "solo.jsonl"
        ResultStore.create(store_path, spec)
        report = lease.run_worker(
            store_path, batch_size=3, heartbeat_interval=None, max_idle=1.0
        )
        assert report.complete and report.finalized
        assert report.points_done == 4 and report.points_failed == 0
        store = ResultStore.open(store_path)
        assert max(store.terminal_record_counts().values()) == 1
        summaries = [
            r for r in store.records() if r.get("kind") == "summary"
        ]
        assert len(summaries) == 1
        assert summaries[0]["mode"] == "lease-worker"
        assert summaries[0]["merged"]["done"] == 4

    def test_second_worker_finds_nothing_and_leaves(self, tmp_path):
        spec = CampaignSpec.create(
            name="solo",
            space=ListSpace.of([{"ratio": 0.1, "separation": 4.0}]),
            task="design_summary",
        )
        store_path = tmp_path / "solo.jsonl"
        ResultStore.create(store_path, spec)
        first = lease.run_worker(
            store_path, heartbeat_interval=None, max_idle=1.0
        )
        assert first.complete
        second = lease.run_worker(
            store_path, heartbeat_interval=None, max_idle=0.2
        )
        assert second.complete
        assert second.points_done == 0 and second.batches_done == 0
        assert not second.finalized  # election already won
        store = ResultStore.open(store_path)
        assert max(store.terminal_record_counts().values()) == 1
