"""Tests for repro.blocks.vco, divider and delay."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.blocks.delay import LoopDelay
from repro.blocks.divider import Divider
from repro.blocks.vco import VCO
from repro.signals.isf import ImpulseSensitivity

W0 = 2 * np.pi


class TestVCO:
    def test_time_invariant_constructor(self):
        vco = VCO.time_invariant(2.0, W0, f0=10.0)
        assert vco.is_time_invariant()
        assert vco.v0 == pytest.approx(2.0)
        assert vco.f0 == 10.0

    def test_from_gain(self):
        vco = VCO.from_gain(kvco_hz_per_unit=5.0, f0=10.0, omega0=W0)
        assert vco.v0 == pytest.approx(0.5)

    def test_lti_transfer(self):
        vco = VCO.time_invariant(3.0, W0)
        tf = vco.lti_transfer()
        assert tf(1j) == pytest.approx(3.0 / 1j)

    def test_lptv_refuses_lti_reduction(self):
        vco = VCO(ImpulseSensitivity.sinusoidal(1.0, 0.3, W0))
        with pytest.raises(ValidationError):
            vco.lti_transfer()

    def test_operator_eq25(self):
        isf = ImpulseSensitivity.sinusoidal(1.0, 0.4, W0)
        vco = VCO(isf)
        s = 0.3j
        mat = vco.operator().dense(s, 1)
        assert mat[1, 1] == pytest.approx(complex(1.0 / s))
        assert mat[2, 1] == pytest.approx(complex(isf.coefficient(1) / (s + 1j * W0)))

    def test_requires_isf_instance(self):
        with pytest.raises(ValidationError):
            VCO("not an isf")

    def test_repr(self):
        assert "time-invariant" in repr(VCO.time_invariant(1.0, W0))


class TestDivider:
    def test_operator_identity(self):
        div = Divider(4, W0)
        assert np.allclose(div.operator().dense(0.3j, 2), np.eye(5))

    def test_decimate_edges(self):
        div = Divider(3, W0)
        edges = np.arange(10.0)
        assert np.allclose(div.decimate_edges(edges), [0.0, 3.0, 6.0, 9.0])

    def test_decimate_with_phase(self):
        div = Divider(3, W0)
        assert np.allclose(div.decimate_edges(np.arange(10.0), phase=1), [1.0, 4.0, 7.0])

    def test_phase_bounds(self):
        with pytest.raises(ValueError):
            Divider(3, W0).decimate_edges(np.arange(5.0), phase=3)

    def test_radian_gain(self):
        assert Divider(8, W0).radian_gain() == pytest.approx(0.125)

    def test_ratio_validated(self):
        with pytest.raises(ValidationError):
            Divider(0, W0)


class TestLoopDelay:
    def test_transfer(self):
        d = LoopDelay(0.1, W0)
        s = 1j * 2.0
        assert d.transfer(s) == pytest.approx(np.exp(-0.2j))

    def test_zero_delay_is_unity(self):
        d = LoopDelay(0.0, W0)
        assert d.transfer(5j) == pytest.approx(1.0)
        assert d.pade()(3j) == pytest.approx(1.0)

    def test_operator_diagonal(self):
        htm = LoopDelay(0.05, W0).operator().htm(0.3j, 2)
        assert htm.is_diagonal()

    def test_phase_lag(self):
        assert LoopDelay(0.1, W0).phase_lag_deg(np.pi) == pytest.approx(
            np.degrees(0.1 * np.pi)
        )

    def test_pade_accuracy_in_band(self):
        d = LoopDelay(0.2, W0)
        pade = d.pade(order=3)
        for omega in (0.1, 0.5, 1.0, 3.0):
            exact = d.transfer(1j * omega)
            assert pade(1j * omega) == pytest.approx(exact, rel=1e-4)

    def test_pade_magnitude_allpass(self):
        pade = LoopDelay(0.3, W0).pade(order=2)
        for omega in (0.5, 2.0, 10.0):
            assert abs(pade(1j * omega)) == pytest.approx(1.0, rel=1e-12)

    def test_negative_tau_rejected(self):
        with pytest.raises(ValidationError):
            LoopDelay(-0.1, W0)

    def test_pade_order_validated(self):
        with pytest.raises(ValidationError):
            LoopDelay(0.1, W0).pade(order=0)
