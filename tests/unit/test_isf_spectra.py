"""Tests for repro.signals.isf and repro.signals.spectra."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.signals.fourier import FourierSeries
from repro.signals.isf import ImpulseSensitivity
from repro.signals.spectra import BasebandVector, band_decompose, band_reassemble

W0 = 2 * np.pi


class TestImpulseSensitivity:
    def test_constant(self):
        isf = ImpulseSensitivity.constant(2.0, W0)
        assert isf.v0 == 2.0
        assert isf.is_time_invariant()
        assert isf(0.77) == pytest.approx(2.0)

    def test_from_vco_gain(self):
        isf = ImpulseSensitivity.from_vco_gain(kvco_hz_per_unit=50.0, f0_hz=100.0, omega0=W0)
        assert isf.v0 == pytest.approx(0.5)

    def test_sinusoidal(self):
        isf = ImpulseSensitivity.sinusoidal(1.0, ripple=0.4, omega0=W0)
        assert not isf.is_time_invariant()
        t = 0.2
        assert isf(t) == pytest.approx(1.0 * (1 + 0.4 * np.cos(W0 * t)))

    def test_from_coefficients(self):
        isf = ImpulseSensitivity.from_coefficients([0.1, 1.0, 0.1], W0)
        assert isf.coefficient(1) == pytest.approx(0.1)
        assert isf.order == 1

    def test_requires_fourier_series(self):
        with pytest.raises(ValidationError):
            ImpulseSensitivity("not a series")

    def test_series_accessor(self):
        series = FourierSeries([1.0], W0)
        assert ImpulseSensitivity(series).series is series

    def test_repr_distinguishes(self):
        assert "time-invariant" in repr(ImpulseSensitivity.constant(1.0, W0))
        assert "LPTV" in repr(ImpulseSensitivity.sinusoidal(1.0, 0.2, W0))


class TestBasebandVector:
    def make(self, order=1, n=8):
        omega = np.linspace(-0.4, 0.4, n) * W0
        env = np.zeros((2 * order + 1, n), dtype=complex)
        env[order] = 1.0  # flat baseband envelope
        return BasebandVector(omega, env, W0)

    def test_band_access(self):
        vec = self.make()
        assert np.allclose(vec.band(0), 1.0)
        assert np.allclose(vec.band(1), 0.0)

    def test_band_out_of_range(self):
        with pytest.raises(ValidationError):
            self.make().band(3)

    def test_grid_inside_half_band(self):
        with pytest.raises(ValidationError):
            BasebandVector(np.array([0.6 * W0]), np.zeros((3, 1)), W0)

    def test_even_band_count_rejected(self):
        with pytest.raises(ValidationError):
            BasebandVector(np.array([0.0]), np.zeros((2, 1)), W0)

    def test_apply_matrix_identity(self):
        vec = self.make()
        mats = np.tile(np.eye(3, dtype=complex), (vec.omega.size, 1, 1))
        out = vec.apply_matrix(mats)
        assert np.allclose(out.envelopes, vec.envelopes)

    def test_apply_matrix_conversion(self):
        vec = self.make()
        # Move band 0 content entirely to band +1.
        mat = np.zeros((3, 3), dtype=complex)
        mat[2, 1] = 1.0
        mats = np.tile(mat, (vec.omega.size, 1, 1))
        out = vec.apply_matrix(mats)
        assert np.allclose(out.band(1), 1.0)
        assert np.allclose(out.band(0), 0.0)

    def test_apply_matrix_shape_check(self):
        vec = self.make()
        with pytest.raises(ValidationError):
            vec.apply_matrix(np.zeros((2, 3, 3)))

    def test_total_power(self):
        vec = self.make(n=4)
        assert vec.total_power() == pytest.approx(4.0)


class TestBandDecompose:
    def test_single_carrier_lands_in_band(self):
        dt = 1.0 / 64
        n = 1024  # span 16 periods: frequencies k/16 are leakage-free bins
        t = np.arange(n) * dt
        # Content at 1.125 * w0 (bin-aligned): envelope riding on band 1.
        signal = np.exp(1j * 1.125 * W0 * t)
        vec = band_decompose(signal, dt, W0, order=2)
        powers = [np.sum(np.abs(vec.band(m)) ** 2) for m in range(-2, 3)]
        assert np.argmax(powers) == 3  # band +1
        assert powers[3] / sum(powers) > 0.999

    def test_roundtrip(self):
        dt = 1.0 / 64
        n = 1024
        t = np.arange(n) * dt
        signal = (
            np.cos(0.25 * W0 * t)
            + 0.5 * np.cos(1.3125 * W0 * t + 0.4)
            + 0.2 * np.sin(2.125 * W0 * t)
        )
        vec = band_decompose(signal, dt, W0, order=3)
        back = band_reassemble(vec, dt, n)
        assert np.allclose(back.real, signal, atol=1e-8)
        assert np.max(np.abs(back.imag)) < 1e-8

    def test_nyquist_guard(self):
        with pytest.raises(ValidationError):
            band_decompose(np.ones(64), dt=1.0, omega0=W0, order=3)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            band_decompose(np.ones((4, 4)), 0.01, W0, 1)
