"""Tests for repro.blocks.chargepump and repro.blocks.loopfilter."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.blocks.chargepump import ChargePump, CurrentSegment
from repro.blocks.loopfilter import (
    ActivePIFilter,
    LoopFilterComponents,
    SeriesRCFilter,
    SeriesRCShuntCFilter,
    SingleCapacitorFilter,
    normalized_filter,
)

W0 = 2 * np.pi


class TestChargePump:
    def test_symmetric_currents(self):
        cp = ChargePump(1e-3)
        assert cp.up_current == pytest.approx(1e-3)
        assert cp.down_current == pytest.approx(1e-3)

    def test_mismatch(self):
        cp = ChargePump(1e-3, mismatch=0.1)
        assert cp.up_current == pytest.approx(1.05e-3)
        assert cp.down_current == pytest.approx(0.95e-3)

    def test_mismatch_bounds(self):
        with pytest.raises(ValidationError):
            ChargePump(1e-3, mismatch=2.5)

    def test_negative_current_rejected(self):
        with pytest.raises(ValidationError):
            ChargePump(-1e-3)

    def test_loop_filter_transfer_eq21(self):
        cp = ChargePump(2e-3)
        z = SingleCapacitorFilter(1e-9).impedance()
        h_lf = cp.loop_filter_transfer(z)
        s = 1j * 0.3
        assert h_lf(s) == pytest.approx(2e-3 * z(s))

    def test_pulse_segments_ref_leads(self):
        cp = ChargePump(1e-3)
        segments = cp.pulse_segments(t_ref_edge=1.0, t_vco_edge=1.2)
        assert len(segments) == 1
        seg = segments[0]
        assert seg.start == 1.0 and seg.stop == 1.2
        assert seg.current == pytest.approx(1e-3)
        assert seg.charge == pytest.approx(0.2e-3)

    def test_pulse_segments_vco_leads(self):
        cp = ChargePump(1e-3)
        seg = cp.pulse_segments(t_ref_edge=1.3, t_vco_edge=1.1)[0]
        assert seg.current == pytest.approx(-1e-3)
        assert seg.charge == pytest.approx(-0.2e-3)

    def test_error_charge(self):
        assert ChargePump(2e-3).error_charge(0.1) == pytest.approx(0.2e-3)

    def test_segment_ordering_validated(self):
        with pytest.raises(ValidationError):
            CurrentSegment(1.0, 0.5, 1e-3)


class TestSingleCapacitor:
    def test_impedance(self):
        z = SingleCapacitorFilter(2.0).impedance()
        assert z(1j) == pytest.approx(1.0 / (2j))


class TestSeriesRC:
    def test_impedance(self):
        f = SeriesRCFilter(resistance=3.0, capacitance=0.5)
        s = 0.7j
        assert f.impedance()(s) == pytest.approx(3.0 + 1.0 / (0.5 * s))

    def test_zero_frequency(self):
        assert SeriesRCFilter(2.0, 0.25).zero_frequency == pytest.approx(2.0)

    def test_biproper_feedthrough(self):
        """High-frequency impedance tends to R (direct feedthrough)."""
        f = SeriesRCFilter(5.0, 1.0)
        assert f.impedance()(1e9j) == pytest.approx(5.0, rel=1e-6)


class TestSeriesRCShuntC:
    def test_pole_zero_formulas(self):
        f = SeriesRCShuntCFilter(resistance=2.0, capacitance_series=0.3, capacitance_shunt=0.05)
        assert f.zero_frequency == pytest.approx(1.0 / 0.6)
        assert f.pole_frequency == pytest.approx(0.35 / (2.0 * 0.3 * 0.05))
        assert f.total_capacitance == pytest.approx(0.35)

    def test_from_pole_zero_roundtrip(self):
        f = SeriesRCShuntCFilter.from_pole_zero(
            zero_frequency=1.0, pole_frequency=16.0, total_capacitance=1e-9
        )
        assert f.zero_frequency == pytest.approx(1.0)
        assert f.pole_frequency == pytest.approx(16.0)
        assert f.total_capacitance == pytest.approx(1e-9)

    def test_from_pole_zero_requires_separation(self):
        with pytest.raises(ValidationError):
            SeriesRCShuntCFilter.from_pole_zero(2.0, 1.0, 1e-9)

    def test_impedance_asymptotes(self):
        f = SeriesRCShuntCFilter.from_pole_zero(1.0, 16.0, 1.0)
        z = f.impedance()
        # Low frequency: 1/(s Ctot).
        s = 1e-6j
        assert z(s) == pytest.approx(1.0 / s, rel=1e-4)

    def test_impedance_at_zero_and_pole(self):
        f = SeriesRCShuntCFilter.from_pole_zero(1.0, 16.0, 1.0)
        z = f.impedance().rational
        zeros = z.zeros()
        poles = z.poles()
        assert any(abs(r + 1.0) < 1e-9 for r in zeros)
        assert any(abs(p + 16.0) < 1e-6 for p in poles)
        assert any(abs(p) < 1e-9 for p in poles)

    def test_component_record_validated(self):
        with pytest.raises(ValidationError):
            LoopFilterComponents(-1.0, 1.0, 1.0)

    def test_from_components(self):
        comp = LoopFilterComponents(2.0, 0.3, 0.05)
        f = SeriesRCShuntCFilter.from_components(comp)
        assert f.components == comp


class TestActivePI:
    def test_impedance(self):
        f = ActivePIFilter(proportional=2.0, integral=6.0)
        s = 0.5j
        assert f.impedance()(s) == pytest.approx(2.0 + 6.0 / s)

    def test_zero_frequency(self):
        assert ActivePIFilter(2.0, 6.0).zero_frequency == pytest.approx(3.0)


class TestNormalizedFilter:
    def test_shape(self):
        h = normalized_filter(zero_frequency=1.0, pole_frequency=16.0, gain=2.0)
        s = 0.4j
        expected = 2.0 * (1 + s / 1.0) / (s * (1 + s / 16.0))
        assert h(s) == pytest.approx(expected)

    def test_separation_enforced(self):
        with pytest.raises(ValidationError):
            normalized_filter(4.0, 2.0)

    def test_matches_physical_topology(self):
        """normalized_filter(wz, wp, 1/Ctot) equals the RC||C impedance."""
        wz, wp, ctot = 1.0, 16.0, 2.5e-9
        physical = SeriesRCShuntCFilter.from_pole_zero(wz, wp, ctot).impedance()
        shaped = normalized_filter(wz, wp, gain=1.0 / ctot)
        s = 1j * 0.7
        assert shaped(s) == pytest.approx(physical(s), rel=1e-9)
