"""Benchmark baseline comparison: parsing, gating rules, CLI exit codes."""

import json

import pytest

from repro._errors import ValidationError
from repro.cli import main
from repro.obs.baseline import (
    compare_benchmarks,
    load_bench_lines,
    parse_tolerance,
)


def _write_jsonl(path, records):
    path.write_text("".join(json.dumps(r, sort_keys=True) + "\n" for r in records))
    return str(path)


BASELINE = [
    {"kind": "bench_grid_eval", "scalar_seconds": 0.40, "batched_seconds": 0.060,
     "speedup": 6.7, "max_rel_err": 0.0, "points": 200, "order": 8},
    {"kind": "bench_obs_overhead", "baseline_seconds": 0.0039,
     "disabled_overhead": 0.012, "repeats": 25},
]


# -- parse_tolerance --------------------------------------------------------------


def test_parse_tolerance_accepts_percent_and_fraction():
    assert parse_tolerance("25%") == pytest.approx(0.25)
    assert parse_tolerance("0.25") == pytest.approx(0.25)
    assert parse_tolerance(0.1) == pytest.approx(0.1)


@pytest.mark.parametrize("bad", ["", "fast", "-10%", "0", 0.0, -0.5])
def test_parse_tolerance_rejects_nonpositive_and_garbage(bad):
    with pytest.raises(ValidationError):
        parse_tolerance(bad)


# -- load_bench_lines -------------------------------------------------------------


def test_load_bench_lines_last_line_wins(tmp_path):
    path = _write_jsonl(tmp_path / "runs.jsonl", [
        {"kind": "bench_grid_eval", "speedup": 5.0},
        {"kind": "bench_grid_eval", "speedup": 7.0},
    ])
    records = load_bench_lines([path])
    assert records["bench_grid_eval"]["speedup"] == 7.0


def test_load_bench_lines_missing_file_raises(tmp_path):
    with pytest.raises(ValidationError, match="missing"):
        load_bench_lines([str(tmp_path / "nope.jsonl")])


def test_load_bench_lines_bad_json_names_the_line(tmp_path):
    path = tmp_path / "broken.jsonl"
    path.write_text('{"kind": "bench_x"}\nnot json\n')
    with pytest.raises(ValidationError, match=":2"):
        load_bench_lines([str(path)])


# -- compare_benchmarks gating ----------------------------------------------------


def _records(lines):
    return {r["kind"]: r for r in lines}


def test_identical_runs_pass():
    comparison = compare_benchmarks(_records(BASELINE), _records(BASELINE))
    assert comparison.ok
    assert comparison.regressions == []
    assert "PASS" in comparison.summary()


def test_slower_seconds_beyond_tolerance_fails():
    current = [dict(BASELINE[0], batched_seconds=0.090), BASELINE[1]]
    comparison = compare_benchmarks(
        _records(BASELINE), _records(current), tolerance=0.25
    )
    assert not comparison.ok
    (bad,) = comparison.regressions
    assert bad.metric == "batched_seconds"
    assert bad.direction == "lower"
    assert bad.change == pytest.approx(0.5)
    assert "FAIL" in comparison.summary()


def test_lower_speedup_beyond_tolerance_fails():
    current = [dict(BASELINE[0], speedup=3.0), BASELINE[1]]
    comparison = compare_benchmarks(_records(BASELINE), _records(current))
    assert [d.metric for d in comparison.regressions] == ["speedup"]


def test_degradation_within_tolerance_passes():
    current = [dict(BASELINE[0], batched_seconds=0.070, speedup=5.8), BASELINE[1]]
    assert compare_benchmarks(_records(BASELINE), _records(current)).ok


def test_noise_floor_skips_tiny_timings():
    current = [BASELINE[0], dict(BASELINE[1], baseline_seconds=0.0090)]
    comparison = compare_benchmarks(_records(BASELINE), _records(current))
    assert comparison.ok  # 2.3x slower, but both sides under 10 ms
    (delta,) = [d for d in comparison.deltas if d.metric == "baseline_seconds"]
    assert delta.skipped
    # Raising the floor to zero arms the gate.
    strict = compare_benchmarks(
        _records(BASELINE), _records(current), min_seconds=0.0
    )
    assert not strict.ok


def test_informational_metrics_never_gate():
    current = [dict(BASELINE[0], max_rel_err=9.9, points=7), BASELINE[1]]
    assert compare_benchmarks(_records(BASELINE), _records(current)).ok


def test_no_overlapping_kinds_raises():
    with pytest.raises(ValidationError, match="no bench kind"):
        compare_benchmarks(
            _records(BASELINE), {"bench_other": {"kind": "bench_other"}}
        )


def test_new_and_missing_kinds_reported_not_fatal():
    current = [BASELINE[0], {"kind": "bench_new", "x_seconds": 1.0}]
    comparison = compare_benchmarks(_records(BASELINE), _records(current))
    assert comparison.missing_kinds == ["bench_obs_overhead"]
    assert comparison.new_kinds == ["bench_new"]
    assert comparison.ok


def test_new_kind_hint_names_the_baseline_file():
    current = [BASELINE[0], {"kind": "bench_new", "x_seconds": 1.0}]
    comparison = compare_benchmarks(
        _records(BASELINE), _records(current), baseline_label="BENCH_main.json"
    )
    summary = comparison.summary()
    assert "no baseline entry with kind 'bench_new' in BENCH_main.json" in summary
    assert "NOT gated" in summary
    assert "append its --json-out line to BENCH_main.json" in summary
    # The default label points at the repo's canonical baseline file.
    default = compare_benchmarks(_records(BASELINE), _records(current))
    assert "BENCH_baseline.json" in default.summary()


# -- CLI --------------------------------------------------------------------------


def test_cli_bench_compare_pass_and_report(tmp_path, capsys):
    baseline = _write_jsonl(tmp_path / "baseline.jsonl", BASELINE)
    current = _write_jsonl(tmp_path / "current.jsonl", BASELINE)
    report = tmp_path / "report.json"
    code = main([
        "bench", "compare", current, "--baseline", baseline,
        "--tolerance", "25%", "--report", str(report),
    ])
    assert code == 0
    assert "PASS" in capsys.readouterr().out
    payload = json.loads(report.read_text())
    assert payload["tolerance"] == pytest.approx(0.25)
    assert all(not d["regressed"] for d in payload["deltas"])


def test_cli_bench_compare_degraded_fails(tmp_path, capsys):
    baseline = _write_jsonl(tmp_path / "baseline.jsonl", BASELINE)
    current = _write_jsonl(
        tmp_path / "current.jsonl",
        [dict(BASELINE[0], speedup=3.0), BASELINE[1]],
    )
    code = main(["bench", "compare", current, "--baseline", baseline])
    assert code == 1
    assert "FAIL" in capsys.readouterr().out


def test_cli_bench_compare_bad_tolerance_exits_2(tmp_path, capsys):
    baseline = _write_jsonl(tmp_path / "baseline.jsonl", BASELINE)
    code = main([
        "bench", "compare", baseline, "--baseline", baseline,
        "--tolerance", "banana",
    ])
    assert code == 2
    assert capsys.readouterr().err


def test_cli_bench_compare_accepts_multiple_current_files(tmp_path, capsys):
    baseline = _write_jsonl(tmp_path / "baseline.jsonl", BASELINE)
    a = _write_jsonl(tmp_path / "a.jsonl", [BASELINE[0]])
    b = _write_jsonl(tmp_path / "b.jsonl", [BASELINE[1]])
    assert main(["bench", "compare", a, b, "--baseline", baseline]) == 0
    capsys.readouterr()
