"""Tier-1 campaign smoke: a tiny end-to-end pool run must stay fast.

Marked ``campaign`` so the engine's tests can be selected with
``pytest -m campaign``; this one rides in the default ``pytest -x -q``
run as the cheap always-on guard (4 points, 2 workers, < 10 s).
"""

import time

import numpy as np
import pytest

from repro.campaign import CampaignSpec, GridSpace, run_campaign

pytestmark = pytest.mark.campaign


def test_four_point_pool_campaign_under_ten_seconds(tmp_path):
    spec = CampaignSpec.create(
        name="smoke",
        space=GridSpace.of(ratio=[0.05, 0.1], separation=[3.0, 5.0]),
        task="margins",
        defaults={"points": 800},
    )
    start = time.perf_counter()
    result = run_campaign(spec, tmp_path / "smoke.jsonl", workers=2)
    elapsed = time.perf_counter() - start

    assert elapsed < 10.0, f"smoke campaign took {elapsed:.1f}s"
    assert result.telemetry.done == 4 and result.telemetry.failed == 0
    assert result.telemetry.mode in ("pool", "serial")
    # The physics survived the trip through the pool: effective margins
    # degrade as the loop gets faster (paper Fig. 7 trend).
    ratios = result.parameter("ratio")
    eff = result.metric("phase_margin_eff_deg")
    lti = result.metric("phase_margin_lti_deg")
    assert np.all(np.isfinite(eff))
    degradation = lti - eff
    slow = degradation[ratios == 0.05].mean()
    fast = degradation[ratios == 0.1].mean()
    assert fast > slow >= 0.0
