"""Prometheus exposition edge cases: empty registry, escaping, odd values.

The happy path (spans/counters/histograms render) is covered in
``test_obs.py``; this file pins the text-format 0.0.4 corner rules that
scrapers are strict about — label escaping, the ``+Inf`` bucket on
empty histograms, and exact value rendering.
"""

from repro.obs.prom import format_sample, sanitize_metric_name, to_prometheus


# -- empty / missing snapshots ----------------------------------------------------


def test_empty_registry_renders_only_the_dropped_counter():
    for snapshot in (None, {}, {"spans": {}, "counters": {}, "histograms": {}}):
        text = to_prometheus(snapshot)
        assert text.endswith("\n")
        lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert lines == ["repro_health_events_dropped_total 0"]


# -- label escaping ---------------------------------------------------------------


def test_label_values_escape_quotes_backslashes_newlines():
    line = format_sample(
        "m", {"path": 'C:\\tmp\\"x"\nnext'}, 1.0
    )
    # Real backslash, quote, and newline become \\ \" \n (two-char escapes).
    assert line == 'm{path="C:\\\\tmp\\\\\\"x\\"\\nnext"} 1'
    assert "\n" not in line  # a raw newline would corrupt the exposition


def test_label_names_are_sanitized_but_values_preserved():
    line = format_sample("m", {"bad-label!": "weird value, kept"}, 2.0)
    assert line == 'm{bad_label_="weird value, kept"} 2'


def test_metric_name_sanitization():
    assert sanitize_metric_name("serve.latency[ep=margins]") == (
        "serve_latency_ep_margins_"
    )
    assert sanitize_metric_name("9lives").startswith("_")
    assert sanitize_metric_name("") == "_"


# -- value rendering --------------------------------------------------------------


def test_special_float_values_render_per_text_format():
    assert format_sample("m", {}, float("inf")).endswith(" +Inf")
    assert format_sample("m", {}, float("-inf")).endswith(" -Inf")
    assert format_sample("m", {}, float("nan")).endswith(" NaN")
    assert format_sample("m", {}, 3.0) == "m 3"
    assert format_sample("m", {}, 0.25) == "m 0.25"


# -- histograms -------------------------------------------------------------------


def test_zero_observation_histogram_still_emits_inf_sum_count():
    snapshot = {
        "histograms": {"quiet.hist": {"count": 0, "total": 0.0, "buckets": {}}}
    }
    lines = to_prometheus(snapshot).splitlines()
    assert "# TYPE repro_quiet_hist histogram" in lines
    assert 'repro_quiet_hist_bucket{le="+Inf"} 0' in lines
    assert "repro_quiet_hist_sum 0" in lines
    assert "repro_quiet_hist_count 0" in lines


def test_histogram_buckets_are_cumulative_and_sorted():
    snapshot = {
        "histograms": {
            "h": {"count": 6, "total": 1.5,
                  # deliberately unsorted, with one garbage decade key
                  "buckets": {"0": 1, "-2": 2, "-1": 3, "x": 9}},
        }
    }
    lines = to_prometheus(snapshot).splitlines()
    buckets = [l for l in lines if "_bucket" in l]
    assert buckets == [
        'repro_h_bucket{le="0.1"} 2',
        'repro_h_bucket{le="1"} 5',
        'repro_h_bucket{le="10"} 6',
        'repro_h_bucket{le="+Inf"} 6',
    ]


def test_histogram_labels_survive_into_every_series():
    snapshot = {
        "histograms": {
            "h[worker=w-1]": {"count": 1, "total": 0.5, "buckets": {"-1": 1}},
        }
    }
    text = to_prometheus(snapshot)
    assert 'repro_h_bucket{le="1",worker="w-1"} 1' in text
    assert 'repro_h_sum{worker="w-1"} 0.5' in text
    assert 'repro_h_count{worker="w-1"} 1' in text
