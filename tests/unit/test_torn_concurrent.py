"""Torn-line tolerance of the JSONL readers under a LIVE concurrent writer.

The durability story to date asserted torn-*tail* tolerance statically: a
file with a half-written last line parses.  Distributed tracing raises the
stakes — the collector, ``campaign watch``, and ``/v1/jobs`` polling all
read shards **while** workers on other processes are appending to them.
These tests run a real writer thread appending in deliberately split
``write()`` calls (worst-case interleaving: a reader can observe any
prefix) and hammer each reader concurrently, asserting two properties:

* readers never raise, whatever prefix they catch, and
* every *complete* line they return is intact — values are never mixed
  across records (each record is self-checksummed by construction).
"""

import json
import threading
import time

from repro.campaign.spec import CampaignSpec, GridSpace
from repro.campaign.store import ResultStore
from repro.obs import stream as obs_stream
from repro.obs import trace as obs_trace


class _SplitWriter(threading.Thread):
    """Appends ``count`` JSONL records, each via two raw writes.

    Splitting every line into two OS-level writes maximises the window in
    which a reader sees a torn (incomplete) final line.  ``payload(i)``
    must produce a dict whose fields let the reader verify integrity.
    """

    def __init__(self, path, count, payload):
        super().__init__(daemon=True)
        self.path = path
        self.count = count
        self.payload = payload
        self.done = threading.Event()

    def run(self):
        with open(self.path, "a", encoding="utf-8") as fh:
            for i in range(self.count):
                line = json.dumps(self.payload(i)) + "\n"
                split = max(1, len(line) // 2)
                fh.write(line[:split])
                fh.flush()
                fh.write(line[split:])
                fh.flush()
        self.done.set()


def _hammer(reader, writer, check):
    """Call ``reader`` repeatedly while ``writer`` runs; check every result.

    Do-while shape: even if the writer outruns the first (possibly slow)
    read, at least one read races the append window before the final
    full-file check.
    """
    writer.start()
    while True:
        check(reader())
        if writer.done.is_set():
            break
    writer.join()
    check(reader())  # and once over the final, complete file


class TestStreamReaderLive:
    def test_read_stream_under_live_writer(self, tmp_path):
        path = tmp_path / "run.stream.jsonl"

        def payload(i):
            return {"seq": i, "echo": i}  # echo lets us catch line mixing

        def check(records):
            for record in records:
                assert record["echo"] == record["seq"]
            seqs = [r["seq"] for r in records]
            assert seqs == sorted(seqs)

        _hammer(
            lambda: obs_stream.read_stream(path),
            _SplitWriter(path, 300, payload),
            check,
        )


class TestTraceReaderLive:
    def test_read_trace_events_under_live_writer(self, tmp_path):
        path = tmp_path / "w1.jsonl"

        def payload(i):
            return {
                "kind": "trace_span",
                "event": "span",
                "name": f"n{i}",
                "trace_id": "a" * 32,
                "span_id": f"{i:016x}",
                "start": float(i),
                "end": float(i) + 0.5,
            }

        def check(events):
            for ev in events:
                i = int(ev["name"][1:])
                assert ev["span_id"] == f"{i:016x}"
                assert ev["start"] == float(i)

        _hammer(
            lambda: obs_trace.read_trace_events(path),
            _SplitWriter(path, 300, payload),
            check,
        )

    def test_collector_under_live_writer(self, tmp_path):
        """build_chrome_trace over a store whose shard is mid-append."""
        store = tmp_path / "r.jsonl"
        shard_dir = obs_trace.trace_dir(store)
        shard_dir.mkdir()
        path = shard_dir / "w1.jsonl"

        def payload(i):
            return {
                "kind": "trace_span",
                "event": "span",
                "name": f"n{i}",
                "trace_id": "a" * 32,
                "span_id": f"{i:016x}",
                "host": "h",
                "worker": "w1",
                "pid": 1,
                "start": float(i),
                "end": float(i) + 0.5,
            }

        def check(doc):
            slices = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
            for ev in slices:
                assert ev["dur"] == 0.5e6

        _hammer(
            lambda: obs_trace.build_chrome_trace(events=[], store_path=store),
            _SplitWriter(path, 200, payload),
            check,
        )


class TestStoreShardReaderLive:
    def test_merged_point_records_under_live_shard_writer(self, tmp_path):
        """A reader merging shards while a worker shard is appending."""
        spec = CampaignSpec.create(
            name="torn",
            space=GridSpace.of(x=list(range(100))),
            task=lambda params: {"y": params["x"]},
        )
        store_path = tmp_path / "r.jsonl"
        ResultStore.create(store_path, spec).close()
        points = list(spec.points())
        shard = ResultStore.open_shard(store_path, "w1", spec)
        shard.close()
        shard_file = next(iter(store_path.parent.glob("r.jsonl.shards/*.jsonl")))

        def payload(i):
            pid, params = points[i]
            return {
                "kind": "point",
                "id": pid,
                "status": "ok",
                "params": params,
                "metrics": {"y": params["x"]},
                "elapsed": 0.0,
            }

        def check(records):
            for record in records:
                if record.get("metrics"):
                    assert record["metrics"]["y"] == record["params"]["x"]

        reader_store = ResultStore.open(store_path)
        _hammer(
            reader_store.merged_point_records,
            _SplitWriter(shard_file, len(points), payload),
            check,
        )


class TestWriterAtomicity:
    def test_record_event_single_write_lines(self, tmp_path):
        """The trace sink's own appends are whole-line: a reader polling a
        live *record_event* writer (not a split-writer) never sees a torn
        line at all, because each event is one buffered write."""
        path = obs_trace.configure_sink(tmp_path / "t.jsonl")
        try:
            ctx = obs_trace.new_context()
            stop = threading.Event()

            def write_loop():
                i = 0
                while not stop.is_set() and i < 500:
                    obs_trace.record_event("e", ctx.child(), float(i), i + 1.0, n=i)
                    i += 1
                stop.set()

            thread = threading.Thread(target=write_loop, daemon=True)
            thread.start()
            torn = 0
            while not stop.is_set():
                raw = path.read_text(encoding="utf-8") if path.exists() else ""
                for line in raw.splitlines():
                    try:
                        json.loads(line)
                    except ValueError:
                        torn += 1
                time.sleep(0.001)
            thread.join()
            assert torn == 0
        finally:
            obs_trace.close_sink()
