"""Tests for repro.pll.margins and repro.pll.design (Fig. 7 machinery)."""

import math

import numpy as np
import pytest

from repro._errors import DesignError, ValidationError
from repro.lti.bode import gain_crossover, phase_margin
from repro.pll.design import (
    describe_design,
    design_typical_loop,
    shape_phase_margin_deg,
    typical_open_loop_shape,
)
from repro.pll.margins import compare_margins, effective_open_loop, margin_sweep
from repro.pll.openloop import lti_open_loop

W0 = 2 * np.pi


class TestTypicalShape:
    def test_unity_gain_exact(self):
        a = typical_open_loop_shape(omega_ug=2.0, separation=4.0)
        assert abs(a(2j)) == pytest.approx(1.0, rel=1e-12)

    def test_pole_zero_placement(self):
        a = typical_open_loop_shape(omega_ug=1.0, separation=5.0)
        zeros = a.zeros()
        poles = a.poles()
        assert any(abs(z + 0.2) < 1e-9 for z in zeros)
        assert any(abs(p + 5.0) < 1e-9 for p in poles)
        assert np.sum(np.abs(poles) < 1e-9) == 2

    def test_phase_margin_formula(self):
        sep = 4.0
        a = typical_open_loop_shape(1.0, sep)
        measured = phase_margin(a, 1e-3, 1e3)
        assert measured == pytest.approx(shape_phase_margin_deg(sep), abs=1e-3)

    def test_margin_peaks_at_crossover(self):
        """Geometric symmetry places the max phase at w_UG."""
        a = typical_open_loop_shape(1.0, 4.0)
        w = np.logspace(-1, 1, 801)
        phase = np.unwrap(np.angle(a.frequency_response(w)))
        assert w[np.argmax(phase)] == pytest.approx(1.0, rel=2e-2)

    def test_separation_must_exceed_one(self):
        with pytest.raises(DesignError):
            typical_open_loop_shape(1.0, separation=0.9)

    def test_shape_pm_examples(self):
        assert shape_phase_margin_deg(4.0) == pytest.approx(61.93, abs=0.01)
        assert shape_phase_margin_deg(2.0) == pytest.approx(
            math.degrees(math.atan(2) - math.atan(0.5)), abs=1e-9
        )


class TestDesignTypicalLoop:
    def test_matches_shape(self):
        omega_ug = 0.1 * W0
        pll = design_typical_loop(omega0=W0, omega_ug=omega_ug)
        a = lti_open_loop(pll)
        shape = typical_open_loop_shape(omega_ug)
        for w in (0.03, 0.1, 0.5):
            s = 1j * w * W0
            assert a(s) == pytest.approx(shape(s), rel=1e-9)

    def test_component_values_positive(self):
        pll = design_typical_loop(omega0=W0, omega_ug=0.2 * W0, charge_pump_current=5e-3)
        assert pll.charge_pump.current == 5e-3
        # Impedance is realizable: poles/zero on the negative real axis.
        z = pll.filter_impedance
        assert np.all(z.poles().real <= 1e-12)

    def test_crossover_scales(self):
        for ratio in (0.02, 0.1, 0.25):
            pll = design_typical_loop(omega0=W0, omega_ug=ratio * W0)
            a = lti_open_loop(pll)
            w_ug = gain_crossover(a, 1e-4 * W0, 0.5 * W0)
            assert w_ug == pytest.approx(ratio * W0, rel=1e-6)

    def test_default_f0_is_reference(self):
        pll = design_typical_loop(omega0=W0, omega_ug=0.1 * W0)
        assert pll.vco.f0 == pytest.approx(1.0)

    def test_describe_design(self):
        pll = design_typical_loop(omega0=W0, omega_ug=0.1 * W0)
        rec = describe_design(pll, 0.1 * W0, 4.0)
        assert rec.zero_frequency == pytest.approx(0.025 * W0)
        assert rec.pole_frequency == pytest.approx(0.4 * W0)
        assert rec.phase_margin_deg == pytest.approx(61.93, abs=0.01)

    def test_separation_validated(self):
        with pytest.raises(DesignError):
            design_typical_loop(omega0=W0, omega_ug=0.1 * W0, separation=1.0)


class TestCompareMargins:
    def test_slow_loop_margins_agree(self):
        pll = design_typical_loop(omega0=W0, omega_ug=0.01 * W0)
        m = compare_margins(pll)
        assert m.phase_margin_eff_deg == pytest.approx(m.phase_margin_lti_deg, abs=0.5)
        assert m.bandwidth_extension == pytest.approx(1.0, abs=0.01)

    def test_fast_loop_margin_collapses(self):
        pll = design_typical_loop(omega0=W0, omega_ug=0.2 * W0)
        m = compare_margins(pll)
        assert m.phase_margin_eff_deg < m.phase_margin_lti_deg - 15.0
        assert m.bandwidth_extension > 1.1
        assert 0.3 < m.margin_degradation < 0.6

    def test_nine_percent_claim_near_ratio_0p1(self):
        """Paper claim C3: ~9% PM loss at w_UG/w0 = 0.1 (we measure ~10.5%)."""
        pll = design_typical_loop(omega0=W0, omega_ug=0.1 * W0)
        m = compare_margins(pll)
        assert 0.06 <= m.margin_degradation <= 0.15

    def test_summary_text(self):
        pll = design_typical_loop(omega0=W0, omega_ug=0.05 * W0)
        text = compare_margins(pll).summary()
        assert "LTI" in text and "effective" in text

    def test_range_validated(self):
        pll = design_typical_loop(omega0=W0, omega_ug=0.05 * W0)
        with pytest.raises(ValidationError):
            compare_margins(pll, omega_min_factor=0.6)


class TestEffectiveOpenLoop:
    def test_callable_matches_closed_loop(self):
        from repro.pll.closedloop import ClosedLoopHTM

        pll = design_typical_loop(omega0=W0, omega_ug=0.1 * W0)
        lam_fn = effective_open_loop(pll)
        closed = ClosedLoopHTM(pll)
        omega = np.array([0.07, 0.21]) * W0
        assert np.allclose(lam_fn(omega), closed.effective_gain_response(omega))


class TestMarginSweep:
    def test_monotone_degradation(self):
        ratios = [0.02, 0.08, 0.2]
        margins = margin_sweep(
            ratios, lambda r: design_typical_loop(omega0=W0, omega_ug=r * W0)
        )
        pms = [m.phase_margin_eff_deg for m in margins]
        assert pms[0] > pms[1] > pms[2]
        exts = [m.bandwidth_extension for m in margins]
        assert exts[0] < exts[1] < exts[2]

    def test_ratio_bounds_enforced(self):
        with pytest.raises(ValidationError):
            margin_sweep([0.6], lambda r: design_typical_loop(omega0=W0, omega_ug=r * W0))
