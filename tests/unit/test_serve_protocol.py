"""Wire-protocol tests: request parsing, errors, zero-copy serialization."""

import json
import math

import numpy as np
import pytest

from repro.serve.protocol import (
    ServeError,
    design_fingerprint,
    design_params,
    dumps_bytes,
    grid_from_request,
    parse_json_body,
)

W0 = 2 * math.pi


def _err(fn, *args):
    with pytest.raises(ServeError) as exc_info:
        fn(*args)
    return exc_info.value


class TestParseJsonBody:
    def test_valid_object(self):
        assert parse_json_body(b'{"a": 1}') == {"a": 1}

    def test_empty_is_400(self):
        err = _err(parse_json_body, b"")
        assert err.status == 400 and err.code == "empty_body"

    def test_malformed_is_400(self):
        err = _err(parse_json_body, b"{nope")
        assert err.status == 400 and err.code == "malformed_json"

    def test_non_object_is_400(self):
        err = _err(parse_json_body, b"[1, 2]")
        assert err.status == 400 and err.code == "malformed_json"

    def test_error_body_shape(self):
        err = _err(parse_json_body, b"")
        body = err.body()
        assert set(body) == {"error"}
        assert body["error"]["code"] == "empty_body"
        assert isinstance(body["error"]["message"], str)


class TestDesignParams:
    def test_missing_design(self):
        assert _err(design_params, {}).code == "missing_design"
        assert _err(design_params, {"design": {}}).code == "missing_design"
        assert _err(design_params, {"design": [1]}).code == "missing_design"

    def test_fingerprint_is_key_order_independent(self):
        a = design_params({"design": {"ratio": 0.1, "separation": 4.0}})
        b = design_params({"design": {"separation": 4.0, "ratio": 0.1}})
        assert design_fingerprint(a) == design_fingerprint(b)

    def test_fingerprint_matches_campaign_point_id(self):
        from repro.campaign.spec import canonical_params, point_id

        params = design_params({"design": {"ratio": 0.1}})
        assert design_fingerprint(params) == point_id(
            canonical_params({"ratio": 0.1})
        )

    def test_non_scalar_design_is_400(self):
        err = _err(design_params, {"design": {"ratio": [0.1, 0.2]}})
        assert err.status == 400 and err.code == "invalid_design"


class TestGridFromRequest:
    def test_default_is_baseband_of_omega0(self):
        from repro.core.grid import FrequencyGrid

        assert grid_from_request({}, W0) == FrequencyGrid.baseband(W0)

    def test_explicit_omega(self):
        grid = grid_from_request({"grid": {"omega": [1.0, 2.0, 3.0]}}, W0)
        assert np.array_equal(grid.omega, [1.0, 2.0, 3.0])

    def test_log_linear_baseband_kinds(self):
        log = grid_from_request(
            {"grid": {"kind": "log", "start": 0.1, "stop": 10, "points": 5}}, W0
        )
        lin = grid_from_request(
            {"grid": {"kind": "linear", "start": 1, "stop": 2, "points": 3}}, W0
        )
        base = grid_from_request({"grid": {"kind": "baseband", "points": 7}}, W0)
        assert log.omega.size == 5 and lin.omega.size == 3 and base.omega.size == 7

    def test_oversized_grid_is_413(self):
        err = _err(
            grid_from_request,
            {"grid": {"kind": "log", "start": 1, "stop": 2, "points": 10**6}},
            W0,
        )
        assert err.status == 413 and err.code == "grid_too_large"
        err = _err(grid_from_request, {"grid": {"omega": [0.0] * 30000}}, W0)
        assert err.status == 413

    def test_bad_specs_are_400(self):
        assert _err(grid_from_request, {"grid": 7}, W0).status == 400
        assert _err(grid_from_request, {"grid": {"omega": []}}, W0).status == 400
        assert (
            _err(grid_from_request, {"grid": {"kind": "banana"}}, W0).code
            == "invalid_grid"
        )
        assert (
            _err(grid_from_request, {"grid": {"kind": "log", "start": 1}}, W0).code
            == "invalid_grid"
        )


class TestDumpsBytes:
    def _round_trip(self, obj):
        return json.loads(dumps_bytes(obj))

    def test_matches_stdlib_for_plain_json(self):
        obj = {"a": 1, "b": [1.5, "x", None, True], "c": {"d": -2}}
        assert self._round_trip(obj) == json.loads(json.dumps(obj))

    def test_float64_array_is_exact(self):
        arr = np.linspace(0.1, 1.0, 17)
        decoded = np.asarray(self._round_trip({"x": arr})["x"])
        assert np.array_equal(decoded, arr)  # repr round-trips exactly

    def test_read_only_and_strided_arrays(self):
        arr = np.arange(10, dtype=float)
        arr.flags.writeable = False
        assert self._round_trip(arr) == list(range(10))
        assert self._round_trip(np.arange(10, dtype=float)[::2]) == [
            0.0,
            2.0,
            4.0,
            6.0,
            8.0,
        ]

    def test_complex_array_re_im_views(self):
        arr = np.array([1 + 2j, 3 - 4j, -0.5 + 0j])
        out = self._round_trip(arr)
        assert out == {"re": [1.0, 3.0, -0.5], "im": [2.0, -4.0, 0.0]}

    def test_non_finite_encode_as_null(self):
        out = self._round_trip(np.array([1.0, np.nan, np.inf, -np.inf]))
        assert out == [1.0, None, None, None]
        assert self._round_trip({"v": float("nan")}) == {"v": None}

    def test_2d_array_nests_rows(self):
        arr = np.arange(6, dtype=float).reshape(2, 3)
        assert self._round_trip(arr) == [[0.0, 1.0, 2.0], [3.0, 4.0, 5.0]]

    def test_numpy_scalars(self):
        out = self._round_trip({"i": np.int64(7), "f": np.float64(0.25)})
        assert out == {"i": 7, "f": 0.25}

    def test_exact_values_of_computed_response(self):
        """Encoded floats parse back bitwise identical to the source array."""
        rng = np.random.default_rng(42)
        arr = rng.standard_normal(64) * 1e-7
        decoded = np.asarray(self._round_trip(arr))
        assert arr.tobytes() == decoded.tobytes()
