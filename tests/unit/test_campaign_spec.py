"""Tests for repro.campaign.spec — spaces, point ids, spec round-trips."""

import json
import subprocess
import sys

import pytest

from repro._errors import ValidationError
from repro.campaign.spec import (
    CampaignSpec,
    GridSpace,
    ListSpace,
    ParameterSpace,
    ProductSpace,
    ZipSpace,
    canonical_params,
    point_id,
)


class TestPointId:
    def test_deterministic_and_order_independent(self):
        a = point_id({"ratio": 0.1, "separation": 4.0})
        b = point_id({"separation": 4.0, "ratio": 0.1})
        assert a == b
        assert len(a) == 16 and int(a, 16) >= 0

    def test_distinguishes_values_and_names(self):
        base = point_id({"ratio": 0.1})
        assert point_id({"ratio": 0.2}) != base
        assert point_id({"other": 0.1}) != base

    def test_numpy_scalars_coerce_to_same_id(self):
        import numpy as np

        assert point_id({"ratio": np.float64(0.1)}) == point_id({"ratio": 0.1})
        assert point_id({"n": np.int64(3)}) == point_id({"n": 3})

    def test_stable_across_processes(self):
        # PYTHONHASHSEED-independent: a fresh interpreter computes the same id.
        expected = point_id({"ratio": 0.125, "separation": 4.0})
        code = (
            "from repro.campaign.spec import point_id;"
            "print(point_id({'ratio': 0.125, 'separation': 4.0}))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "12345"},
            cwd="/root/repo",
            check=True,
        )
        assert out.stdout.strip() == expected

    def test_rejects_non_scalars_and_nonfinite(self):
        with pytest.raises(ValidationError):
            canonical_params({"bad": [1, 2]})
        with pytest.raises(ValidationError):
            canonical_params({"bad": float("inf")})
        with pytest.raises(ValidationError):
            canonical_params({})


class TestSpaces:
    def test_grid_row_major_order(self):
        space = GridSpace.of(a=[1, 2], b=[10, 20, 30])
        pts = list(space.points())
        assert len(space) == 6 and len(pts) == 6
        assert pts[0] == {"a": 1, "b": 10}
        assert pts[1] == {"a": 1, "b": 20}  # last axis fastest
        assert pts[-1] == {"a": 2, "b": 30}

    def test_zip_equal_lengths(self):
        space = ZipSpace.of(a=[1, 2, 3], b=[4.0, 5.0, 6.0])
        assert len(space) == 3
        assert list(space)[1] == {"a": 2, "b": 5.0}
        with pytest.raises(ValidationError):
            ZipSpace.of(a=[1, 2], b=[1])

    def test_list_space(self):
        space = ListSpace.of([{"x": 1.0}, {"x": 2.0}])
        assert len(space) == 2
        assert list(space) == [{"x": 1.0}, {"x": 2.0}]
        with pytest.raises(ValidationError):
            ListSpace.of([])

    def test_product_space(self):
        space = GridSpace.of(a=[1, 2]) * ListSpace.of([{"b": 5.0}, {"b": 6.0}])
        assert isinstance(space, ProductSpace)
        assert len(space) == 4
        assert list(space)[0] == {"a": 1, "b": 5.0}
        with pytest.raises(ValidationError):
            GridSpace.of(a=[1]) * GridSpace.of(a=[2])  # overlapping name

    def test_empty_axes_rejected(self):
        with pytest.raises(ValidationError):
            GridSpace.of()
        with pytest.raises(ValidationError):
            GridSpace.of(a=[])

    @pytest.mark.parametrize(
        "space",
        [
            GridSpace.of(ratio=[0.05, 0.1], separation=[2.0, 4.0]),
            ZipSpace.of(ratio=[0.05, 0.1], separation=[2.0, 4.0]),
            ListSpace.of([{"ratio": 0.05}, {"ratio": 0.1}]),
            GridSpace.of(ratio=[0.05]) * ZipSpace.of(sep=[2.0, 3.0]),
        ],
    )
    def test_json_roundtrip(self, space):
        data = json.loads(json.dumps(space.to_json()))
        back = ParameterSpace.from_json(data)
        assert list(back.points()) == list(space.points())
        assert len(back) == len(space)

    def test_from_json_rejects_unknown_kind(self):
        with pytest.raises(ValidationError):
            ParameterSpace.from_json({"kind": "mystery"})
        with pytest.raises(ValidationError):
            ParameterSpace.from_json({})


class TestCampaignSpec:
    def make(self):
        return CampaignSpec.create(
            name="t",
            space=GridSpace.of(ratio=[0.05, 0.1]),
            task="margins",
            defaults={"omega0": 6.0},
        )

    def test_points_merge_defaults(self):
        spec = self.make()
        pts = list(spec.points())
        assert len(pts) == len(spec) == 2
        pid, params = pts[0]
        assert params == {"omega0": 6.0, "ratio": 0.05}
        assert pid == point_id(params)

    def test_point_overrides_default(self):
        spec = CampaignSpec.create(
            name="t",
            space=ListSpace.of([{"omega0": 9.0, "ratio": 0.1}]),
            task="margins",
            defaults={"omega0": 6.0},
        )
        _, params = next(iter(spec.points()))
        assert params["omega0"] == 9.0

    def test_duplicate_points_get_unique_suffixed_ids(self):
        spec = CampaignSpec.create(
            name="t",
            space=ListSpace.of([{"x": 1.0}, {"x": 1.0}, {"x": 1.0}]),
            task="margins",
        )
        ids = [pid for pid, _ in spec.points()]
        assert len(set(ids)) == 3
        assert ids[1] == f"{ids[0]}-1" and ids[2] == f"{ids[0]}-2"

    def test_json_roundtrip(self):
        spec = self.make()
        back = CampaignSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert back.name == spec.name and back.task == spec.task
        assert list(back.points()) == list(spec.points())

    def test_callable_task_does_not_serialize(self):
        spec = CampaignSpec.create(
            name="t", space=GridSpace.of(x=[1]), task=lambda p: {"m": 1.0}
        )
        with pytest.raises(ValidationError):
            spec.to_json()

    def test_create_validation(self):
        with pytest.raises(ValidationError):
            CampaignSpec.create(name="", space=GridSpace.of(x=[1]), task="margins")
        with pytest.raises(ValidationError):
            CampaignSpec.create(name="t", space="not-a-space", task="margins")
        with pytest.raises(ValidationError):
            CampaignSpec.create(name="t", space=GridSpace.of(x=[1]), task=3)
