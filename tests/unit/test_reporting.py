"""Tests for repro.reporting — ASCII charts and figure renderers."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.reporting.ascii_plot import AsciiPlot, Series


class TestSeries:
    def test_shape_validated(self):
        with pytest.raises(ValidationError):
            Series(np.array([1.0, 2.0]), np.array([1.0]))

    def test_glyph_validated(self):
        with pytest.raises(ValidationError):
            Series(np.array([1.0]), np.array([1.0]), glyph="**")

    def test_data_copied(self):
        x = np.array([1.0, 2.0])
        s = Series(x, x)
        x[0] = 99.0
        assert s.x[0] == 1.0


class TestAsciiPlot:
    def test_basic_render(self):
        plot = AsciiPlot(width=32, height=8).add([0, 1, 2], [0, 1, 0], glyph="*")
        text = plot.render()
        assert "*" in text
        assert text.count("\n") >= 8

    def test_title_and_labels(self):
        plot = AsciiPlot(width=32, height=8, title="T", x_label="X", y_label="Y")
        plot.add([0, 1], [0, 1])
        text = plot.render()
        assert text.startswith("T")
        assert "X" in text and "Y" in text

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            AsciiPlot().render()

    def test_log_axis_positive_only(self):
        plot = AsciiPlot(log_x=True).add([-1.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValidationError):
            plot.render()

    def test_log_axis_ticks(self):
        plot = AsciiPlot(width=40, height=6, log_x=True).add(
            np.logspace(-2, 2, 10), np.linspace(0, 1, 10)
        )
        text = plot.render()
        assert "0.01" in text and "100" in text

    def test_markers_drawn_on_top(self):
        plot = AsciiPlot(width=32, height=8)
        plot.add(np.linspace(0, 1, 20), np.zeros(20), glyph="-")
        plot.add([0.5], [0.0], glyph="o", markers_only=True)
        assert "o" in plot.render()

    def test_constant_series_handled(self):
        text = AsciiPlot(width=24, height=6).add([0, 1], [2.0, 2.0]).render()
        assert "*" in text

    def test_nan_values_skipped(self):
        y = np.array([0.0, np.nan, 1.0])
        text = AsciiPlot(width=24, height=6).add([0, 1, 2], y).render()
        assert "*" in text

    def test_all_nan_rejected(self):
        with pytest.raises(ValidationError):
            AsciiPlot().add([0.0], [np.nan]).render()

    def test_legend(self):
        plot = AsciiPlot(width=24, height=6)
        plot.add([0, 1], [0, 1], glyph="x", label="one")
        assert "x one" in plot.render()

    def test_size_validated(self):
        plot = AsciiPlot(width=4, height=2).add([0, 1], [0, 1])
        with pytest.raises(ValidationError):
            plot.render()


class TestFigureRenderers:
    def test_fig5(self):
        from repro.experiments.fig5 import run_fig5
        from repro.reporting import render_fig5

        text = render_fig5(run_fig5(points=60))
        assert "Fig. 5a" in text and "Fig. 5b" in text

    def test_fig7(self):
        from repro.experiments.fig7 import run_fig7
        from repro.reporting import render_fig7

        text = render_fig7(run_fig7(points=5))
        assert "Fig. 7a" in text and "LTI" in text

    def test_fig6(self):
        from repro.experiments.fig6 import run_fig6
        from repro.reporting import render_fig6

        result = run_fig6(
            ratios=(0.05, 0.2), points=40, mark_points=2, measure_cycles=60, discard_cycles=40
        )
        text = render_fig6(result)
        assert "o" in text  # simulation marks present
        assert "wUG/w0=0.05" in text
