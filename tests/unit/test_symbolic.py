"""Tests for repro.symbolic — expression tree and loop closed forms."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.pll.architecture import PLL
from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.design import design_typical_loop
from repro.pll.openloop import lti_open_loop
from repro.symbolic import (
    Add,
    Func,
    Mul,
    Num,
    Pow,
    Sym,
    coth_of,
    effective_gain_expression,
    exp_of,
    h00_expression,
    open_loop_expression,
)
from repro.symbolic.expr import polynomial_in
from repro.symbolic.loop import evaluate_on_grid

W0 = 2 * np.pi
S = Sym("s")


class TestExprBasics:
    def test_num_evaluate(self):
        assert Num(3.5).evaluate({}) == 3.5

    def test_sym_evaluate(self):
        assert S.evaluate({"s": 2j}) == 2j

    def test_sym_missing_value(self):
        with pytest.raises(ValidationError):
            S.evaluate({})

    def test_sym_name_validated(self):
        with pytest.raises(ValidationError):
            Sym("")

    def test_arithmetic_evaluation(self):
        expr = (S + 1) * (S - 2) / (S**2 + 4)
        s = 0.7 + 0.3j
        expected = (s + 1) * (s - 2) / (s**2 + 4)
        assert expr.evaluate({"s": s}) == pytest.approx(expected)

    def test_negation_and_rsub(self):
        expr = 1 - (-S)
        assert expr.evaluate({"s": 2.0}) == pytest.approx(3.0)

    def test_pow_requires_integer(self):
        with pytest.raises(TypeError):
            S**0.5

    def test_coerce_rejects_junk(self):
        with pytest.raises(TypeError):
            S + "x"

    def test_coth_evaluates(self):
        expr = coth_of(S)
        assert expr.evaluate({"s": 1.0}) == pytest.approx(1 / np.tanh(1.0))

    def test_exp_evaluates(self):
        assert exp_of(S).evaluate({"s": 1j}) == pytest.approx(np.exp(1j))

    def test_unknown_function_rejected(self):
        with pytest.raises(ValidationError):
            Func("tan", S)

    def test_symbols_collected(self):
        expr = (Sym("a") + Sym("b")) * coth_of(Sym("c"))
        assert expr.symbols() == frozenset({"a", "b", "c"})


class TestSimplification:
    def test_constant_folding_add(self):
        assert Add.of(Num(2), Num(3)) == Num(5)

    def test_constant_folding_mul(self):
        assert Mul.of(Num(2), Num(3)) == Num(6)

    def test_nested_constants_merge(self):
        expr = Mul.of(Num(2), Mul.of(Num(3), S))
        assert isinstance(expr, Mul)
        nums = [f for f in expr.factors if isinstance(f, Num)]
        assert len(nums) == 1 and nums[0].value == 6

    def test_zero_annihilates_product(self):
        assert Mul.of(Num(0), coth_of(S)) == Num(0)

    def test_pow_identities(self):
        assert Pow.of(S, 0) == Num(1)
        assert Pow.of(S, 1) is S
        assert Pow.of(Pow.of(S, 2), 3).exponent == 6

    def test_empty_add_is_zero(self):
        assert Add.of() == Num(0)


class TestRendering:
    def test_plain_text(self):
        expr = (S + 1) / S**2
        text = expr.render()
        assert "s" in text and "^2" in text

    def test_latex_fraction(self):
        expr = Num(1.0) / S
        assert r"\frac" in expr.latex()

    def test_latex_coth(self):
        assert r"\coth" in coth_of(S).latex()

    def test_subscript_symbol(self):
        assert Sym("w_ug").latex() == "w_{ug}"

    def test_negative_constant_renders_with_sign(self):
        text = (S - 3).render()
        assert "- 3" in text

    def test_polynomial_in(self):
        expr = polynomial_in(S, [1.0, 0.0, 2.0])  # 1 + 2 s^2
        assert expr.evaluate({"s": 3.0}) == pytest.approx(19.0)


@pytest.fixture(scope="module")
def pll():
    return design_typical_loop(omega0=W0, omega_ug=0.1 * W0)


class TestLoopExpressions:
    def test_open_loop_matches_numeric(self, pll):
        expr = open_loop_expression(pll)
        a = lti_open_loop(pll)
        for s in (0.1j * W0, 0.3 + 0.2j):
            assert expr.evaluate({"s": s}) == pytest.approx(complex(a(s)), rel=1e-10)

    def test_effective_gain_matches_numeric(self, pll):
        expr = effective_gain_expression(pll)
        closed = ClosedLoopHTM(pll)
        for s in (0.07j * W0, 0.21j * W0, 0.4 + 0.1j * W0):
            assert expr.evaluate({"s": s}) == pytest.approx(
                closed.effective_gain(s), rel=1e-9
            )

    def test_h00_matches_numeric(self, pll):
        expr = h00_expression(pll)
        closed = ClosedLoopHTM(pll)
        s = 0.13j * W0
        assert expr.evaluate({"s": s}) == pytest.approx(closed.h00(s), rel=1e-9)

    def test_expression_contains_coth(self, pll):
        text = effective_gain_expression(pll).render()
        assert "coth" in text

    def test_only_free_symbol_is_s(self, pll):
        assert effective_gain_expression(pll).symbols() == frozenset({"s"})

    def test_lptv_vco_supported(self):
        from repro.blocks.vco import VCO
        from repro.signals.isf import ImpulseSensitivity

        base = design_typical_loop(omega0=W0, omega_ug=0.08 * W0)
        lptv = PLL(
            pfd=base.pfd,
            charge_pump=base.charge_pump,
            filter_impedance=base.filter_impedance,
            vco=VCO(ImpulseSensitivity.sinusoidal(1.0, 0.3, W0)),
        )
        expr = h00_expression(lptv)
        closed = ClosedLoopHTM(lptv)
        s = 0.11j * W0
        assert expr.evaluate({"s": s}) == pytest.approx(closed.h00(s), rel=1e-8)

    def test_delay_rejected(self, pll):
        from repro.blocks.delay import LoopDelay

        delayed = PLL(
            pfd=pll.pfd,
            charge_pump=pll.charge_pump,
            filter_impedance=pll.filter_impedance,
            vco=pll.vco,
            delay=LoopDelay(0.01, W0),
        )
        with pytest.raises(ValidationError):
            effective_gain_expression(delayed)

    def test_evaluate_on_grid(self, pll):
        expr = effective_gain_expression(pll)
        closed = ClosedLoopHTM(pll)
        s_grid = 1j * np.array([0.05, 0.15, 0.25]) * W0
        sym_vals = evaluate_on_grid(expr, s_grid)
        num_vals = closed.effective_gain(s_grid)
        assert np.allclose(sym_vals, num_vals, rtol=1e-9)

    def test_latex_output_wellformed(self, pll):
        tex = h00_expression(pll).latex()
        assert tex.count("{") == tex.count("}")
        assert r"\coth" in tex
