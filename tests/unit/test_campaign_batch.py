"""Batched pool dispatch: per-point semantics survive the batch envelope.

Batching (``ExecutionPolicy.batch_size``) changes only how points travel
to workers — one future carries several points.  These tests pin what
must NOT change: record identity with the serial path, per-point retry
and failure capture, and the auto-sizing rule's boundaries.
"""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.campaign import (
    CampaignSpec,
    ExecutionPolicy,
    ListSpace,
    run_campaign,
)
from repro.campaign.executor import _auto_batch_size, _pool_entry_batch

MARKED = 0.75


def square_task(params):
    x = float(params["x"])
    return {"square": x * x}


def flaky_task(params):
    if params["x"] == MARKED:
        raise RuntimeError("poisoned point")
    return square_task(params)


def make_spec(task, n=12, name="batch-test"):
    values = list(np.linspace(0.1, 1.2, n))
    if MARKED not in values:
        values[n // 2] = MARKED
    return CampaignSpec.create(
        name=name, space=ListSpace.of([{"x": float(v)} for v in values]), task=task
    )


def _metrics(result):
    return [
        (r["id"], r["status"], r.get("metrics")) for r in result.records
    ]


class TestAutoBatchSize:
    def test_small_maps_stay_per_point(self):
        assert _auto_batch_size(pending=12, workers=2) == 1
        assert _auto_batch_size(pending=0, workers=4) == 1

    def test_large_maps_amortize(self):
        assert _auto_batch_size(pending=220, workers=4) == 13
        assert _auto_batch_size(pending=10_000, workers=4) == 16  # capped

    def test_policy_validation(self):
        with pytest.raises(ValidationError, match="batch_size"):
            ExecutionPolicy(batch_size=-1)
        assert ExecutionPolicy(batch_size=0).batch_size == 0
        assert ExecutionPolicy(batch_size=7).batch_size == 7


class TestBatchedPoolSemantics:
    def test_batched_pool_matches_serial(self):
        spec = make_spec(square_task)
        serial = run_campaign(spec, workers=1)
        for batch_size in (0, 1, 5, 100):
            pooled = run_campaign(spec, workers=2, batch_size=batch_size)
            assert pooled.telemetry.mode.startswith("pool")
            assert _metrics(pooled) == _metrics(serial), batch_size

    def test_batch_larger_than_map_is_fine(self):
        spec = make_spec(square_task, n=3)
        pooled = run_campaign(spec, workers=2, batch_size=50)
        assert pooled.telemetry.done == 3
        assert all(r["status"] == "ok" for r in pooled.records)

    def test_failure_inside_a_batch_stays_per_point(self):
        spec = make_spec(flaky_task)
        pooled = run_campaign(spec, workers=2, batch_size=4, retries=1)
        assert pooled.telemetry.failed == 1
        assert pooled.telemetry.done == len(spec) - 1
        (failed,) = pooled.failed_records
        assert failed["params"]["x"] == MARKED
        assert failed["attempts"] == 2  # retried, then terminally failed
        assert failed["error"]["type"] == "RuntimeError"

    def test_pool_entry_batch_returns_one_record_per_payload(self):
        payloads = [
            (square_task, f"p{i}", {"x": float(i)}, None, 1) for i in range(3)
        ]
        records = _pool_entry_batch(payloads)
        assert [r["id"] for r in records] == ["p0", "p1", "p2"]
        assert [r["metrics"]["square"] for r in records] == [0.0, 1.0, 4.0]
