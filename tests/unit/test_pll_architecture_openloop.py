"""Tests for repro.pll.architecture and repro.pll.openloop."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.blocks.chargepump import ChargePump
from repro.blocks.delay import LoopDelay
from repro.blocks.loopfilter import SeriesRCShuntCFilter
from repro.blocks.pfd import SamplingPFD
from repro.blocks.vco import VCO
from repro.pll.architecture import PLL
from repro.pll.design import design_typical_loop
from repro.pll.openloop import lti_open_loop, open_loop_callable, open_loop_operator

W0 = 2 * np.pi


def make_pll(delay=None, omega0=W0):
    filt = SeriesRCShuntCFilter.from_pole_zero(0.1 * omega0, 1.6 * omega0, 1e-3)
    return PLL(
        pfd=SamplingPFD(omega0),
        charge_pump=ChargePump(1e-3),
        filter_impedance=filt.impedance(),
        vco=VCO.time_invariant(1.0, omega0),
        delay=delay,
    )


class TestPLL:
    def test_omega0_and_period(self):
        pll = make_pll()
        assert pll.omega0 == W0
        assert pll.period == pytest.approx(1.0)

    def test_h_lf_combines_pump_and_impedance(self):
        pll = make_pll()
        s = 0.3j
        assert pll.h_lf(s) == pytest.approx(1e-3 * pll.filter_impedance(s))

    def test_fundamental_mismatch_rejected(self):
        filt = SeriesRCShuntCFilter.from_pole_zero(0.1 * W0, 1.6 * W0, 1e-3)
        with pytest.raises(ValidationError):
            PLL(
                pfd=SamplingPFD(W0),
                charge_pump=ChargePump(1e-3),
                filter_impedance=filt.impedance(),
                vco=VCO.time_invariant(1.0, 2 * W0),
            )

    def test_delay_fundamental_checked(self):
        with pytest.raises(ValidationError):
            make_pll(delay=LoopDelay(0.01, 3 * W0))

    def test_has_delay(self):
        assert not make_pll().has_delay
        assert not make_pll(delay=LoopDelay(0.0, W0)).has_delay
        assert make_pll(delay=LoopDelay(0.05, W0)).has_delay

    def test_describe(self):
        text = make_pll().describe()
        assert "omega0" in text and "Icp" in text


class TestLTIOpenLoop:
    def test_eq35_formula(self):
        pll = make_pll()
        a = lti_open_loop(pll)
        s = 0.27j
        expected = (W0 / (2 * np.pi)) * (1.0 / s) * pll.h_lf(s)
        assert a(s) == pytest.approx(expected)

    def test_pole_structure(self):
        """Three poles (two at DC) and one zero — the Fig. 5 shape."""
        a = lti_open_loop(make_pll())
        poles = a.poles()
        assert len(poles) == 3
        assert np.sum(np.abs(poles) < 1e-6) == 2
        assert len(a.zeros()) == 1

    def test_delay_requires_pade(self):
        pll = make_pll(delay=LoopDelay(0.02, W0))
        with pytest.raises(ValidationError):
            lti_open_loop(pll)
        a = lti_open_loop(pll, pade_order=2)
        s = 0.1j
        exact = open_loop_callable(pll)(s)
        assert a(s) == pytest.approx(exact, rel=1e-4)

    def test_callable_matches_rational_when_no_delay(self):
        pll = make_pll()
        a_tf = lti_open_loop(pll)
        a_fn = open_loop_callable(pll)
        s = 0.4j
        assert a_fn(s) == pytest.approx(a_tf(s))

    def test_callable_vectorized(self):
        pll = make_pll()
        out = open_loop_callable(pll)(1j * np.array([0.1, 0.2]))
        assert out.shape == (2,)


class TestOpenLoopOperator:
    def test_rank_one(self):
        op = open_loop_operator(make_pll())
        mat = op.dense(0.2j, 3)
        svals = np.linalg.svd(mat, compute_uv=False)
        assert svals[1] < 1e-10 * svals[0]

    def test_column_is_a_of_shifted_s(self):
        """G = V l^T with V_n(s) = A(s + j n w0) for the LTI-VCO loop."""
        pll = make_pll()
        a = lti_open_loop(pll)
        s = 0.23j
        mat = open_loop_operator(pll).dense(s, 2)
        for n in range(-2, 3):
            assert mat[n + 2, 0] == pytest.approx(complex(a(s + 1j * n * W0)), rel=1e-9)

    def test_delay_included(self):
        pll = make_pll(delay=LoopDelay(0.03, W0))
        s = 0.2j
        mat = open_loop_operator(pll).dense(s, 1)
        expected = open_loop_callable(pll)(s)
        assert mat[1, 1] == pytest.approx(complex(expected), rel=1e-9)

    def test_design_typical_loop_unity_gain(self):
        pll = design_typical_loop(omega0=W0, omega_ug=0.1 * W0)
        a = lti_open_loop(pll)
        assert abs(a(1j * 0.1 * W0)) == pytest.approx(1.0, rel=1e-9)
