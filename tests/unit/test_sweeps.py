"""Tests for repro.pll.sweeps and FourierSeries.from_samples."""

import csv

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.pll.design import design_typical_loop
from repro.pll.sweeps import standard_metrics, sweep
from repro.signals.fourier import FourierSeries

W0 = 2 * np.pi


def designer(ratio):
    return design_typical_loop(omega0=W0, omega_ug=ratio * W0)


class TestSweep:
    def test_basic_metrics(self):
        result = sweep(
            "ratio",
            [0.05, 0.15],
            designer,
            {"pm_eff": lambda pll: 1.0, "two": lambda pll: 2.0},
        )
        assert np.allclose(result.metric("pm_eff"), 1.0)
        assert np.allclose(result.metric("two"), 2.0)

    def test_failures_become_nan(self):
        def exploding(pll):
            raise RuntimeError("boom")

        result = sweep("ratio", [0.05], designer, {"bad": exploding, "ok": lambda p: 7.0})
        assert np.isnan(result.metric("bad")[0])
        assert result.metric("ok")[0] == 7.0

    def test_unknown_metric_rejected(self):
        result = sweep("ratio", [0.05], designer, {"a": lambda p: 1.0})
        with pytest.raises(ValidationError):
            result.metric("b")

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValidationError):
            sweep("r", [], designer, {"a": lambda p: 1.0})
        with pytest.raises(ValidationError):
            sweep("r", [0.1], designer, {})

    def test_standard_metrics_on_real_sweep(self):
        result = sweep("ratio", [0.05, 0.15, 0.3], designer, standard_metrics())
        pm_eff = result.metric("pm_eff")
        assert pm_eff[0] > pm_eff[1]
        assert np.isnan(pm_eff[2])  # no unity crossing at 0.3 -> NaN, not crash
        dom = result.metric("dominant_pole_real")
        assert dom[0] < 0 and dom[1] < 0 and dom[2] > 0  # instability visible
        mod = result.metric("modulus_margin")
        assert mod[0] > mod[1] > mod[2]

    def test_csv_export_with_campaign_metadata(self, tmp_path):
        result = sweep("ratio", [0.05, 0.1], designer, {"m": lambda p: 3.0})
        path = result.to_csv(tmp_path / "sweep.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        # Sweeps run through the campaign engine, so metadata columns are on
        # by default; each point id is the deterministic content hash.
        assert rows[0] == ["campaign", "point_id", "ratio", "m"]
        assert len(rows) == 3
        assert rows[1][0] == "sweep:ratio"
        assert rows[1][1] == result.point_ids[0]

    def test_csv_export_bare_table(self, tmp_path):
        result = sweep("ratio", [0.05, 0.1], designer, {"m": lambda p: 3.0})
        path = result.to_csv(tmp_path / "sweep.csv", include_metadata=False)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["ratio", "m"]
        assert len(rows) == 3

    def test_from_records_roundtrip(self, tmp_path):
        from repro.pll.sweeps import SweepResult

        result = sweep(
            "ratio",
            [0.05, 0.1],
            designer,
            {"m": lambda p: 3.0},
            store_path=tmp_path / "sweep.jsonl",
        )
        from repro.campaign import ResultStore

        store = ResultStore.open(tmp_path / "sweep.jsonl")
        back = SweepResult.from_records(
            "ratio", store.point_records(), campaign=result.campaign
        )
        assert np.allclose(back.values, result.values)
        assert np.allclose(back.metric("m"), result.metric("m"))
        assert back.point_ids == result.point_ids


class TestFromSamples:
    def test_roundtrip_with_evaluation(self):
        fs = FourierSeries([0.2j, 1.0, 0.5 - 0.1j], W0)
        samples = fs.sample(16)
        back = FourierSeries.from_samples(samples, W0, order=1)
        assert np.allclose(back.coefficients, fs.coefficients, atol=1e-12)

    def test_matches_from_function(self):
        func = lambda t: np.cos(W0 * t) + 0.3
        direct = FourierSeries.from_function(func, W0, order=2)
        t = np.arange(32) / 32.0
        sampled = FourierSeries.from_samples(func(t), W0, order=2)
        assert np.allclose(direct.coefficients, sampled.coefficients, atol=1e-12)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValidationError):
            FourierSeries.from_samples(np.ones(4), W0, order=2)
