"""Tests for repro.lti.transfer."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.lti.rational import RationalFunction
from repro.lti.transfer import TransferFunction


class TestConstruction:
    def test_basic(self):
        tf = TransferFunction([1.0], [1.0, 1.0], name="lp")
        assert tf.name == "lp"
        assert tf(0) == pytest.approx(1.0)

    def test_from_rational(self):
        rf = RationalFunction([2.0], [1.0, 4.0])
        tf = TransferFunction.from_rational(rf, name="x")
        assert tf.dc_gain() == pytest.approx(0.5)

    def test_from_zpk(self):
        tf = TransferFunction.from_zpk([-1.0], [-2.0], gain=3.0)
        assert tf(0) == pytest.approx(1.5)

    def test_gain(self):
        assert TransferFunction.gain(7.0)(99j) == pytest.approx(7.0)

    def test_integrator(self):
        tf = TransferFunction.integrator(2.0)
        assert tf(1j) == pytest.approx(2.0 / 1j)

    def test_first_order_lowpass(self):
        tf = TransferFunction.first_order_lowpass(10.0, dc_gain=2.0)
        assert tf(0) == pytest.approx(2.0)
        assert abs(tf(10j)) == pytest.approx(2.0 / np.sqrt(2))

    def test_first_order_lowpass_rejects_bad_pole(self):
        with pytest.raises(ValidationError):
            TransferFunction.first_order_lowpass(-1.0)


class TestProperties:
    def test_poles_zeros(self):
        tf = TransferFunction.from_zpk([-1.0], [-2.0, -5.0], 1.0)
        assert sorted(tf.poles().real) == pytest.approx([-5.0, -2.0])
        assert tf.zeros().real == pytest.approx([-1.0])

    def test_stability(self):
        assert TransferFunction([1.0], [1.0, 1.0]).is_stable()
        assert not TransferFunction([1.0], [1.0, -1.0]).is_stable()

    def test_integrator_not_stable(self):
        assert not TransferFunction.integrator().is_stable()

    def test_gain_block_is_stable(self):
        assert TransferFunction.gain(5.0).is_stable()

    def test_frequency_response(self):
        tf = TransferFunction([1.0], [1.0, 1.0])
        out = tf.frequency_response([1.0, 2.0])
        assert out[0] == pytest.approx(1.0 / (1.0 + 1j))


class TestInterconnections:
    g1 = TransferFunction([1.0], [1.0, 1.0])
    g2 = TransferFunction([2.0], [1.0, 3.0])

    def test_series_is_product(self):
        s = 0.4j
        cascade = self.g1.series(self.g2)
        assert cascade(s) == pytest.approx(self.g1(s) * self.g2(s))

    def test_parallel_is_sum(self):
        s = 1j
        assert self.g1.parallel(self.g2)(s) == pytest.approx(self.g1(s) + self.g2(s))

    def test_unity_feedback(self):
        s = 0.5j
        closed = self.g1.feedback()
        assert closed(s) == pytest.approx(self.g1(s) / (1 + self.g1(s)))

    def test_feedback_with_return_path(self):
        s = 1.0 + 1j
        closed = self.g1.feedback(self.g2)
        assert closed(s) == pytest.approx(self.g1(s) / (1 + self.g1(s) * self.g2(s)))

    def test_positive_feedback(self):
        s = 2.0
        closed = self.g1.feedback(sign=+1)
        assert closed(s) == pytest.approx(self.g1(s) / (1 - self.g1(s)))

    def test_feedback_rejects_bad_sign(self):
        with pytest.raises(ValidationError):
            self.g1.feedback(sign=2)

    def test_integrator_unity_feedback_is_first_order(self):
        closed = TransferFunction.integrator(3.0).feedback()
        # 3/s / (1 + 3/s) = 3/(s+3)
        assert closed(1j) == pytest.approx(3.0 / (1j + 3.0))
        assert closed.poles().real == pytest.approx([-3.0])


class TestOperators:
    g = TransferFunction([1.0], [1.0, 1.0])

    def test_mul_by_scalar(self):
        assert (2 * self.g)(1j) == pytest.approx(2 * self.g(1j))

    def test_mul_by_transfer(self):
        assert (self.g * self.g)(1j) == pytest.approx(self.g(1j) ** 2)

    def test_mul_by_rational(self):
        rf = RationalFunction([1.0, 0.0], [1.0])
        assert (self.g * rf)(2j) == pytest.approx(self.g(2j) * 2j)

    def test_add_sub(self):
        s = 0.1j
        assert (self.g + 1)(s) == pytest.approx(self.g(s) + 1)
        assert (1 - self.g)(s) == pytest.approx(1 - self.g(s))

    def test_division(self):
        s = 1j
        assert (1 / self.g)(s) == pytest.approx(1 / self.g(s))

    def test_neg(self):
        assert (-self.g)(0) == pytest.approx(-1.0)

    def test_coerce_rejects_junk(self):
        with pytest.raises(TypeError):
            self.g * "x"


class TestTransforms:
    def test_scaled_frequency(self):
        tf = TransferFunction([1.0], [1.0, 1.0])
        assert tf.scaled_frequency(5.0)(5j) == pytest.approx(tf(1j))

    def test_shifted(self):
        tf = TransferFunction([1.0], [1.0, 2.0])
        assert tf.shifted(1j)(1.0) == pytest.approx(tf(1.0 + 1j))

    def test_simplified(self):
        tf = TransferFunction(np.polymul([1.0, 1.0], [1.0, 2.0]), np.polymul([1.0, 1.0], [1.0, 5.0]))
        assert tf.simplified().poles().real == pytest.approx([-5.0])

    def test_to_statespace_roundtrip(self):
        tf = TransferFunction([1.0, 2.0], [1.0, 3.0, 5.0])
        ss = tf.to_statespace()
        for s in (0.3j, 1.0 + 1j):
            assert ss.transfer_at(s) == pytest.approx(tf(s))

    def test_repr_contains_name(self):
        assert "vco" in repr(TransferFunction([1.0], [1.0, 0.0], name="vco"))
