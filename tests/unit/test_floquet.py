"""Tests for repro.simulator.floquet — the one-cycle return map."""

import numpy as np
import pytest

from repro.pll.design import design_typical_loop
from repro.simulator.floquet import (
    compare_with_zdomain,
    floquet_multipliers,
    one_cycle_map,
)

W0 = 2 * np.pi


@pytest.fixture(scope="module")
def pll():
    return design_typical_loop(omega0=W0, omega_ug=0.1 * W0)


class TestCycleMap:
    def test_fixed_point_at_lock(self, pll):
        """The locked state (all zeros) maps to itself."""
        from repro.simulator.floquet import _CycleMap

        cm = _CycleMap(pll)
        out = cm(np.zeros(cm.dim))
        assert np.allclose(out, 0.0, atol=1e-15)

    def test_matrix_dimension(self, pll):
        m = one_cycle_map(pll)
        # Two filter states + theta.
        assert m.shape == (3, 3)

    def test_linearity_in_perturbation_size(self, pll):
        """Central differences at two eps values agree (the map is smooth)."""
        m1 = one_cycle_map(pll, eps=1e-6)
        m2 = one_cycle_map(pll, eps=1e-8)
        assert np.allclose(m1, m2, rtol=1e-3, atol=1e-8)


class TestMultipliers:
    def test_stable_loop(self, pll):
        result = floquet_multipliers(pll)
        assert result.is_stable
        assert result.spectral_radius < 1.0
        assert result.decay_time_constant_cycles() < 20.0

    def test_matches_zdomain_poles(self, pll):
        assert compare_with_zdomain(pll) < 1e-3

    def test_unstable_loop_detected(self):
        hot = design_typical_loop(omega0=W0, omega_ug=0.3 * W0)
        result = floquet_multipliers(hot)
        assert not result.is_stable
        assert result.spectral_radius > 1.1
        assert result.decay_time_constant_cycles() == float("inf")

    def test_multipliers_sorted_by_magnitude(self, pll):
        mus = floquet_multipliers(pll).multipliers
        mags = np.abs(mus)
        assert np.all(np.diff(mags) <= 1e-12)

    def test_slow_loop_dominant_multiplier(self):
        """Deep-LTI regime: dominant multiplier ~ e^{p T} of the dominant
        continuous closed-loop pole."""
        slow = design_typical_loop(omega0=W0, omega_ug=0.02 * W0)
        from repro.baselines.lti_approx import ClassicalLTIAnalysis

        poles = ClassicalLTIAnalysis(slow).closed_loop.poles()
        dominant = poles[np.argmax(poles.real)]
        expected = np.exp(dominant * slow.period)
        result = floquet_multipliers(slow)
        gaps = np.abs(result.multipliers - expected)
        assert np.min(gaps) < 5e-3
