"""Tests for repro.simulator.transfer_extraction."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.design import design_typical_loop
from repro.simulator.transfer_extraction import (
    measure_closed_loop_transfer,
    measure_harmonic_elements,
    snap_to_bin,
)

W0 = 2 * np.pi


@pytest.fixture(scope="module")
def pll():
    return design_typical_loop(omega0=W0, omega_ug=0.1 * W0)


@pytest.fixture(scope="module")
def closed(pll):
    return ClosedLoopHTM(pll)


class TestSnapToBin:
    def test_exact_bin_unchanged(self):
        assert snap_to_bin(0.1 * W0, W0, 100) == pytest.approx(0.1 * W0)

    def test_rounds_to_nearest(self):
        snapped = snap_to_bin(0.1234 * W0, W0, 100)
        assert snapped == pytest.approx(0.12 * W0)

    def test_clamped_to_first_bin(self):
        assert snap_to_bin(1e-9, W0, 100) == pytest.approx(W0 / 100)

    def test_clamped_below_nyquist(self):
        snapped = snap_to_bin(10 * W0, W0, 100)
        assert snapped == pytest.approx(49 * W0 / 100)

    def test_minimum_cycles(self):
        with pytest.raises(ValidationError):
            snap_to_bin(0.1, W0, 2)


class TestMeasureClosedLoop:
    def test_matches_htm_prediction(self, pll, closed):
        meas = measure_closed_loop_transfer(
            pll, 0.08 * W0, measure_cycles=200, discard_cycles=150
        )
        predicted = closed.h00(1j * meas.omega)
        assert abs(meas.response - predicted) / abs(predicted) < 5e-3

    def test_agreement_well_within_paper_2pct(self, pll, closed):
        for wn in (0.03, 0.15, 0.3):
            meas = measure_closed_loop_transfer(
                pll, wn * W0, measure_cycles=200, discard_cycles=150
            )
            predicted = closed.h00(1j * meas.omega)
            assert abs(meas.response - predicted) / abs(predicted) < 0.02

    def test_amplitude_guard(self, pll):
        with pytest.raises(ValidationError):
            measure_closed_loop_transfer(pll, 0.1 * W0, amplitude=0.5)

    def test_oversample_guard_for_sidebands(self, pll):
        with pytest.raises(ValidationError):
            measure_closed_loop_transfer(
                pll, 0.1 * W0, oversample=4, sideband_orders=(3,)
            )

    def test_default_amplitude_small_signal(self, pll):
        meas = measure_closed_loop_transfer(
            pll, 0.05 * W0, measure_cycles=100, discard_cycles=50
        )
        assert np.isfinite(meas.response)

    def test_linearity_amplitude_independence(self, pll):
        """Small-signal regime: halving the drive leaves H00 unchanged."""
        kwargs = dict(measure_cycles=150, discard_cycles=100)
        m1 = measure_closed_loop_transfer(pll, 0.1 * W0, amplitude=1e-4, **kwargs)
        m2 = measure_closed_loop_transfer(pll, 0.1 * W0, amplitude=5e-5, **kwargs)
        assert m1.response == pytest.approx(m2.response, rel=1e-3)


class TestHarmonicElements:
    def test_sidebands_match_htm(self, pll, closed):
        """The measured conversion sidebands H_{n,0} match eq. (34)'s
        prediction V_n/(1+lambda) — behaviour invisible to LTI analysis."""
        out = measure_harmonic_elements(
            pll,
            0.07 * W0,
            orders=(-1, 1),
            measure_cycles=300,
            discard_cycles=200,
            oversample=32,
        )
        s = None
        meas0 = measure_closed_loop_transfer(
            pll, 0.07 * W0, measure_cycles=300, discard_cycles=200, oversample=32
        )
        s = 1j * meas0.omega
        for n in (-1, 0, 1):
            predicted = closed.element(s, n, 0)
            assert abs(out[n] - predicted) / abs(predicted) < 0.02

    def test_includes_baseband(self, pll):
        out = measure_harmonic_elements(
            pll, 0.1 * W0, orders=(1,), measure_cycles=100, discard_cycles=80
        )
        assert 0 in out and 1 in out
