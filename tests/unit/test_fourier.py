"""Tests for repro.signals.fourier."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.signals.fourier import FourierSeries

W0 = 2 * np.pi  # period T = 1


class TestConstruction:
    def test_basic(self):
        fs = FourierSeries([0.0, 1.0, 0.0], W0)
        assert fs.order == 1 and fs.omega0 == W0

    def test_even_length_rejected(self):
        with pytest.raises(ValidationError):
            FourierSeries([1.0, 2.0], W0)

    def test_nonfinite_rejected(self):
        with pytest.raises(ValidationError):
            FourierSeries([float("inf")], W0)

    def test_bad_omega0_rejected(self):
        with pytest.raises(ValidationError):
            FourierSeries([1.0], 0.0)

    def test_constant(self):
        fs = FourierSeries.constant(3.0, W0)
        assert fs(0.123) == pytest.approx(3.0)

    def test_period(self):
        assert FourierSeries([1.0], 4.0).period == pytest.approx(np.pi / 2)


class TestFromFunction:
    def test_cosine_projection(self):
        fs = FourierSeries.from_function(lambda t: np.cos(W0 * t), W0, order=3)
        assert fs.coefficient(1) == pytest.approx(0.5, abs=1e-12)
        assert fs.coefficient(-1) == pytest.approx(0.5, abs=1e-12)
        assert abs(fs.coefficient(2)) < 1e-12

    def test_complex_exponential(self):
        fs = FourierSeries.from_function(lambda t: np.exp(2j * W0 * t), W0, order=3)
        assert fs.coefficient(2) == pytest.approx(1.0, abs=1e-12)
        assert abs(fs.coefficient(-2)) < 1e-12

    def test_insufficient_samples_rejected(self):
        with pytest.raises(ValidationError):
            FourierSeries.from_function(np.cos, W0, order=4, samples=5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            FourierSeries.from_function(lambda t: np.array([1.0]), W0, order=1)


class TestAccessors:
    fs = FourierSeries([1j, 2.0, -1j], W0)

    def test_coefficient_in_range(self):
        assert self.fs.coefficient(0) == 2.0
        assert self.fs.coefficient(1) == -1j

    def test_coefficient_out_of_range_is_zero(self):
        assert self.fs.coefficient(5) == 0.0

    def test_coefficients_copy(self):
        arr = self.fs.coefficients
        arr[0] = 99.0
        assert self.fs.coefficient(-1) == 1j

    def test_is_real_signal(self):
        real = FourierSeries([1 - 1j, 2.0, 1 + 1j], W0)
        assert real.is_real_signal()
        assert not FourierSeries([0.0, 0.0, 1.0], W0).is_real_signal()

    def test_mean_and_power(self):
        assert self.fs.mean() == 2.0
        assert self.fs.power() == pytest.approx(4.0 + 1.0 + 1.0)


class TestEvaluation:
    def test_matches_manual_sum(self):
        fs = FourierSeries([0.5j, 1.0, -0.5j], W0)
        t = 0.3
        expected = 0.5j * np.exp(-1j * W0 * t) + 1.0 - 0.5j * np.exp(1j * W0 * t)
        assert fs(t) == pytest.approx(expected)

    def test_periodicity(self):
        fs = FourierSeries([0.2, 1.0, 0.3 + 0.1j], W0)
        assert fs(0.37) == pytest.approx(fs(0.37 + fs.period))

    def test_vectorized(self):
        fs = FourierSeries([0.0, 1.0, 0.0], W0)
        t = np.array([0.0, 0.25, 0.5])
        assert fs(t).shape == (3,)

    def test_sample_count(self):
        assert FourierSeries([1.0], W0).sample(8).shape == (8,)


class TestAlgebra:
    a = FourierSeries([0.0, 1.0, 1.0], W0)
    b = FourierSeries([0.5, 2.0, 0.0], W0)

    def test_addition_pointwise(self):
        t = 0.21
        assert (self.a + self.b)(t) == pytest.approx(self.a(t) + self.b(t))

    def test_scalar_addition(self):
        assert (self.a + 3)(0.1) == pytest.approx(self.a(0.1) + 3)

    def test_subtraction(self):
        t = 0.4
        assert (self.a - self.b)(t) == pytest.approx(self.a(t) - self.b(t))

    def test_multiplication_is_pointwise_product(self):
        t = 0.17
        assert (self.a * self.b)(t) == pytest.approx(self.a(t) * self.b(t))

    def test_multiplication_extends_order(self):
        assert (self.a * self.b).order == 2

    def test_scalar_multiplication(self):
        assert (2 * self.a)(0.3) == pytest.approx(2 * self.a(0.3))

    def test_incompatible_fundamentals_rejected(self):
        other = FourierSeries([1.0], 2 * W0)
        with pytest.raises(ValidationError):
            self.a + other

    def test_conjugate(self):
        t = 0.11
        assert self.a.conjugate()(t) == pytest.approx(np.conj(self.a(t)))

    def test_derivative(self):
        fs = FourierSeries.from_function(lambda t: np.cos(W0 * t), W0, order=2)
        t = 0.23
        assert fs.derivative()(t) == pytest.approx(-W0 * np.sin(W0 * t), abs=1e-9)

    def test_delayed(self):
        fs = FourierSeries([0.3j, 0.7, -0.3j], W0)
        tau = 0.13
        assert fs.delayed(tau)(0.5) == pytest.approx(fs(0.5 - tau))

    def test_truncated_shrink(self):
        fs = FourierSeries([1.0, 2.0, 3.0, 4.0, 5.0], W0)
        cut = fs.truncated(1)
        assert cut.order == 1
        assert cut.coefficient(1) == 4.0
        assert cut.coefficient(2) == 0.0

    def test_truncated_grow_pads(self):
        fs = FourierSeries([1.0], W0)
        assert fs.truncated(2).order == 2


class TestToeplitz:
    def test_structure(self):
        fs = FourierSeries([3.0, 1.0, 2.0], W0)  # c_{-1}=3, c_0=1, c_1=2
        m = fs.toeplitz(3)
        # m[n+1, k+1] = c_{n-k}
        assert m[1, 1] == 1.0
        assert m[2, 1] == 2.0  # c_1
        assert m[0, 1] == 3.0  # c_{-1}
        assert m[0, 2] == 0.0  # c_{-2}

    def test_even_size_rejected(self):
        with pytest.raises(ValidationError):
            FourierSeries([1.0], W0).toeplitz(4)

    def test_multiplication_operator_composition(self):
        # Toeplitz of product = product of Toeplitz matrices in the limit of
        # sufficient truncation (exact when orders add up inside).
        a = FourierSeries([0.0, 1.0, 0.5], W0)
        b = FourierSeries([0.2, 1.0, 0.0], W0)
        size = 9
        direct = (a * b).toeplitz(size)
        composed = a.toeplitz(size) @ b.toeplitz(size)
        # Central block agrees (edges suffer truncation).
        sl = slice(2, 7)
        assert np.allclose(direct[sl, sl], composed[sl, sl])
