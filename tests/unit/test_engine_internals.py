"""White-box tests of the behavioural engine's integration machinery."""

import numpy as np
import pytest

from repro.pll.design import design_typical_loop
from repro.simulator.engine import BehavioralPLLSimulator, SimulationConfig

W0 = 2 * np.pi


@pytest.fixture()
def sim():
    pll = design_typical_loop(omega0=W0, omega_ug=0.1 * W0)
    return BehavioralPLLSimulator(pll, config=SimulationConfig(cycles=5))


class TestAugmentedSystem:
    def test_state_layout(self, sim):
        # Two filter states + theta + frozen delta.
        assert sim._a_aug.shape == (4, 4)
        assert sim._n_filter == 2

    def test_theta_accessors(self, sim):
        state = np.array([0.1, 0.2, 0.33, 0.0])
        assert sim.theta_of(state) == pytest.approx(0.33)

    def test_theta_rate_includes_offset(self, sim):
        state = np.zeros(4)
        state[-1] = 0.01
        assert sim.theta_rate_of(state, 0.0) == pytest.approx(0.01)

    def test_control_matches_filter_statespace(self, sim):
        ss = sim.pll.filter_impedance.to_statespace()
        x = np.array([0.3, -0.2])
        state = np.concatenate([x, [0.0, 0.0]])
        expected = ss.output(x, 0.5)
        assert sim.control_of(state, 0.5) == pytest.approx(expected)

    def test_advance_matches_statespace_stepping(self, sim):
        """The augmented expm step reproduces filter + integrated phase."""
        ss = sim.pll.filter_impedance.to_statespace()
        x0 = np.array([0.05, -0.02])
        current = 2e-4
        dt = 0.37
        state = np.concatenate([x0, [0.0, 0.0]])
        advanced = sim._advance(state, dt, current)
        x_direct, _ = ss.step_held_input(x0, current, dt)
        assert np.allclose(advanced[:2], x_direct, rtol=1e-10)
        # theta' = v0 * u: integrate the filter output over the step with
        # fine Riemann sampling as an independent check.
        ts = np.linspace(0, dt, 20001)
        xs, us = ss.simulate_held(ts, np.full(ts.size, current), x0=x0)
        theta_ref = np.trapezoid(us, ts) * float(sim.pll.vco.v0.real)
        assert advanced[2] == pytest.approx(theta_ref, rel=1e-6)

    def test_zero_dt_identity(self, sim):
        state = np.array([0.1, 0.2, 0.3, 0.4])
        assert np.allclose(sim._advance(state, 0.0, 1.0), state)

    def test_step_cache_reuse(self, sim):
        sim._step_cache.clear()
        state = np.zeros(4)
        sim._advance(state, 0.125, 0.0)
        sim._advance(state, 0.125, 0.0)
        sim._advance(state, 0.125, 1e-3)
        assert len(sim._step_cache) == 2  # (dt, current) pairs

    def test_cache_correctness(self, sim):
        """Cached and freshly-computed propagators agree."""
        state = np.array([0.01, 0.02, 0.0, 0.0])
        a = sim._advance(state, 0.2, 5e-4)
        sim._step_cache.clear()
        b = sim._advance(state, 0.2, 5e-4)
        assert np.allclose(a, b)


class TestProcessCycle:
    def test_locked_cycle_zero_width(self, sim):
        state = np.zeros(4)

        def advance(t0, t1, i, st):
            return sim._advance(st, t1 - t0, i)

        state, t_cur, t_ref, t_vco = sim._process_cycle(state, 0.0, 1, advance)
        assert t_ref == pytest.approx(1.0)
        assert t_vco == pytest.approx(1.0)
        assert t_cur == pytest.approx(1.0)
        assert np.allclose(state[:3], 0.0)

    def test_slow_vco_gets_up_pulse(self, sim):
        state = np.zeros(4)
        state[-1] = -0.01  # VCO slow -> theta drifts negative -> ref leads

        def advance(t0, t1, i, st):
            return sim._advance(st, t1 - t0, i)

        state, t_cur, t_ref, t_vco = sim._process_cycle(state, 0.0, 1, advance)
        assert t_vco > t_ref  # UP pulse ends at the (late) VCO edge
        assert state[0] != 0.0 or state[1] != 0.0  # filter charged
