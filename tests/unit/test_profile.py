"""Sampling profiler: folding, attribution, shards, merge, emitters.

The live-sampling tests use thread mode (deterministic under pytest and
identical bucket plumbing); one signal-mode smoke test covers the
SIGPROF path itself.  The "free when off" contract gets the same
treatment as spans/trace: with no profiler running, the module holds no
state and installs nothing into the span/trace hot paths.
"""

import json
import threading
import time

import pytest

from repro._errors import ValidationError
from repro.obs import profile
from repro.obs import spans as obs
from repro.obs import trace


@pytest.fixture(autouse=True)
def _clean_profiler():
    """Every test starts and ends with no profiler and no sink."""
    profile.stop()
    profile._sink_path = None
    yield
    profile.stop()
    profile._sink_path = None
    obs.set_profile_paths(None)
    trace.set_profile_traces(None)


def _burn(seconds=0.25):
    """Busy loop so CPU- and wall-clock samplers both see frames."""
    deadline = time.perf_counter() + seconds
    x = 0.0
    while time.perf_counter() < deadline:
        x += sum(i * i for i in range(100))
    return x


# -- disabled purity --------------------------------------------------------------


def test_disabled_profiler_holds_no_state():
    assert profile.active() is None
    assert not profile.sink_configured()
    # Nothing is installed into the span/trace hot paths.
    assert obs._profile_paths is None
    assert trace._profile_traces is None
    # stop/flush/maybe_flush on a stopped profiler are no-ops.
    assert profile.stop() is None
    profile.flush()
    profile.maybe_flush()


def test_span_hot_path_untouched_without_profiler():
    obs.enable()
    try:
        with obs.span("probe"):
            assert obs._profile_paths is None
    finally:
        obs.disable()
        obs.reset()


# -- lifecycle and idempotency ----------------------------------------------------


def test_start_is_idempotent_and_stop_clears():
    first = profile.start(hz=101, mode="thread")
    second = profile.start(hz=55, mode="thread")
    assert second is first  # one itimer per process: first wins
    assert profile.active() is first
    result = profile.stop()
    assert result["kind"] == "profile"
    assert result["hz"] == 101
    assert profile.active() is None


def test_start_installs_and_stop_uninstalls_registries():
    profiler = profile.start(mode="thread")
    assert obs._profile_paths is profiler._span_paths
    assert trace._profile_traces is profiler._trace_ids
    profile.stop()
    assert obs._profile_paths is None
    assert trace._profile_traces is None


def test_stop_leaves_newer_profilers_registries_alone():
    old = profile.Profiler(mode="thread")
    old.start()
    new = profile.Profiler(mode="thread")
    new.start()  # takes over the registries
    old.stop()
    assert obs._profile_paths is new._span_paths  # not torn down by old
    new.stop()
    assert obs._profile_paths is None


def test_profiler_validates_hz_and_mode():
    with pytest.raises(ValidationError, match="hz"):
        profile.Profiler(hz=0)
    with pytest.raises(ValidationError, match="hz"):
        profile.Profiler(hz=5000)
    with pytest.raises(ValidationError, match="mode"):
        profile.Profiler(mode="quantum")


def test_requested_hz_parses_and_clamps(monkeypatch):
    monkeypatch.setenv("REPRO_OBS_PROFILE_HZ", "251")
    assert profile.requested_hz() == 251
    monkeypatch.setenv("REPRO_OBS_PROFILE_HZ", "100000")
    assert profile.requested_hz() == profile.DEFAULT_HZ
    monkeypatch.setenv("REPRO_OBS_PROFILE_HZ", "banana")
    assert profile.requested_hz() == profile.DEFAULT_HZ
    monkeypatch.setenv("REPRO_OBS_PROFILE", "1")
    assert profile.profile_requested()
    monkeypatch.setenv("REPRO_OBS_PROFILE", "0")
    assert not profile.profile_requested()


# -- live sampling ----------------------------------------------------------------


def test_thread_mode_samples_busy_work():
    profiler = profile.start(hz=200, mode="thread")
    _burn()
    snap = profile.stop()
    assert profiler.clock == "wall"
    assert snap["samples"] > 0
    assert snap["stacks"], "busy work must fold into at least one stack"
    # The profiler's own frames (sampler loop, collector) never appear.
    for entry in snap["stacks"]:
        assert "profile._run_thread" not in entry["stack"]
        assert "profile._collect" not in entry["stack"]


def test_signal_mode_samples_cpu_time():
    try:
        profiler = profile.Profiler(hz=500, mode="signal")
    except ValidationError:
        pytest.skip("no SIGPROF on this platform/thread")
    profiler.start()
    _burn()
    snap = profiler.stop()
    assert profiler.clock == "cpu"
    assert snap["samples"] > 0
    assert snap["stacks"]


def test_samples_attribute_to_span_path_and_trace_id():
    obs.enable()
    profile.start(hz=300, mode="thread")
    try:
        ctx = trace.new_context()
        with trace.activate(ctx):
            with obs.span("outer"):
                with obs.span("inner"):
                    _burn(0.4)
    finally:
        snap = profile.stop()
        obs.disable()
        obs.reset()
    spanned = [e for e in snap["stacks"] if e["span"] == "outer/inner"]
    assert spanned, "samples during the span must carry its path"
    assert any(ctx.trace_id in e["trace_ids"] for e in spanned)


def test_campaign_context_fallback_attributes_foreign_threads():
    ctx = trace.new_context()
    trace.set_campaign(ctx)
    profile.start(hz=300, mode="thread")
    try:
        worker = threading.Thread(target=_burn, args=(0.3,))
        worker.start()
        worker.join()
    finally:
        snap = profile.stop()
        trace.set_campaign(None)
    burns = [e for e in snap["stacks"] if "_burn" in e["stack"]]
    assert burns
    assert any(ctx.trace_id in e["trace_ids"] for e in burns)


# -- capture ----------------------------------------------------------------------


def test_capture_validates_seconds():
    with pytest.raises(ValidationError, match="seconds"):
        profile.capture(0.0)
    with pytest.raises(ValidationError, match="seconds"):
        profile.capture(601.0)


def test_capture_rejects_concurrent_captures():
    assert profile._capture_lock.acquire(blocking=False)
    try:
        with pytest.raises(ValidationError, match="already running"):
            profile.capture(0.1, mode="thread")
    finally:
        profile._capture_lock.release()


def test_capture_with_running_profiler_returns_delta():
    profile.start(hz=300, mode="thread")
    try:
        cap = profile.capture(0.3)
        _ = _burn(0.05)
    finally:
        profile.stop()
    assert cap["kind"] == "profile"
    assert cap["samples"] >= 0  # delta window, not the cumulative count


# -- shard sink -------------------------------------------------------------------


def test_sink_round_trip_and_atomicity(tmp_path):
    store = tmp_path / "campaign.jsonl"
    shard = profile.configure_sink(profile.profile_dir(store), worker="w1")
    assert shard == store.parent / "campaign.jsonl.profile" / "w1.json"
    profile.start(hz=200, mode="thread")
    _burn(0.2)
    profile.flush()
    mid = profile.read_profile(shard)
    assert mid is not None and mid["kind"] == "profile"
    profile.stop()  # final flush
    profile.close_sink()
    final = profile.read_profile(shard)
    assert final["samples"] >= mid["samples"]
    # No temp files left behind by the atomic rewrite.
    assert list(shard.parent.glob(".*.tmp")) == []
    assert not profile.sink_configured()


def test_configure_sink_json_target_is_used_verbatim(tmp_path):
    path = profile.configure_sink(tmp_path / "serve.profile.json")
    assert path == tmp_path / "serve.profile.json"
    profile.close_sink()


def test_read_profile_rejects_torn_and_foreign_files(tmp_path):
    assert profile.read_profile(tmp_path / "missing.json") is None
    torn = tmp_path / "torn.json"
    torn.write_text('{"kind": "prof')
    assert profile.read_profile(torn) is None
    foreign = tmp_path / "foreign.json"
    foreign.write_text(json.dumps({"kind": "trace", "spans": []}))
    assert profile.read_profile(foreign) is None


def test_load_store_profiles_skips_bad_shards(tmp_path):
    store = tmp_path / "c.jsonl"
    shard_dir = profile.profile_dir(store)
    shard_dir.mkdir()
    good = {"kind": "profile", "samples": 3, "stacks": []}
    (shard_dir / "a.json").write_text(json.dumps(good))
    (shard_dir / "b.json").write_text("garbage")
    profiles = profile.load_store_profiles(store)
    assert len(profiles) == 1
    assert profiles[0]["samples"] == 3


# -- merge / delta ----------------------------------------------------------------


def _shard(worker, stacks, samples=None, host="h1", hz=97, clock="cpu"):
    return {
        "kind": "profile",
        "worker": worker,
        "host": host,
        "hz": hz,
        "clock": clock,
        "samples": samples if samples is not None else sum(
            e["count"] for e in stacks
        ),
        "dropped": 0,
        "stacks": stacks,
    }


def test_merge_profiles_sums_buckets_and_dedups_traces():
    a = _shard("w1", [
        {"span": "run", "stack": "m.f;m.g", "count": 4, "trace_ids": {"t1": 4}},
    ])
    b = _shard("w2", [
        {"span": "run", "stack": "m.f;m.g", "count": 6, "trace_ids": {"t1": 2, "t2": 4}},
        {"span": "", "stack": "m.h", "count": 1, "trace_ids": {}},
    ], host="h2")
    merged = profile.merge_profiles([a, b])
    assert merged["merged"] == 2
    assert merged["workers"] == ["w1", "w2"]
    assert merged["hosts"] == ["h1", "h2"]
    assert merged["samples"] == 11
    top = merged["stacks"][0]  # hottest first
    assert (top["span"], top["stack"], top["count"]) == ("run", "m.f;m.g", 10)
    assert top["trace_ids"] == {"t1": 6, "t2": 4}


def test_merge_profiles_mixed_clocks_are_labelled():
    merged = profile.merge_profiles([
        _shard("w1", [], clock="cpu"), _shard("w2", [], clock="wall"),
    ])
    assert merged["clock"] == "cpu+wall"


def test_profile_delta_subtracts_and_drops_empty():
    before = _shard("w", [
        {"span": "s", "stack": "m.f", "count": 5, "trace_ids": {"t1": 5}},
        {"span": "s", "stack": "m.g", "count": 2, "trace_ids": {}},
    ], samples=7)
    after = _shard("w", [
        {"span": "s", "stack": "m.f", "count": 9, "trace_ids": {"t1": 6, "t2": 3}},
        {"span": "s", "stack": "m.g", "count": 2, "trace_ids": {}},
    ], samples=12)
    delta = profile.profile_delta(before, after)
    assert delta["samples"] == 5
    (entry,) = delta["stacks"]  # unchanged m.g bucket disappears
    assert entry["count"] == 4
    assert entry["trace_ids"] == {"t1": 1, "t2": 3}


# -- emitters ---------------------------------------------------------------------


PROFILE = {
    "kind": "profile", "hz": 97, "clock": "cpu", "samples": 10, "dropped": 0,
    "stacks": [
        {"span": "run/grid", "stack": "m.f;m.g", "count": 7, "trace_ids": {}},
        {"span": "", "stack": "m.f;m.h", "count": 3, "trace_ids": {}},
    ],
}


def test_to_collapsed_prepends_span_frames():
    text = profile.to_collapsed(PROFILE)
    assert text.splitlines() == [
        "span:run;span:grid;m.f;m.g 7",
        "m.f;m.h 3",
    ]
    assert profile.to_collapsed({"stacks": []}) == ""


def test_flamegraph_html_embeds_the_tree():
    html = profile.to_flamegraph_html(PROFILE, title="unit test")
    assert "<title>unit test</title>" in html
    assert "10 samples at 97 Hz" in html
    tree = json.loads(html.split("var data = ", 1)[1].split(";\n", 1)[0])
    assert tree["name"] == "all"
    assert tree["value"] == 10


def test_top_frames_ranks_by_self_samples():
    top = profile.top_frames(PROFILE, n=2)
    assert [e["frame"] for e in top] == ["m.g", "m.h"]
    assert top[0]["self"] == 7
    assert top[0]["fraction"] == pytest.approx(0.7)
    # m.f never appears as a leaf, but totals count it in both stacks.
    assert profile.top_frames(PROFILE, n=5)[0]["total"] == 7
    assert profile.top_frames({"stacks": []}, n=3) == []


def test_bucket_cap_counts_dropped_samples():
    profiler = profile.Profiler(hz=100, mode="thread")
    for i in range(profile.MAX_BUCKETS):
        profiler._buckets[("", f"m.f{i}")] = [1, {}]
    profiler._record(1, "m.overflow")
    assert profiler.dropped == 1
    assert ("", "m.overflow") not in profiler._buckets
