"""Tests for repro.lti.bode: crossovers, margins, bandwidth, peaking."""

import math

import numpy as np
import pytest

from repro._errors import ConvergenceError, ValidationError
from repro.lti.bode import (
    as_response,
    bandwidth_3db,
    bode_points,
    gain_crossover,
    gain_margin,
    peaking_db,
    phase_at,
    phase_crossover,
    phase_margin,
    stability_margins,
)
from repro.lti.transfer import TransferFunction


def integrator_loop(k=1.0):
    """L(s) = k/s: crossover at k, PM = 90 deg."""
    return TransferFunction.integrator(k)


def double_integrator_with_zero():
    """L = (1 + s)/s^2: crossover computable, PM = atan(wug)."""
    return TransferFunction([1.0, 1.0], [1.0, 0.0, 0.0])


def third_order_loop():
    """L = 10/((s+1)^3): finite gain and phase margins."""
    return TransferFunction([10.0], np.polymul(np.polymul([1, 1], [1, 1]), [1, 1]))


class TestAsResponse:
    def test_accepts_transfer_function(self):
        resp = as_response(integrator_loop())
        assert resp(np.array([2.0]))[0] == pytest.approx(1.0 / 2j)

    def test_accepts_callable(self):
        resp = as_response(lambda w: 1.0 / (1j * np.asarray(w)))
        assert resp(np.array([4.0]))[0] == pytest.approx(-0.25j)

    def test_rejects_non_callable(self):
        with pytest.raises(ValidationError):
            as_response(42)


class TestGainCrossover:
    def test_integrator(self):
        assert gain_crossover(integrator_loop(3.0)) == pytest.approx(3.0, rel=1e-9)

    def test_no_crossover_raises(self):
        flat = TransferFunction.gain(0.5)
        with pytest.raises(ConvergenceError):
            gain_crossover(flat)

    def test_bad_range_rejected(self):
        with pytest.raises(ValidationError):
            gain_crossover(integrator_loop(), omega_min=1.0, omega_max=0.5)

    def test_first_vs_last(self):
        # Resonant bandpass H = 3 s/(s^2 + 0.2 s + 1): |H| rises through 1
        # before the resonance and falls back through 1 after it.
        tf = TransferFunction([3.0, 0.0], [1.0, 0.2, 1.0])
        first = gain_crossover(tf, 1e-3, 1e3, which="first")
        last = gain_crossover(tf, 1e-3, 1e3, which="last")
        assert first < 1.0 < last
        assert abs(tf(1j * first)) == pytest.approx(1.0, rel=1e-9)
        assert abs(tf(1j * last)) == pytest.approx(1.0, rel=1e-9)


class TestPhaseMargin:
    def test_integrator_is_90(self):
        assert phase_margin(integrator_loop()) == pytest.approx(90.0, abs=1e-6)

    def test_double_integrator_with_zero(self):
        tf = double_integrator_with_zero()
        wug = gain_crossover(tf)
        expected = math.degrees(math.atan(wug))
        assert phase_margin(tf) == pytest.approx(expected, rel=1e-6)

    def test_unstable_loop_reports_negative_margin(self):
        # L = 10 (1 + s/100) / s^2: phase ~ -180 + atan(w/100); crossover
        # near sqrt(10) where the phase is still essentially -178 deg.
        tf = TransferFunction([10.0 / 100.0, 10.0], [1.0, 0.0, 0.0])
        pm = phase_margin(tf)
        assert 0 < pm < 5.0  # nearly zero margin

    def test_phase_at(self):
        assert phase_at(integrator_loop(), 1.0) == pytest.approx(-90.0)


class TestPhaseCrossoverAndGainMargin:
    def test_third_order(self):
        tf = third_order_loop()
        wpc = phase_crossover(tf)
        # (1+jw)^3 has phase -180 at 3 atan(w) = 180 -> w = tan(60 deg) = sqrt(3)
        assert wpc == pytest.approx(math.sqrt(3.0), rel=1e-6)
        gm = gain_margin(tf)
        mag = 10.0 / (1 + 3.0) ** 1.5
        assert gm == pytest.approx(-20 * math.log10(mag), rel=1e-6)

    def test_integrator_never_crosses(self):
        with pytest.raises(ConvergenceError):
            phase_crossover(integrator_loop())


class TestStabilityMargins:
    def test_full_report(self):
        report = stability_margins(third_order_loop())
        assert report.gain_crossover_omega > 0
        assert report.phase_crossover_omega == pytest.approx(math.sqrt(3.0), rel=1e-5)
        assert not math.isnan(report.phase_margin_deg)

    def test_missing_margins_are_nan(self):
        report = stability_margins(integrator_loop())
        assert math.isnan(report.phase_crossover_omega)
        assert math.isnan(report.gain_margin_db)
        assert report.phase_margin_deg == pytest.approx(90.0, abs=1e-6)


class TestBandwidthAndPeaking:
    def test_first_order_bandwidth(self):
        tf = TransferFunction.first_order_lowpass(2.0)
        assert bandwidth_3db(tf, 1e-3, 1e3) == pytest.approx(2.0, rel=1e-6)

    def test_unity_reference(self):
        tf = TransferFunction.first_order_lowpass(2.0, dc_gain=2.0)
        bw_unity = bandwidth_3db(tf, 1e-3, 1e3, reference="unity")
        # |H| = 2/sqrt(1+(w/2)^2) = 1/sqrt(2) -> w = 2 sqrt(7)
        assert bw_unity == pytest.approx(2 * math.sqrt(7.0), rel=1e-6)

    def test_bad_reference_rejected(self):
        with pytest.raises(ValidationError):
            bandwidth_3db(TransferFunction.first_order_lowpass(1.0), reference="weird")

    def test_never_drops_raises(self):
        with pytest.raises(ConvergenceError):
            bandwidth_3db(TransferFunction.gain(1.0))

    def test_resonant_peaking(self):
        # Standard 2nd-order lowpass, zeta = 0.2 -> peak = 1/(2 zeta sqrt(1-zeta^2)).
        zeta = 0.2
        tf = TransferFunction([1.0], [1.0, 2 * zeta, 1.0])
        peak = 1.0 / (2 * zeta * math.sqrt(1 - zeta**2))
        assert peaking_db(tf, 1e-3, 1e2) == pytest.approx(20 * math.log10(peak), abs=1e-3)

    def test_monotone_response_zero_peaking(self):
        assert peaking_db(TransferFunction.first_order_lowpass(1.0), 1e-3, 1e2) == 0.0

    def test_bandwidth_skips_inband_notch(self):
        # Peaked 2nd-order system: |H| rises above DC before falling; the
        # 'last crossing' rule must return the true final -3 dB point.
        zeta = 0.2
        tf = TransferFunction([1.0], [1.0, 2 * zeta, 1.0])
        bw = bandwidth_3db(tf, 1e-3, 1e2)
        mag = abs(tf(1j * bw))
        assert mag == pytest.approx(1.0 / math.sqrt(2.0), rel=1e-6)


class TestBodePoints:
    def test_unwrapped_phase(self):
        pts = bode_points(double_integrator_with_zero(), np.logspace(-2, 2, 50))
        phases = [p.phase_deg for p in pts]
        assert phases[0] == pytest.approx(-180.0, abs=1.0)
        assert phases[-1] == pytest.approx(-90.0, abs=1.0)
        mags = [p.magnitude_db for p in pts]
        assert mags[0] > mags[-1]
