"""Tests for repro.blocks.pfd — the three detector models."""

import numpy as np
import pytest

from repro.blocks.pfd import MultiplyingPFD, SampleHoldPFD, SamplingPFD

W0 = 2 * np.pi


class TestSamplingPFD:
    def test_gain_is_sampling_rate(self):
        pfd = SamplingPFD(W0)
        assert pfd.gain == pytest.approx(1.0)  # w0/2pi with T = 1
        assert pfd.period == pytest.approx(1.0)

    def test_operator_is_rank_one_all_ones(self):
        mat = SamplingPFD(W0).operator().dense(0.3j, 2)
        assert np.allclose(mat, np.ones((5, 5)))

    def test_htm_rank(self):
        htm = SamplingPFD(W0).operator().htm(0.1j, 3)
        assert htm.numerical_rank() == 1

    def test_column_includes_gain(self):
        pfd = SamplingPFD(2 * W0)  # T = 0.5, gain = 2
        col = pfd.column_vector(1)
        assert np.allclose(col, 2.0)

    def test_offset_rotates_phases(self):
        pfd = SamplingPFD(W0, sampling_offset=0.25)
        col = pfd.column_vector(1)
        assert col[2] == pytest.approx(1.0 * np.exp(-1j * W0 * 0.25))
        row = pfd.row_vector(1)
        assert row[2] == pytest.approx(np.exp(1j * W0 * 0.25))

    def test_factorisation_consistent(self):
        pfd = SamplingPFD(W0, sampling_offset=0.1)
        order = 2
        outer = np.outer(pfd.column_vector(order), pfd.row_vector(order))
        assert np.allclose(outer, pfd.operator().dense(0.0, order))


class TestSampleHoldPFD:
    def test_hold_dc_value_is_period(self):
        pfd = SampleHoldPFD(W0)
        assert pfd.hold_transfer(0.0) == pytest.approx(pfd.period)

    def test_hold_small_s_series(self):
        pfd = SampleHoldPFD(W0)
        s = 1e-10
        assert pfd.hold_transfer(s) == pytest.approx(pfd.period, rel=1e-8)

    def test_hold_nulls_at_harmonics(self):
        """ZOH has transmission zeros at every non-zero multiple of w0."""
        pfd = SampleHoldPFD(W0)
        for k in (1, 2, 3):
            assert abs(pfd.hold_transfer(1j * k * W0)) < 1e-12

    def test_overall_dc_gain_unity(self):
        """(1/T) sampling weight times hold T: baseband DC transfer is 1."""
        pfd = SampleHoldPFD(W0)
        mat = pfd.operator().dense(1e-9j, 2)
        assert mat[2, 2] == pytest.approx(1.0, rel=1e-6)

    def test_operator_rank_one(self):
        mat = SampleHoldPFD(W0).operator().dense(0.2j, 3)
        svals = np.linalg.svd(mat, compute_uv=False)
        assert svals[1] < 1e-10 * svals[0]

    def test_column_vector_matches_operator(self):
        pfd = SampleHoldPFD(W0)
        s = 0.17j
        order = 2
        outer = np.outer(pfd.column_vector(order, s), pfd.row_vector(order))
        assert np.allclose(outer, pfd.operator().dense(s, order))

    def test_hold_adds_phase_lag(self):
        """The half-period delay of the ZOH shows up as linear phase."""
        pfd = SampleHoldPFD(W0)
        omega = 0.2 * W0
        phase = np.angle(pfd.hold_transfer(1j * omega))
        assert phase == pytest.approx(-omega * pfd.period / 2.0, rel=1e-6)

    def test_vectorized_hold(self):
        out = SampleHoldPFD(W0).hold_transfer(1j * np.array([0.1, 0.2]))
        assert out.shape == (2,)


class TestMultiplyingPFD:
    def test_operator_diagonal_constant(self):
        mat = MultiplyingPFD(W0, k_pd=3.0).operator().dense(0.5j, 2)
        assert np.allclose(mat, 3.0 * np.eye(5))

    def test_gain(self):
        assert MultiplyingPFD(W0, k_pd=0.5).gain == 0.5

    def test_lti_so_no_conversion(self):
        htm = MultiplyingPFD(W0).operator().htm(0.1j, 2)
        assert htm.is_diagonal()
