"""Tests for repro.pll.acquisition — lock acquisition measurements."""

import numpy as np
import pytest

from repro._errors import ValidationError
from repro.pll.acquisition import (
    acquisition_sweep,
    measure_acquisition,
    settling_time_estimate,
    slew_limited_estimate,
)
from repro.pll.design import design_typical_loop

W0 = 2 * np.pi


@pytest.fixture(scope="module")
def pll():
    return design_typical_loop(omega0=W0, omega_ug=0.1 * W0)


class TestMeasureAcquisition:
    def test_zero_offset_locks_immediately(self, pll):
        result = measure_acquisition(pll, 0.0, max_cycles=100)
        assert result.locked
        assert result.lock_cycle == 0
        assert result.peak_error == 0.0

    def test_small_offset_locks(self, pll):
        result = measure_acquisition(pll, 0.01, max_cycles=500)
        assert result.locked
        assert result.lock_time > 0
        assert result.peak_error > 0

    def test_lock_time_grows_with_offset(self, pll):
        results = acquisition_sweep(pll, [0.001, 0.01, 0.1], max_cycles=800)
        assert all(r.locked for r in results)
        times = [r.lock_time for r in results]
        assert times[0] < times[1] < times[2]

    def test_gross_offset_reports_unlocked(self, pll):
        result = measure_acquisition(pll, 1.5, max_cycles=100)
        assert not result.locked
        assert np.isnan(result.lock_time)

    def test_confirm_cycles_reject_ringing(self, pll):
        """Requiring a long confirmation span cannot shorten the lock time."""
        quick = measure_acquisition(pll, 0.05, confirm_cycles=3, max_cycles=600)
        strict = measure_acquisition(pll, 0.05, confirm_cycles=50, max_cycles=600)
        assert strict.lock_time >= quick.lock_time

    def test_threshold_validated(self, pll):
        with pytest.raises(ValidationError):
            measure_acquisition(pll, 0.01, threshold_fraction=-1.0)


class TestEstimates:
    def test_slew_estimate_linear_in_offset(self, pll):
        t1 = slew_limited_estimate(pll, 0.01)
        t2 = slew_limited_estimate(pll, 0.02)
        assert t2 == pytest.approx(2 * t1)

    def test_settling_estimate_matches_simulation_order(self, pll):
        """The small-signal settling estimate is the right order for small
        offsets (acquisition dominated by linear settling)."""
        estimate = settling_time_estimate(pll, settle_fraction=1e-3)
        measured = measure_acquisition(
            pll, 0.005, threshold_fraction=5e-6, max_cycles=600
        )
        assert measured.locked
        assert 0.2 * estimate < measured.lock_time < 3.0 * estimate

    def test_settling_fraction_validated(self, pll):
        with pytest.raises(ValidationError):
            settling_time_estimate(pll, settle_fraction=2.0)

    def test_unstable_loop_has_no_settling_time(self):
        hot = design_typical_loop(omega0=W0, omega_ug=0.3 * W0)
        with pytest.raises(ValidationError):
            settling_time_estimate(hot)
