"""Multi-process hooks of the grid-eval cache (repro.core.memo).

The campaign engine ships cache configuration to pool workers and
aggregates per-worker counter deltas; these tests pin the two contracts
that makes safe: ``snapshot()`` is picklable plain data, and
``configure()`` is idempotent (safe as a pool initializer).
"""

import pickle

import numpy as np

from repro.core.grid import FrequencyGrid
from repro.core.memo import (
    GridEvalCache,
    cache_snapshot,
    clear_cache,
    configure,
    grid_cache,
)
from repro.core.operators import LTIOperator
from repro.lti.transfer import TransferFunction


def _warm(cache_or_none=None):
    """Put one real entry into the process-wide cache."""
    op = LTIOperator(TransferFunction([1.0], [1.0, 1.0]), omega0=2 * np.pi)
    grid = FrequencyGrid.baseband(2 * np.pi, points=8)
    op.dense_grid(grid.s, 2)


class TestSnapshot:
    def test_snapshot_is_plain_and_picklable(self):
        clear_cache()
        _warm()
        snap = cache_snapshot()
        assert snap["entries"] >= 1 and snap["misses"] >= 1
        assert snap["enabled"] is True
        assert snap["maxsize"] == grid_cache.maxsize
        restored = pickle.loads(pickle.dumps(snap))
        assert restored == snap
        # Strictly builtin types: JSON-able too.
        assert all(
            v is None or isinstance(v, (bool, int, float)) for v in snap.values()
        ), snap

    def test_snapshot_deltas_track_activity(self):
        clear_cache()
        before = cache_snapshot()
        _warm()
        _warm()  # second pass hits
        after = cache_snapshot()
        assert after["misses"] - before["misses"] >= 1
        assert after["hits"] - before["hits"] >= 1


class TestConfigureIdempotent:
    def test_reapplying_current_config_is_a_noop(self):
        cache = GridEvalCache(maxsize=4)
        for key in range(4):
            cache.fetch(
                _FakeOp(key), np.array([1j]), 1, lambda s, o: np.ones(1)
            )
        assert cache.stats()["entries"] == 4
        cache.configure(enabled=True, maxsize=4)  # same values: nothing evicted
        assert cache.stats()["entries"] == 4
        assert cache.stats()["hits"] == 0 and cache.stats()["misses"] == 4

    def test_shrink_still_evicts(self):
        cache = GridEvalCache(maxsize=4)
        for key in range(4):
            cache.fetch(
                _FakeOp(key), np.array([1j]), 1, lambda s, o: np.ones(1)
            )
        cache.configure(maxsize=2)
        assert cache.stats()["entries"] == 2

    def test_module_configure_roundtrip(self):
        original = cache_snapshot()
        try:
            configure(enabled=original["enabled"], maxsize=original["maxsize"])
            assert cache_snapshot()["maxsize"] == original["maxsize"]
        finally:
            configure(enabled=original["enabled"], maxsize=original["maxsize"])


class _FakeOp:
    """Minimal operator stand-in with a content fingerprint."""

    def __init__(self, key):
        self._key = key

    def fingerprint(self):
        return ("fake", self._key)
