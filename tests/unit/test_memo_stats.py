"""Grid-cache accounting: byte-size estimates and eviction counters.

PR 3 extended :class:`~repro.core.memo.GridEvalCache` beyond entry counts:
``stats()``/``snapshot()`` now report a ``bytes`` estimate (summed logical
``nbytes`` of the live entries) and an ``evictions`` counter, so campaign
telemetry can say how much memory the per-worker caches actually held.
"""

import numpy as np

from repro.core.grid import FrequencyGrid
from repro.core.memo import GridEvalCache
from repro.core.operators import LTIOperator
from repro.lti.transfer import TransferFunction


def _op(pole: float) -> LTIOperator:
    return LTIOperator(TransferFunction([1.0], [1.0, pole]), 2 * np.pi)


def _s(points: int = 8) -> np.ndarray:
    return FrequencyGrid.baseband(2 * np.pi, points=points).s


def test_bytes_tracks_stored_entries_exactly():
    cache = GridEvalCache(maxsize=8)
    s, order = _s(), 3
    op = _op(1.0)
    block = cache.fetch(op, s, order, op._dense_grid)
    stats = cache.stats()
    assert stats["bytes"] == int(np.asarray(block).nbytes) > 0
    assert stats["entries"] == 1 and stats["evictions"] == 0

    cache.fetch(op, s, order, op._dense_grid)  # hit: no growth
    assert cache.stats()["bytes"] == stats["bytes"]

    other = _op(2.0)
    cache.fetch(other, s, order, other._dense_grid)
    assert cache.stats()["bytes"] == 2 * stats["bytes"]


def test_eviction_decrements_bytes_and_counts():
    cache = GridEvalCache(maxsize=2)
    s, order = _s(), 3
    ops = [_op(float(p)) for p in (1.0, 2.0, 3.0, 4.0)]
    per_entry = None
    for op in ops:
        block = cache.fetch(op, s, order, op._dense_grid)
        per_entry = int(np.asarray(block).nbytes)
    stats = cache.stats()
    assert stats["entries"] == 2
    assert stats["evictions"] == 2
    assert stats["bytes"] == 2 * per_entry
    assert stats["misses"] == 4


def test_configure_shrink_evicts_and_reaccounts():
    cache = GridEvalCache(maxsize=8)
    s, order = _s(), 3
    for pole in (1.0, 2.0, 3.0):
        op = _op(pole)
        cache.fetch(op, s, order, op._dense_grid)
    before = cache.stats()
    assert before["entries"] == 3
    cache.configure(maxsize=1)
    after = cache.stats()
    assert after["entries"] == 1
    assert after["evictions"] == 2
    assert after["bytes"] == before["bytes"] // 3


def test_clear_resets_byte_and_eviction_counters():
    cache = GridEvalCache(maxsize=1)
    s, order = _s(), 3
    for pole in (1.0, 2.0):
        op = _op(pole)
        cache.fetch(op, s, order, op._dense_grid)
    cache.clear()
    stats = cache.stats()
    assert stats == {
        "hits": 0, "misses": 0, "evictions": 0, "expirations": 0,
        "entries": 0, "bytes": 0, "maxsize": 1,
        "max_bytes": None, "ttl_seconds": None,
    }


def test_fetch_emits_obs_counters_when_enabled():
    from repro.obs import spans as obs

    was_enabled = obs.enabled()
    obs.enable()
    obs.reset()
    try:
        cache = GridEvalCache(maxsize=4)
        s, order = _s(), 3
        op = _op(1.0)
        block = cache.fetch(op, s, order, op._dense_grid)
        cache.fetch(op, s, order, op._dense_grid)
        counters = obs.snapshot()["counters"]
        assert counters["memo.miss"]["value"] == 1.0
        assert counters["memo.hit"]["value"] == 1.0
        assert (
            counters["memo.bytes_stored"]["value"]
            == float(np.asarray(block).nbytes)
        )
    finally:
        (obs.enable if was_enabled else obs.disable)()
        obs.reset()


def test_snapshot_carries_bytes_and_evictions():
    cache = GridEvalCache(maxsize=4)
    s, order = _s(), 3
    op = _op(1.0)
    cache.fetch(op, s, order, op._dense_grid)
    snap = cache.snapshot()
    assert snap["bytes"] > 0
    assert snap["evictions"] == 0
    assert snap["enabled"] is True
    # picklable/JSON-safe builtins only
    import json

    json.dumps(snap)
