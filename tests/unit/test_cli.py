"""Tests for repro.cli — the loop-analysis report command."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.ratio == 0.1
        assert args.separation == 4.0
        assert not args.plots and not args.symbolic

    def test_custom_values(self):
        args = build_parser().parse_args(
            ["--ratio", "0.2", "--separation", "6", "--leakage", "1e-6"]
        )
        assert args.ratio == 0.2
        assert args.separation == 6.0
        assert args.leakage == 1e-6


class TestMain:
    def test_basic_report(self, capsys):
        assert main(["--ratio", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "LTI" in out and "effective" in out
        assert "Floquet" in out
        assert "z-domain stable: True" in out

    def test_unstable_loop_reported(self, capsys):
        assert main(["--ratio", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "z-domain stable: False" in out
        assert "Floquet stable: False" in out

    def test_symbolic_section(self, capsys):
        assert main(["--ratio", "0.05", "--symbolic"]) == 0
        out = capsys.readouterr().out
        assert "coth" in out
        assert "A(s)" in out

    def test_leakage_section(self, capsys):
        assert main(["--ratio", "0.05", "--leakage", "1e-6"]) == 0
        out = capsys.readouterr().out
        assert "dBc" in out
        assert "static phase offset" in out

    def test_plots_section(self, capsys):
        assert main(["--ratio", "0.1", "--plots"]) == 0
        out = capsys.readouterr().out
        assert "|A| (a) vs |lambda| (L)" in out
        assert "L effective lambda" in out

    def test_bad_design_is_clean_error(self, capsys):
        # separation <= 1 is a DesignError -> exit code 2, message on stderr.
        assert main(["--separation", "0.5"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_floquet_matches_zdomain_in_output(self, capsys):
        main(["--ratio", "0.15"])
        out = capsys.readouterr().out
        z_line = next(line for line in out.splitlines() if line.startswith("z-domain closed"))
        f_line = next(line for line in out.splitlines() if line.startswith("Floquet multipliers"))
        # The printed (rounded) pole sets agree.
        z_vals = z_line.split(":", 1)[1]
        f_vals = f_line.split(":", 1)[1]
        assert z_vals.strip() == f_vals.strip()
