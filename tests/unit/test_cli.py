"""Tests for repro.cli — the loop-analysis report and campaign commands."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.ratio == 0.1
        assert args.separation == 4.0
        assert not args.plots and not args.symbolic

    def test_custom_values(self):
        args = build_parser().parse_args(
            ["--ratio", "0.2", "--separation", "6", "--leakage", "1e-6"]
        )
        assert args.ratio == 0.2
        assert args.separation == 6.0
        assert args.leakage == 1e-6


class TestMain:
    def test_basic_report(self, capsys):
        assert main(["--ratio", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "LTI" in out and "effective" in out
        assert "Floquet" in out
        assert "z-domain stable: True" in out

    def test_unstable_loop_reported(self, capsys):
        assert main(["--ratio", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "z-domain stable: False" in out
        assert "Floquet stable: False" in out

    def test_symbolic_section(self, capsys):
        assert main(["--ratio", "0.05", "--symbolic"]) == 0
        out = capsys.readouterr().out
        assert "coth" in out
        assert "A(s)" in out

    def test_leakage_section(self, capsys):
        assert main(["--ratio", "0.05", "--leakage", "1e-6"]) == 0
        out = capsys.readouterr().out
        assert "dBc" in out
        assert "static phase offset" in out

    def test_plots_section(self, capsys):
        assert main(["--ratio", "0.1", "--plots"]) == 0
        out = capsys.readouterr().out
        assert "|A| (a) vs |lambda| (L)" in out
        assert "L effective lambda" in out

    def test_bad_design_is_clean_error(self, capsys):
        # separation <= 1 is a DesignError -> exit code 2, message on stderr.
        assert main(["--separation", "0.5"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_floquet_matches_zdomain_in_output(self, capsys):
        main(["--ratio", "0.15"])
        out = capsys.readouterr().out
        z_line = next(line for line in out.splitlines() if line.startswith("z-domain closed"))
        f_line = next(line for line in out.splitlines() if line.startswith("Floquet multipliers"))
        # The printed (rounded) pole sets agree.
        z_vals = z_line.split(":", 1)[1]
        f_vals = f_line.split(":", 1)[1]
        assert z_vals.strip() == f_vals.strip()


@pytest.mark.campaign
class TestCampaignCommand:
    @pytest.fixture
    def spec_path(self, tmp_path):
        path = tmp_path / "map.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli-map",
                    "task": "stability_limit",
                    "defaults": {"tol": 5e-3},
                    "space": {"kind": "grid", "axes": {"separation": [3.0, 4.0]}},
                }
            )
        )
        return path

    def test_run_then_status(self, spec_path, capsys):
        out_path = spec_path.parent / "map.results.jsonl"
        assert main(["campaign", "run", str(spec_path), "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "2 ok" in out and str(out_path) in out

        assert main(["campaign", "status", str(out_path)]) == 0
        status_out = capsys.readouterr().out
        assert "cli-map" in status_out and "complete: True" in status_out

    def test_default_out_path_next_to_spec(self, spec_path, capsys):
        assert main(["campaign", "run", str(spec_path), "--quiet"]) == 0
        assert (spec_path.parent / "map.results.jsonl").exists()

    def test_status_of_partial_campaign_exits_one(self, spec_path, capsys):
        out_path = spec_path.parent / "partial.jsonl"
        main(["campaign", "run", str(spec_path), "--out", str(out_path), "--quiet"])
        capsys.readouterr()
        # Drop one point record to simulate an interrupted run.
        lines = out_path.read_text().splitlines()
        points = [l for l in lines if '"kind":"point"' in l]
        out_path.write_text("\n".join([lines[0], points[0]]) + "\n")

        assert main(["campaign", "status", str(out_path)]) == 1
        assert "1 pending" in capsys.readouterr().out

        # ...and resume finishes it.
        assert main(["campaign", "resume", str(out_path), "--quiet"]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", str(out_path)]) == 0

    def test_run_refuses_existing_store_without_overwrite(self, spec_path, capsys):
        out_path = spec_path.parent / "dup.jsonl"
        main(["campaign", "run", str(spec_path), "--out", str(out_path), "--quiet"])
        capsys.readouterr()
        assert main(["campaign", "run", str(spec_path), "--out", str(out_path)]) == 2
        assert "already exists" in capsys.readouterr().err
        assert (
            main(
                ["campaign", "run", str(spec_path), "--out", str(out_path),
                 "--overwrite", "--quiet"]
            )
            == 0
        )

    def test_missing_or_invalid_spec_is_clean_error(self, tmp_path, capsys):
        assert main(["campaign", "run", str(tmp_path / "nope.json")]) == 2
        assert "no campaign spec" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["campaign", "run", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_tasks_listing(self, capsys):
        assert main(["campaign", "tasks"]) == 0
        out = capsys.readouterr().out
        for name in ("margins", "stability_limit", "standard_metrics", "band_map"):
            assert name in out

    def test_campaign_flags_do_not_disturb_report_defaults(self):
        args = build_parser().parse_args([])
        assert args.ratio == 0.1 and getattr(args, "command", None) is None
