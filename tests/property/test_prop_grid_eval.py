"""Property: batched ``dense_grid`` equals per-point ``dense`` for every
operator class, including randomly nested composites and feedback closures
driven toward singularity."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memo import clear_cache
from repro.core.operators import (
    FeedbackOperator,
    IdentityOperator,
    IsfIntegrationOperator,
    LTIOperator,
    MultiplicationOperator,
    ParallelOperator,
    SamplingOperator,
    ScaledOperator,
    SeriesOperator,
)
from repro.lti.transfer import TransferFunction
from repro.signals.fourier import FourierSeries
from repro.signals.isf import ImpulseSensitivity

W0 = 2 * np.pi

coeff = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)


@st.composite
def lti_operators(draw):
    pole = draw(st.floats(0.2, 4.0))
    gain = draw(st.floats(-3.0, 3.0))
    return LTIOperator(TransferFunction([gain], [1.0, pole]), W0)


@st.composite
def primitive_operators(draw):
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return IdentityOperator(W0)
    if kind == 1:
        return draw(lti_operators())
    if kind == 2:
        order = draw(st.integers(0, 2))
        coeffs = [
            complex(draw(coeff), draw(coeff)) for _ in range(2 * order + 1)
        ]
        return MultiplicationOperator(FourierSeries(coeffs, W0))
    if kind == 3:
        return SamplingOperator(W0, offset=draw(st.floats(0.0, 0.4)))
    order = draw(st.integers(0, 2))
    coeffs = [complex(draw(coeff), draw(coeff)) for _ in range(2 * order + 1)]
    return IsfIntegrationOperator(ImpulseSensitivity.from_coefficients(coeffs, W0))


@st.composite
def operator_trees(draw, depth=2):
    """Random operator expression trees over the primitive pool."""
    if depth == 0 or draw(st.booleans()):
        return draw(primitive_operators())
    kind = draw(st.integers(0, 2))
    left = draw(operator_trees(depth=depth - 1))
    right = draw(operator_trees(depth=depth - 1))
    if kind == 0:
        return SeriesOperator(left, right)
    if kind == 1:
        return ParallelOperator(left, right)
    return ScaledOperator(left, complex(draw(coeff), draw(coeff)))


@st.composite
def s_grids(draw):
    """Laplace grids with positive real part — clear of integrator poles."""
    n = draw(st.integers(1, 6))
    return np.array(
        [
            complex(draw(st.floats(0.05, 1.5)), draw(st.floats(-3.0, 3.0)))
            for _ in range(n)
        ]
    )


def _assert_grid_matches_scalar(op, s_arr, order, rtol=1e-9):
    clear_cache()
    stack = np.asarray(op.dense_grid(s_arr, order))
    assert stack.shape == (s_arr.size, 2 * order + 1, 2 * order + 1)
    for i in range(s_arr.size):
        ref = op.dense(complex(s_arr[i]), order)
        scale = max(float(np.max(np.abs(ref))), 1e-300)
        assert np.allclose(stack[i], ref, rtol=rtol, atol=rtol * scale)


class TestDenseGridProperty:
    @given(op=primitive_operators(), s=s_grids(), order=st.integers(0, 3))
    @settings(max_examples=80, deadline=None)
    def test_primitives(self, op, s, order):
        _assert_grid_matches_scalar(op, s, order)

    @given(op=operator_trees(), s=s_grids(), order=st.integers(0, 2))
    @settings(max_examples=60, deadline=None)
    def test_nested_composites(self, op, s, order):
        _assert_grid_matches_scalar(op, s, order)

    @given(op=operator_trees(depth=1), s=s_grids(), order=st.integers(0, 2))
    @settings(max_examples=40, deadline=None)
    def test_feedback_closures(self, op, s, order):
        closed = FeedbackOperator(op)
        # Skip draws where I + G is effectively singular at some grid point:
        # both evaluation paths are then meaningless amplifications of
        # round-off rather than comparable numbers.
        size = 2 * order + 1
        for si in s:
            g = op.dense(complex(si), order)
            if np.linalg.cond(np.eye(size) + g) > 1e8:
                return
        _assert_grid_matches_scalar(closed, s, order)

    @given(
        gain=st.floats(-0.999, 4.0),
        eps=st.floats(1e-6, 1e-2),
        s=s_grids(),
        order=st.integers(0, 2),
    )
    @settings(max_examples=40, deadline=None)
    def test_feedback_near_singular_closure(self, gain, eps, s, order):
        """Closures approaching singularity: I + G with an eigenvalue at
        ``eps`` — both paths must still agree (same stacked solve)."""
        # G = (eps - 1) * I makes I + G = eps * I: near-singular but exactly
        # conditioned, so the comparison stays meaningful at any eps.
        near = ScaledOperator(IdentityOperator(W0), eps - 1.0)
        _assert_grid_matches_scalar(FeedbackOperator(near), s, order)
        # And a generically-structured loop pushed toward its critical gain.
        loop = ScaledOperator(SamplingOperator(W0), gain * 2 * np.pi / W0)
        _assert_grid_matches_scalar(FeedbackOperator(loop), s, order)
