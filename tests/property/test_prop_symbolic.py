"""Property-based tests for the symbolic expression tree."""

import cmath

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import Add, Mul, Num, Pow, Sym, coth_of

small_complex = st.builds(
    complex,
    st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
    st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
)


def expressions(max_depth=3):
    """Recursive strategy over the expression grammar."""
    leaves = st.one_of(small_complex.map(Num), st.just(Sym("s")))

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda ab: Add.of(*ab)),
            st.tuples(children, children).map(lambda ab: Mul.of(*ab)),
            st.tuples(children, st.integers(1, 3)).map(lambda be: Pow.of(be[0], be[1])),
        )

    return st.recursive(leaves, extend, max_leaves=8)


ENV = st.builds(
    dict,
    s=st.builds(
        complex,
        st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
        st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
    ),
)


class TestAlgebraicProperties:
    @given(a=expressions(), b=expressions(), env=ENV)
    @settings(max_examples=60, deadline=None)
    def test_addition_semantics(self, a, b, env):
        lhs = (a + b).evaluate(env)
        rhs = a.evaluate(env) + b.evaluate(env)
        if not (cmath.isfinite(lhs) and cmath.isfinite(rhs)):
            return
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)

    @given(a=expressions(), b=expressions(), env=ENV)
    @settings(max_examples=60, deadline=None)
    def test_multiplication_semantics(self, a, b, env):
        lhs = (a * b).evaluate(env)
        rhs = a.evaluate(env) * b.evaluate(env)
        if not (cmath.isfinite(lhs) and cmath.isfinite(rhs)):
            return
        assert lhs == pytest.approx(rhs, rel=1e-8, abs=1e-8)

    @given(a=expressions(), env=ENV)
    @settings(max_examples=40, deadline=None)
    def test_negation_inverse(self, a, env):
        value = a.evaluate(env)
        if not cmath.isfinite(value):
            return
        assert (a - a).evaluate(env) == pytest.approx(0.0, abs=1e-8)

    @given(a=expressions(), k=st.integers(1, 3), env=ENV)
    @settings(max_examples=40, deadline=None)
    def test_power_semantics(self, a, k, env):
        base = a.evaluate(env)
        if not cmath.isfinite(base) or abs(base) > 10:
            return
        assert (a**k).evaluate(env) == pytest.approx(base**k, rel=1e-8, abs=1e-8)

    @given(a=expressions())
    @settings(max_examples=40, deadline=None)
    def test_render_is_nonempty_and_balanced(self, a):
        text = a.render()
        assert text
        assert text.count("(") == text.count(")")

    @given(a=expressions())
    @settings(max_examples=40, deadline=None)
    def test_latex_braces_balanced(self, a):
        tex = a.latex()
        assert tex.count("{") == tex.count("}")

    @given(env=ENV)
    @settings(max_examples=30, deadline=None)
    def test_coth_identity(self, env):
        """coth(s)^2 - 1 == csch(s)^2 wherever both are finite."""
        s = env["s"]
        if abs(s) < 0.1:
            return
        expr = coth_of(Sym("s")) ** 2 - 1
        expected = 1.0 / cmath.sinh(s) ** 2
        if not cmath.isfinite(expected):
            return
        assert expr.evaluate(env) == pytest.approx(expected, rel=1e-8, abs=1e-10)
