"""Property-based tests: aliasing-sum identities and exact state stepping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aliasing import AliasedSum, elementary_alias_sum, truncated_alias_sum
from repro.lti.rational import RationalFunction
from repro.lti.statespace import StateSpace
from repro.lti.transfer import TransferFunction

W0 = 2 * np.pi


@st.composite
def stable_strictly_proper(draw):
    """Random strictly proper rational function with poles in the LHP."""
    n_poles = draw(st.integers(2, 4))
    poles = []
    for _ in range(n_poles):
        re = draw(st.floats(min_value=-5.0, max_value=-0.3, allow_nan=False))
        im = draw(st.floats(min_value=-4.0, max_value=4.0, allow_nan=False))
        poles.append(complex(re, im))
    n_zeros = draw(st.integers(0, n_poles - 2))
    zeros = [
        complex(draw(st.floats(-4.0, -0.1, allow_nan=False)), 0.0)
        for _ in range(n_zeros)
    ]
    gain = draw(st.floats(min_value=0.2, max_value=3.0, allow_nan=False))
    return RationalFunction.from_zpk(zeros, poles, gain)


class TestAliasingProperties:
    @given(f=stable_strictly_proper(), w=st.floats(0.02, 0.48))
    @settings(max_examples=30, deadline=None)
    def test_closed_form_matches_truncation(self, f, w):
        alias = AliasedSum.of(f, W0)
        s = 1j * w * W0
        closed = alias(s)
        coarse = truncated_alias_sum(f, s, W0, 1000)
        fine = truncated_alias_sum(f, s, W0, 4000)
        # The truncated tail is an absolute O(1/M) error, so instead of a
        # fixed relative tolerance we require the closed form to sit closer
        # to the fine truncation than the coarse one does (i.e. it lies on
        # the convergence trajectory), with floating-point slack.
        err_closed = abs(closed - fine)
        err_coarse = abs(coarse - fine)
        # When the tail cancels (conjugate poles) both errors sit at
        # round-off; the slack must cover that floor while still flagging
        # any genuine divergence (which shows up orders of magnitude above).
        slack = 1e-8 * max(abs(closed), abs(fine), 1.0)
        assert err_closed <= err_coarse + slack

    @given(f=stable_strictly_proper(), w=st.floats(0.02, 0.48))
    @settings(max_examples=30, deadline=None)
    def test_periodicity(self, f, w):
        alias = AliasedSum.of(f, W0)
        s = 1j * w * W0 + 0.1
        a = alias(s)
        b = alias(s + 1j * W0)
        assert a == pytest.approx(b, rel=1e-7, abs=1e-10)

    @given(order=st.integers(1, 6), x_re=st.floats(0.05, 2.0), x_im=st.floats(-2.0, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_elementary_sum_shift_invariance(self, order, x_re, x_im):
        x = complex(x_re, x_im)
        a = elementary_alias_sum(x, W0, order)
        b = elementary_alias_sum(x + 1j * W0, W0, order)
        assert a == pytest.approx(b, rel=1e-8, abs=1e-12)

    @given(order=st.integers(2, 5), x_re=st.floats(0.05, 2.0))
    @settings(max_examples=30, deadline=None)
    def test_elementary_sum_brute_force(self, order, x_re):
        x = complex(x_re, 0.13)
        closed = elementary_alias_sum(x, W0, order)
        brute = sum(
            1.0 / (x + 1j * m * W0) ** order for m in range(-3000, 3001)
        )
        assert closed == pytest.approx(brute, rel=1e-3)


class TestStateSpaceProperties:
    @st.composite
    @staticmethod
    def stable_siso(draw):
        poles = []
        for _ in range(draw(st.integers(1, 3))):
            poles.append(draw(st.floats(min_value=-4.0, max_value=-0.2, allow_nan=False)))
        gain = draw(st.floats(min_value=0.5, max_value=2.0, allow_nan=False))
        rf = RationalFunction.from_zpk([], [complex(p) for p in poles], gain)
        return TransferFunction.from_rational(rf)

    @given(tf=stable_siso(), dt1=st.floats(0.01, 1.0), dt2=st.floats(0.01, 1.0), u=st.floats(-2.0, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_semigroup_property(self, tf, dt1, dt2, u):
        """step(dt1+dt2) == step(dt2) after step(dt1) for held input."""
        ss = StateSpace.from_transfer_function(tf)
        x0 = np.linspace(0.1, 0.3, ss.order)
        x_direct, _ = ss.step_held_input(x0, u, dt1 + dt2)
        x_mid, _ = ss.step_held_input(x0, u, dt1)
        x_chained, _ = ss.step_held_input(x_mid, u, dt2)
        assert np.allclose(x_direct, x_chained, rtol=1e-9, atol=1e-12)

    @given(tf=stable_siso(), u=st.floats(-2.0, 2.0))
    @settings(max_examples=30, deadline=None)
    def test_steady_state_is_dc_gain(self, tf, u):
        ss = StateSpace.from_transfer_function(tf)
        x = np.zeros(ss.order)
        x, y = ss.step_held_input(x, u, 200.0)
        assert y == pytest.approx(float(ss.dc_gain().real) * u, rel=1e-6, abs=1e-9)

    @given(tf=stable_siso(), s_im=st.floats(0.1, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_realization_matches_transfer(self, tf, s_im):
        ss = StateSpace.from_transfer_function(tf)
        s = 1j * s_im
        assert ss.transfer_at(s) == pytest.approx(tf(s), rel=1e-9)
