"""Property-based tests for Fourier series and HTM structure invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.htm import HTM
from repro.core.operators import LTIOperator, MultiplicationOperator, SeriesOperator
from repro.core.rank_one import smw_identity_check
from repro.lti.transfer import TransferFunction
from repro.signals.fourier import FourierSeries

W0 = 2 * np.pi

coeff = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)


@st.composite
def fourier_series(draw, max_order=2):
    order = draw(st.integers(0, max_order))
    coeffs = [complex(draw(coeff), draw(coeff)) for _ in range(2 * order + 1)]
    return FourierSeries(coeffs, W0)


@st.composite
def complex_vectors(draw, order=2):
    n = 2 * order + 1
    return np.array(
        [complex(draw(coeff), draw(coeff)) for _ in range(n)], dtype=complex
    )


class TestFourierProperties:
    @given(a=fourier_series(), b=fourier_series(), t=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_product_is_pointwise(self, a, b, t):
        assert (a * b)(t) == pytest.approx(a(t) * b(t), rel=1e-9, abs=1e-9)

    @given(a=fourier_series(), t=st.floats(0.0, 1.0), tau=st.floats(-1.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_delay_property(self, a, t, tau):
        assert a.delayed(tau)(t) == pytest.approx(a(t - tau), rel=1e-9, abs=1e-9)

    @given(a=fourier_series())
    @settings(max_examples=40, deadline=None)
    def test_parseval(self, a):
        samples = a.sample(512)
        mean_square = float(np.mean(np.abs(samples) ** 2))
        assert mean_square == pytest.approx(a.power(), rel=1e-6, abs=1e-9)

    @given(a=fourier_series(), t=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_conjugate(self, a, t):
        assert a.conjugate()(t) == pytest.approx(np.conj(a(t)), rel=1e-9, abs=1e-9)

    @given(a=fourier_series())
    @settings(max_examples=40, deadline=None)
    def test_real_signal_criterion(self, a):
        symmetric = a + a.conjugate()
        assert symmetric.is_real_signal(tol=1e-9)


class TestHTMStructure:
    @given(a=fourier_series(max_order=2))
    @settings(max_examples=40, deadline=None)
    def test_multiplication_operator_toeplitz(self, a):
        mat = MultiplicationOperator(a).dense(0.3j, 3)
        # Constant along diagonals.
        for k in range(-3, 4):
            diag = np.diagonal(mat, offset=-k)
            assert np.allclose(diag, diag[0])

    @given(s_im=st.floats(0.01, 0.45))
    @settings(max_examples=20, deadline=None)
    def test_lti_embedding_multiplicative(self, s_im):
        """Embedding respects products: HTM(H1*H2) = HTM(H1) @ HTM(H2)."""
        h1 = TransferFunction([1.0], [1.0, 1.0])
        h2 = TransferFunction([2.0], [1.0, 3.0])
        s = 1j * s_im * W0
        lhs = LTIOperator(h1 * h2, W0).dense(s, 2)
        rhs = LTIOperator(h1, W0).dense(s, 2) @ LTIOperator(h2, W0).dense(s, 2)
        assert np.allclose(lhs, rhs)

    @given(a=fourier_series(max_order=1), b=fourier_series(max_order=1))
    @settings(max_examples=30, deadline=None)
    def test_multiplication_operators_commute_like_signals(self, a, b):
        """p(t) q(t) = q(t) p(t): central blocks of the Toeplitz products agree."""
        size = 9
        ab = (a * b).toeplitz(size)
        ba = (b * a).toeplitz(size)
        assert np.allclose(ab, ba)

    @given(col=complex_vectors(), row=complex_vectors())
    @settings(max_examples=60, deadline=None)
    def test_smw_identity(self, col, row):
        lam = complex(row @ col)
        if abs(1.0 + lam) < 1e-3:
            return  # too close to the singular manifold for a clean check
        assert smw_identity_check(col, row) < 1e-9 * max(
            1.0, float(np.max(np.abs(np.outer(col, row))))
        )

    @given(col=complex_vectors())
    @settings(max_examples=30, deadline=None)
    def test_rank_one_htm_rank(self, col):
        if np.max(np.abs(col)) < 1e-6:
            return
        htm = HTM(np.outer(col, np.conj(col)), W0)
        assert htm.numerical_rank() == 1


class TestOperatorAlgebraProperties:
    @given(s_im=st.floats(0.01, 0.45), order=st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_series_associative(self, s_im, order):
        s = 1j * s_im * W0
        h1 = LTIOperator(TransferFunction([1.0], [1.0, 1.0]), W0)
        h2 = LTIOperator(TransferFunction([1.0], [1.0, 2.0]), W0)
        mult = MultiplicationOperator(FourierSeries([0.2, 1.0, 0.2], W0))
        left = SeriesOperator(SeriesOperator(h1, h2), mult).dense(s, order)
        right = SeriesOperator(h1, SeriesOperator(h2, mult)).dense(s, order)
        assert np.allclose(left, right)
