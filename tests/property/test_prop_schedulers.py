"""Property: every scheduler produces the same record set for a campaign.

The serial path is the oracle; the pool and lease schedulers are
allowed to differ only in *how* points reach terminal records — never in
the records themselves (id, status, metrics, params), modulo ordering
and per-run incidentals (elapsed, worker, tracebacks, batch tags).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (
    CampaignSpec,
    ExecutionPolicy,
    ListSpace,
    ResultStore,
    run_campaign,
)
from repro.campaign.lease import run_worker


@st.composite
def small_point_lists(draw):
    """1-7 unique design points over the useful region (some may fail)."""
    n = draw(st.integers(min_value=1, max_value=7))
    ratios = draw(
        st.lists(
            st.floats(min_value=0.02, max_value=0.3),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    separations = draw(
        st.lists(
            st.floats(min_value=2.0, max_value=9.0), min_size=n, max_size=n
        )
    )
    return [
        {"ratio": r, "separation": s} for r, s in zip(ratios, separations)
    ]


def _essentials(records):
    """The scheduler-invariant projection of a record set, keyed by id."""
    out = {}
    for r in records:
        essential = {
            "status": r["status"],
            "params": r["params"],
            "attempts": r["attempts"],
        }
        if r["status"] == "ok":
            essential["metrics"] = {
                k: ("nan" if isinstance(v, float) and math.isnan(v) else v)
                for k, v in r["metrics"].items()
            }
        else:
            essential["error"] = r["error"]["message"]
        out[r["id"]] = essential
    return out


class TestSchedulerEquivalence:
    @given(points=small_point_lists())
    @settings(max_examples=10, deadline=None)
    def test_lease_matches_serial(self, points, tmp_path_factory):
        spec = CampaignSpec.create(
            name="prop", space=ListSpace.of(points), task="design_summary"
        )
        serial = run_campaign(
            spec, policy=ExecutionPolicy(scheduler="serial", vectorize=False)
        )
        tmp = tmp_path_factory.mktemp("lease")
        lease_result = run_campaign(
            spec,
            tmp / "r.jsonl",
            policy=ExecutionPolicy(
                scheduler="lease", batch_size=2, heartbeat_interval=None
            ),
        )
        assert _essentials(lease_result.records) == _essentials(serial.records)
        store = ResultStore.open(tmp / "r.jsonl")
        assert max(store.terminal_record_counts().values()) == 1

    @pytest.mark.campaign
    def test_three_way_equivalence_with_stores(self, tmp_path):
        points = [
            {"ratio": 0.02 + 0.03 * i, "separation": 2.5 + 0.5 * i}
            for i in range(9)
        ]
        spec = CampaignSpec.create(
            name="prop3", space=ListSpace.of(points), task="design_summary"
        )
        serial = run_campaign(
            spec,
            tmp_path / "serial.jsonl",
            policy=ExecutionPolicy(scheduler="serial", vectorize=False),
        )
        pool = run_campaign(
            spec,
            tmp_path / "pool.jsonl",
            policy=ExecutionPolicy(scheduler="pool", workers=2, batch_size=3),
        )
        lease_store = tmp_path / "lease.jsonl"
        ResultStore.create(lease_store, spec)
        # Two sequential elastic workers share the lease store: the first
        # covers everything, the second must change nothing.
        run_worker(lease_store, batch_size=4, heartbeat_interval=None, max_idle=0.5)
        run_worker(lease_store, batch_size=4, heartbeat_interval=None, max_idle=0.2)

        oracle = _essentials(serial.records)
        assert _essentials(pool.records) == oracle
        merged = ResultStore.open(lease_store).merged_point_records()
        assert _essentials(merged) == oracle
        for path in (tmp_path / "serial.jsonl", tmp_path / "pool.jsonl", lease_store):
            counts = ResultStore.open(path).terminal_record_counts()
            assert max(counts.values()) == 1, path
