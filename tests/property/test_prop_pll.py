"""Property-based tests of closed-loop invariants over random loop designs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.zdomain import sampled_open_loop
from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.design import design_typical_loop
from repro.pll.openloop import lti_open_loop

W0 = 2 * np.pi


@st.composite
def loop_designs(draw):
    """Random stable-ish loop designs over the useful parameter region."""
    ratio = draw(st.floats(min_value=0.01, max_value=0.22))
    separation = draw(st.floats(min_value=2.0, max_value=10.0))
    icp = draw(st.floats(min_value=1e-4, max_value=1e-2))
    return design_typical_loop(
        omega0=W0, omega_ug=ratio * W0, separation=separation, charge_pump_current=icp
    )


probe_fraction = st.floats(min_value=0.02, max_value=0.48)


class TestClosedLoopInvariants:
    @given(pll=loop_designs(), frac=probe_fraction)
    @settings(max_examples=25, deadline=None)
    def test_transfer_plus_sensitivity_is_one(self, pll, frac):
        closed = ClosedLoopHTM(pll)
        s = 1j * frac * W0
        total = closed.h00(s) + closed.sensitivity_element(s, 0, 0)
        assert total == pytest.approx(1.0, abs=1e-10)

    @given(pll=loop_designs(), frac=probe_fraction)
    @settings(max_examples=25, deadline=None)
    def test_lambda_periodicity(self, pll, frac):
        closed = ClosedLoopHTM(pll)
        s = 0.05 + 1j * frac * W0
        assert closed.effective_gain(s + 1j * W0) == pytest.approx(
            closed.effective_gain(s), rel=1e-8
        )

    @given(pll=loop_designs(), frac=probe_fraction)
    @settings(max_examples=25, deadline=None)
    def test_lambda_conjugate_symmetry(self, pll, frac):
        closed = ClosedLoopHTM(pll)
        w = frac * W0
        assert closed.effective_gain(-1j * w) == pytest.approx(
            np.conj(closed.effective_gain(1j * w)), rel=1e-9
        )

    @given(pll=loop_designs(), frac=probe_fraction)
    @settings(max_examples=20, deadline=None)
    def test_zdomain_identity(self, pll, frac):
        closed = ClosedLoopHTM(pll)
        gz = sampled_open_loop(pll)
        s = 1j * frac * W0
        assert gz.at_s(s) == pytest.approx(closed.effective_gain(s), rel=1e-8)

    @given(pll=loop_designs(), frac=probe_fraction)
    @settings(max_examples=20, deadline=None)
    def test_h00_formula(self, pll, frac):
        """H00 = A / (1 + lambda) holds for every design (eq. 38)."""
        closed = ClosedLoopHTM(pll)
        a = lti_open_loop(pll)
        s = 1j * frac * W0
        lam = closed.effective_gain(s)
        assert closed.h00(s) == pytest.approx(complex(a(s)) / (1 + lam), rel=1e-9)

    @given(pll=loop_designs())
    @settings(max_examples=15, deadline=None)
    def test_dc_tracking(self, pll):
        """Type-2 loop tracks a slow reference perfectly regardless of design."""
        closed = ClosedLoopHTM(pll)
        assert abs(closed.h00(1e-6j * W0)) == pytest.approx(1.0, abs=1e-3)

    @given(pll=loop_designs(), frac=probe_fraction)
    @settings(max_examples=15, deadline=None)
    def test_row_elements_equal_across_input_bands(self, pll, frac):
        """Rank-one aliasing: H_{n,m} independent of m for every design."""
        closed = ClosedLoopHTM(pll)
        s = 1j * frac * W0
        for n in (-1, 0, 1):
            a = closed.element(s, n, -2)
            b = closed.element(s, n, 2)
            assert a == pytest.approx(b, rel=1e-12)
