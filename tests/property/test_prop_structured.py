"""Property: ``evaluate()`` (structured, symbolically composed) equals the
brute-force dense oracle for every operator class, across random
compositions — series, parallel, feedback, scaled — and both eager
backends.  Also: the numba backend name always resolves (falling back to
numpy with a health event when numba is absent)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memo import clear_cache
from repro.core.operators import (
    FeedbackOperator,
    IdentityOperator,
    SamplingOperator,
    ScaledOperator,
)
from repro.core.structured import StructuredGrid
from tests.property.test_prop_grid_eval import (
    W0,
    operator_trees,
    primitive_operators,
    s_grids,
)

#: Structured kernels reorder the same float ops the dense path performs,
#: so agreement is round-off-grade: 1e-12 relative on well-conditioned
#: draws (the ISSUE's equivalence bar), not mere 1e-9.
RTOL = 1e-12


def _assert_structured_matches_dense(op, s_arr, order, rtol=RTOL):
    clear_cache()
    structured = op.evaluate(s_arr, order)
    assert isinstance(structured, StructuredGrid)
    assert structured.kind in ("diagonal", "banded", "rank_one", "dense")
    stack = np.asarray(structured.to_dense())
    assert stack.shape == (s_arr.size, 2 * order + 1, 2 * order + 1)
    clear_cache()
    reference = np.asarray(op.dense_grid(s_arr, order))
    scale = max(float(np.max(np.abs(reference))), 1e-300)
    assert np.allclose(stack, reference, rtol=rtol, atol=rtol * scale)


class TestStructuredEquivalenceProperty:
    @given(op=primitive_operators(), s=s_grids(), order=st.integers(0, 3))
    @settings(max_examples=80, deadline=None)
    def test_primitives(self, op, s, order):
        _assert_structured_matches_dense(op, s, order)

    @given(op=operator_trees(), s=s_grids(), order=st.integers(0, 2))
    @settings(max_examples=60, deadline=None)
    def test_nested_composites(self, op, s, order):
        _assert_structured_matches_dense(op, s, order)

    @given(op=operator_trees(depth=1), s=s_grids(), order=st.integers(0, 2))
    @settings(max_examples=40, deadline=None)
    def test_feedback_closures(self, op, s, order):
        closed = FeedbackOperator(op)
        # Skip draws where I + G is effectively singular at a grid point:
        # the SMW scalar closure and the dense solve then both amplify
        # round-off and the comparison is meaningless.  Conditioning also
        # bounds how much of the 1e-12 budget the solve itself eats, so
        # feedback gets a correspondingly relaxed tolerance.
        size = 2 * order + 1
        worst = 1.0
        for si in s:
            g = op.dense(complex(si), order)
            cond = np.linalg.cond(np.eye(size) + g)
            if cond > 1e8:
                return
            worst = max(worst, cond)
        _assert_structured_matches_dense(closed, s, order, rtol=RTOL * worst)

    @given(
        eps=st.floats(1e-6, 1e-2),
        s=s_grids(),
        order=st.integers(0, 2),
    )
    @settings(max_examples=40, deadline=None)
    def test_feedback_near_singular_diagonal(self, eps, s, order):
        """``I + G = eps * I``: near-singular but exactly conditioned — the
        diagonal closure and the dense solve must still agree."""
        near = ScaledOperator(IdentityOperator(W0), eps - 1.0)
        _assert_structured_matches_dense(FeedbackOperator(near), s, order)

    @given(
        gain=st.floats(-0.999, 4.0),
        s=s_grids(),
        order=st.integers(0, 2),
    )
    @settings(max_examples=40, deadline=None)
    def test_feedback_rank_one_vs_dense(self, gain, s, order):
        """The paper's own closure: a scaled sampler closes through SMW."""
        loop = ScaledOperator(SamplingOperator(W0), gain * 2 * np.pi / W0)
        closed = FeedbackOperator(loop)
        assert closed.evaluate(s, order).kind == "rank_one"
        _assert_structured_matches_dense(closed, s, order, rtol=1e-11)

    @given(op=operator_trees(depth=1), s=s_grids(), order=st.integers(0, 2))
    @settings(max_examples=30, deadline=None)
    def test_numba_backend_name_matches_numpy(self, op, s, order):
        """``backend="numba"`` must give the numpy answer whether or not
        numba is installed (identical kernels, or graceful fallback)."""
        clear_cache()
        via_numba = np.asarray(op.evaluate(s, order, backend="numba").to_dense())
        clear_cache()
        via_numpy = np.asarray(op.evaluate(s, order, backend="numpy").to_dense())
        scale = max(float(np.max(np.abs(via_numpy))), 1e-300)
        assert np.allclose(via_numba, via_numpy, rtol=1e-12, atol=1e-12 * scale)
