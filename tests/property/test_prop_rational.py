"""Property-based tests for RationalFunction algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lti.rational import RationalFunction

finite_coeff = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
).map(lambda c: 0.0 if abs(c) < 1e-3 else c)


@st.composite
def rationals(draw, max_degree=3):
    num_deg = draw(st.integers(0, max_degree))
    den_deg = draw(st.integers(0, max_degree))
    num = [draw(finite_coeff) for _ in range(num_deg + 1)]
    den = [draw(finite_coeff) for _ in range(den_deg + 1)]
    # Ensure non-degenerate leading denominator coefficient.
    if abs(den[0]) < 1e-3:
        den[0] = 1.0
    return RationalFunction(num, den)


@st.composite
def eval_points(draw):
    re = draw(st.floats(min_value=-3.0, max_value=3.0, allow_nan=False))
    im = draw(st.floats(min_value=-3.0, max_value=3.0, allow_nan=False))
    return complex(re, im)


def safe(rf, s):
    """Evaluation point far enough from poles for stable comparison."""
    den_val = abs(np.polyval(rf.den, s))
    return den_val > 1e-4


class TestFieldAxioms:
    @given(a=rationals(), b=rationals(), s=eval_points())
    @settings(max_examples=60, deadline=None)
    def test_addition_commutes(self, a, b, s):
        if not (safe(a, s) and safe(b, s)):
            return
        lhs = (a + b)(s)
        rhs = (b + a)(s)
        assert lhs == pytest.approx(rhs, rel=1e-8, abs=1e-8)

    @given(a=rationals(), b=rationals(), s=eval_points())
    @settings(max_examples=60, deadline=None)
    def test_multiplication_commutes(self, a, b, s):
        if not (safe(a, s) and safe(b, s)):
            return
        assert (a * b)(s) == pytest.approx((b * a)(s), rel=1e-8, abs=1e-8)

    @given(a=rationals(), b=rationals(), c=rationals(), s=eval_points())
    @settings(max_examples=40, deadline=None)
    def test_distributivity(self, a, b, c, s):
        if not (safe(a, s) and safe(b, s) and safe(c, s)):
            return
        lhs = (a * (b + c))(s)
        rhs = (a * b + a * c)(s)
        scale = max(abs(lhs), abs(rhs), 1.0)
        assert abs(lhs - rhs) / scale < 1e-7

    @given(a=rationals(), s=eval_points())
    @settings(max_examples=60, deadline=None)
    def test_additive_inverse(self, a, s):
        if not safe(a, s):
            return
        assert (a - a)(s) == pytest.approx(0.0, abs=1e-9)


class TestTransformProperties:
    @given(a=rationals(), s=eval_points(), offset=eval_points())
    @settings(max_examples=60, deadline=None)
    def test_shift_consistency(self, a, s, offset):
        if not safe(a, s + offset):
            return
        assert a.shifted(offset)(s) == pytest.approx(a(s + offset), rel=1e-6, abs=1e-6)

    @given(a=rationals(), s=eval_points())
    @settings(max_examples=60, deadline=None)
    def test_scale_consistency(self, a, s):
        factor = 2.5
        if not safe(a, s / factor):
            return
        assert a.scaled_frequency(factor)(s) == pytest.approx(
            a(s / factor), rel=1e-8, abs=1e-8
        )

    @given(a=rationals())
    @settings(max_examples=40, deadline=None)
    def test_simplified_preserves_values(self, a):
        if a.is_zero():
            return
        simple = a.simplified()
        for s in (0.37 + 1.1j, -2.3 + 0.9j):
            if safe(a, s) and safe(simple, s):
                assert simple(s) == pytest.approx(a(s), rel=1e-5, abs=1e-6)


class TestPartialFractionReconstruction:
    @given(
        poles=st.lists(
            st.tuples(
                st.floats(min_value=-3.0, max_value=-0.2, allow_nan=False),
                st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
            ),
            min_size=1,
            max_size=4,
        ),
        gain=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_reconstruction(self, poles, gain):
        pole_list = [complex(re, im) for re, im in poles]
        # Snap nearly-coincident poles together: separating a multiple root
        # from a neighbour a hair away is inherently ill-conditioned in
        # double precision (root error ~eps^(1/m)), which is a property of
        # the problem, not of the expansion algorithm under test.
        snapped: list[complex] = []
        for p in pole_list:
            for q in snapped:
                if abs(p - q) < 0.05:
                    p = q
                    break
            snapped.append(p)
        pole_list = snapped
        rf = RationalFunction.from_zpk([], pole_list, gain)
        direct, terms = rf.partial_fractions()
        for s in (1.0 + 0.5j, 0.2 + 2.2j):
            recon = complex(np.polyval(direct, s)) + sum(t(s) for t in terms)
            assert recon == pytest.approx(rf(s), rel=1e-4, abs=1e-7)
