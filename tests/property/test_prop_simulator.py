"""Property-based end-to-end check: simulator vs HTM at random designs.

The strongest invariant in the repository: for *any* loop design in the
stable region and *any* in-band modulation frequency, the behavioural
simulator and the closed-form HTM model agree on the closed-loop transfer
within the paper's 2% (ours: a few 0.1%).  Kept to a handful of hypothesis
examples because each one runs a transient simulation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.design import design_typical_loop
from repro.simulator.transfer_extraction import measure_closed_loop_transfer

W0 = 2 * np.pi


class TestSimulatorAgreesWithHTM:
    @given(
        ratio=st.floats(min_value=0.03, max_value=0.2),
        separation=st.floats(min_value=3.0, max_value=8.0),
        omega_frac=st.floats(min_value=0.2, max_value=2.0),
    )
    @settings(max_examples=8, deadline=None)
    def test_transfer_agreement(self, ratio, separation, omega_frac):
        pll = design_typical_loop(
            omega0=W0, omega_ug=ratio * W0, separation=separation
        )
        omega = min(omega_frac * ratio * W0, 0.45 * W0)
        meas = measure_closed_loop_transfer(
            pll, omega, measure_cycles=150, discard_cycles=120
        )
        predicted = ClosedLoopHTM(pll).h00(1j * meas.omega)
        assert abs(meas.response - predicted) / abs(predicted) < 0.02

    @given(
        ratio=st.floats(min_value=0.03, max_value=0.15),
        offset=st.floats(min_value=-0.02, max_value=0.02),
    )
    @settings(max_examples=6, deadline=None)
    def test_acquisition_always_locks_in_range(self, ratio, offset):
        """Any in-range frequency offset is pulled in (type-2 + PFD)."""
        from repro.pll.acquisition import measure_acquisition

        pll = design_typical_loop(omega0=W0, omega_ug=ratio * W0)
        result = measure_acquisition(pll, offset, max_cycles=1500)
        assert result.locked
