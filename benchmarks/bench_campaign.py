"""Serial-vs-pool campaign throughput — the ``repro.campaign`` engine bench.

Runs a 220-point stability-map campaign (the ``stability_cell`` task over an
11 x 20 separation/ratio grid) twice through :func:`run_campaign`: once
serial, once on a 4-worker process pool with batched dispatch (points per
future; 0 = the executor's automatic size).  Asserts the two runs produce
*identical* results point by point — the engine routes both paths through
the same ``_run_point`` — and reports the wall-clock speedup.

The speedup assertion (>= 2.5x with 4 workers) only fires on machines with
at least 2 CPUs: process pools cannot beat serial execution on a single
core, and a wrong-by-construction threshold would make the bench useless as
a regression gate.  Result *identity* is asserted unconditionally.

``main()`` prints a human summary plus one machine-readable JSON line
(``kind: "bench_campaign"``) for harness scraping, like
``bench_grid_eval.py``.  Run with
``PYTHONPATH=src python benchmarks/bench_campaign.py`` or through pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.campaign import CampaignSpec, GridSpace, run_campaign

SEPARATIONS = tuple(np.linspace(2.5, 7.5, 11))
RATIOS = tuple(np.linspace(0.02, 0.3, 20))
POOL_WORKERS = 4


def stability_map_spec(
    separations=SEPARATIONS, ratios=RATIOS, points: int = 400
) -> CampaignSpec:
    """A stability-map campaign: one ``stability_cell`` per grid point."""
    return CampaignSpec.create(
        name="bench-stability-map",
        space=GridSpace.of(
            separation=[float(v) for v in separations],
            ratio=[float(v) for v in ratios],
        ),
        task="stability_cell",
        defaults={"points": points},
    )


@dataclass(frozen=True)
class CampaignBenchResult:
    """Timing comparison of serial vs pooled campaign execution."""

    points: int
    workers: int
    batch_size: int
    cpus: int
    serial_seconds: float
    pool_seconds: float
    pool_mode: str
    identical: bool

    @property
    def speedup(self) -> float:
        return self.serial_seconds / self.pool_seconds

    def summary(self) -> str:
        batch = "auto" if self.batch_size == 0 else str(self.batch_size)
        return (
            f"campaign ({self.points} points): serial {self.serial_seconds:.2f} s, "
            f"{self.workers}-worker {self.pool_mode} (batch {batch}) "
            f"{self.pool_seconds:.2f} s "
            f"-> {self.speedup:.2f}x on {self.cpus} cpu(s), "
            f"identical={self.identical}"
        )

    def json_line(self) -> str:
        return json.dumps(
            {
                "kind": "bench_campaign",
                "points": self.points,
                "workers": self.workers,
                "batch_size": self.batch_size,
                "cpus": self.cpus,
                "serial_seconds": round(self.serial_seconds, 4),
                "pool_seconds": round(self.pool_seconds, 4),
                "speedup": round(self.speedup, 3),
                "pool_mode": self.pool_mode,
                "identical": self.identical,
            },
            sort_keys=True,
        )


def _metrics_equal(a, b) -> bool:
    """Bitwise metric equality, except NaN == NaN (unstable cells are NaN)."""
    if a is None or b is None:
        return a is b
    if a.keys() != b.keys():
        return False
    return all(
        va == b[k] or (np.isnan(va) and np.isnan(b[k])) for k, va in a.items()
    )


def measure(
    separations=SEPARATIONS,
    ratios=RATIOS,
    workers: int = POOL_WORKERS,
    points: int = 400,
    batch_size: int = 0,
) -> CampaignBenchResult:
    """Run the campaign serial then pooled; cross-check record identity.

    ``batch_size`` is points per pool future (0 = the executor's
    automatic size — roughly four batches per worker).
    """
    spec = stability_map_spec(separations, ratios, points)

    start = time.perf_counter()
    serial = run_campaign(spec, workers=1)
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    pooled = run_campaign(spec, workers=workers, batch_size=batch_size)
    t_pool = time.perf_counter() - start

    identical = [r["id"] for r in serial.records] == [
        r["id"] for r in pooled.records
    ] and all(
        a["status"] == b["status"]
        and _metrics_equal(a.get("metrics"), b.get("metrics"))
        for a, b in zip(serial.records, pooled.records)
    )
    return CampaignBenchResult(
        points=len(spec),
        workers=workers,
        batch_size=batch_size,
        cpus=os.cpu_count() or 1,
        serial_seconds=t_serial,
        pool_seconds=t_pool,
        pool_mode=pooled.telemetry.mode,
        identical=identical,
    )


# -- pytest entry points ---------------------------------------------------------


def test_pool_matches_serial_and_speeds_up():
    """Identity always; the >= 2.5x target where parallelism is possible."""
    result = measure()
    assert result.points >= 200
    assert result.identical, result.summary()
    if result.cpus >= 2:
        assert result.speedup >= 2.5, result.summary()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI-sized run (12 points, 2 workers) — exercises both "
        "execution paths without asserting the full-size speedup",
    )
    parser.add_argument(
        "--json-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="append the machine-readable JSON result line to FILE",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        result = measure(
            separations=tuple(np.linspace(3.0, 6.0, 3)),
            ratios=tuple(np.linspace(0.05, 0.25, 4)),
            workers=2,
            points=100,
        )
    else:
        result = measure()
    print(result.summary())
    print(result.json_line())
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        with args.json_out.open("a") as fh:
            fh.write(result.json_line() + "\n")


if __name__ == "__main__":
    main()
