"""Ablation A4: the impulse-train PFD approximation vs finite pulse widths.

Paper Fig. 4 argues charge-pump pulses act as weighted Dirac impulses when
their width is small compared to the loop time constant.  Here we drive the
behavioural simulator (real finite-width pulses) with increasing modulation
amplitude — wider pulses — and watch the HTM model's error grow from the
1e-4 level toward the percent level, validating both the approximation and
its breakdown direction.
"""

import pytest

from repro.pll.closedloop import ClosedLoopHTM
from repro.simulator.transfer_extraction import measure_closed_loop_transfer

RATIO = 0.1


@pytest.fixture(scope="module")
def pll(loop_at_ratio):
    return loop_at_ratio(RATIO)


@pytest.fixture(scope="module")
def predicted(pll):
    closed = ClosedLoopHTM(pll)
    return closed


def _error_at_amplitude(pll, closed, amplitude):
    meas = measure_closed_loop_transfer(
        pll,
        0.1 * pll.omega0,
        amplitude=amplitude,
        measure_cycles=150,
        discard_cycles=100,
    )
    prediction = closed.h00(1j * meas.omega)
    return abs(meas.response - prediction) / abs(prediction)


@pytest.mark.benchmark(group="ablation-pulsewidth")
@pytest.mark.parametrize("amplitude_fraction", [1e-4, 1e-2])
def test_measurement_at_amplitude(benchmark, pll, predicted, amplitude_fraction):
    amplitude = amplitude_fraction * pll.period
    error = benchmark(_error_at_amplitude, pll, predicted, amplitude)
    assert error < 0.05


def test_error_grows_with_pulse_width(pll, predicted):
    """Wider pulses (larger phase excursions) stress the Dirac idealisation."""
    errors = [
        _error_at_amplitude(pll, predicted, frac * pll.period)
        for frac in (1e-4, 3e-3, 3e-2)
    ]
    assert errors[0] < 0.001
    assert errors[-1] > errors[0]


def test_small_signal_regime_flat(pll, predicted):
    """Below ~1e-3 T the error is amplitude-independent (linear regime)."""
    e1 = _error_at_amplitude(pll, predicted, 1e-4 * pll.period)
    e2 = _error_at_amplitude(pll, predicted, 2e-4 * pll.period)
    assert e2 == pytest.approx(e1, abs=5e-4)
