"""Serving-layer latency and coalescing — the ``repro.serve`` bench.

Starts a real :class:`~repro.serve.AnalysisServer` on a loopback socket and
fires waves of concurrent requests at it: a mix of ``/v1/response`` grid
requests over a handful of designs (so the micro-batcher sees both
coalescible and distinct fingerprints) plus ``/v1/margins`` scalar
requests.  Reports client-observed p50/p95 latency, total wall time, and
the coalescing ratio / underlying-call count scraped from ``/v1/statz`` —
the figures that tell you whether cross-request micro-batching is actually
collapsing concurrent work.

``--smoke`` (CI) shrinks the run to 50 requests and asserts the mechanism
works at all: every request succeeds and at least one was coalesced.
``main()`` prints a human summary plus one machine-readable JSON line
(``kind: "bench_serve"``) consumed by ``repro bench compare`` against
``BENCH_baseline.json``.  The gated metrics are ``wall_seconds`` and
``coalesce_speedup`` (requests per underlying evaluation — structural, so
stable across machines); the latency percentiles are reported as
``p50_ms``/``p95_ms`` because single-run percentiles of a concurrent
server jitter far beyond any sane gate tolerance.  Run with
``PYTHONPATH=src python benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.serve import AnalysisServer, ServerConfig

DESIGNS = (
    {"ratio": 0.08, "separation": 4.0, "points": 300},
    {"ratio": 0.10, "separation": 4.0, "points": 300},
    {"ratio": 0.12, "separation": 5.0, "points": 300},
)


@dataclass(frozen=True)
class ServeBenchResult:
    """Client-observed latency plus server-side batching counters."""

    requests: int
    concurrency: int
    errors: int
    wall_seconds: float
    p50_ms: float
    p95_ms: float
    coalescing_ratio: float
    underlying_calls: int
    cache_hits: int

    @property
    def coalesce_speedup(self) -> float:
        """Requests served per underlying evaluation (batching + cache)."""
        return self.requests / max(self.underlying_calls, 1)

    def summary(self) -> str:
        return (
            f"serve ({self.requests} requests, {self.concurrency} concurrent): "
            f"wall {self.wall_seconds:.2f} s, p50 {self.p50_ms:.1f} ms, "
            f"p95 {self.p95_ms:.1f} ms, "
            f"{self.underlying_calls} underlying call(s) "
            f"({self.coalesce_speedup:.1f}x collapse), "
            f"coalescing {self.coalescing_ratio:.2f}, "
            f"{self.cache_hits} cache hit(s), {self.errors} error(s)"
        )

    def json_line(self) -> str:
        return json.dumps(
            {
                "kind": "bench_serve",
                "requests": self.requests,
                "concurrency": self.concurrency,
                "errors": self.errors,
                "wall_seconds": round(self.wall_seconds, 4),
                "p50_ms": round(self.p50_ms, 2),
                "p95_ms": round(self.p95_ms, 2),
                "coalesce_speedup": round(self.coalesce_speedup, 2),
                "coalescing_ratio": round(self.coalescing_ratio, 3),
                "underlying_calls": self.underlying_calls,
                "cache_hits": self.cache_hits,
            },
            sort_keys=True,
        )


async def _request(port: int, method: str, path: str, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: b\r\n"
            f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except Exception:
        pass
    head, _, rest = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(rest) if rest else None


def _request_body(i: int) -> tuple[str, dict]:
    """Deterministic request mix: mostly grid responses, some margins."""
    design = DESIGNS[i % len(DESIGNS)]
    if i % 5 == 4:
        return "/v1/margins", {"design": design}
    omega = np.linspace(0.5, 3.0, 16 + 4 * (i % 3))
    return "/v1/response", {"design": design, "grid": {"omega": list(omega)}}


async def _drive(
    port: int, requests: int, concurrency: int
) -> tuple[list[float], int]:
    semaphore = asyncio.Semaphore(concurrency)
    latencies: list[float] = []
    errors = 0

    async def one(i: int) -> None:
        nonlocal errors
        path, body = _request_body(i)
        async with semaphore:
            start = time.perf_counter()
            status, _ = await _request(port, "POST", path, body)
            latencies.append(time.perf_counter() - start)
            if status != 200:
                errors += 1

    await asyncio.gather(*(one(i) for i in range(requests)))
    return latencies, errors


def measure(
    requests: int = 200, concurrency: int = 32, batch_window: float = 0.01
) -> ServeBenchResult:
    """Run the request mix against a fresh in-process server."""

    async def scenario() -> ServeBenchResult:
        server = AnalysisServer(
            ServerConfig(
                port=0,
                batch_window=batch_window,
                max_inflight=max(2 * concurrency, 64),
            )
        )
        await server.start()
        try:
            # Warm the executor threads and numeric kernels with a design
            # that is NOT in the measured mix, so the timed pass still sees
            # a cold cache for every fingerprint it requests.
            await _request(
                server.port,
                "POST",
                "/v1/margins",
                {"design": {"ratio": 0.2, "separation": 3.0, "points": 100}},
            )
            start = time.perf_counter()
            latencies, errors = await _drive(server.port, requests, concurrency)
            wall = time.perf_counter() - start
            _, statz = await _request(server.port, "GET", "/v1/statz")
        finally:
            await server.stop()
        lat = np.asarray(latencies)
        return ServeBenchResult(
            requests=requests,
            concurrency=concurrency,
            errors=errors,
            wall_seconds=wall,
            p50_ms=float(np.percentile(lat, 50)) * 1e3,
            p95_ms=float(np.percentile(lat, 95)) * 1e3,
            coalescing_ratio=float(statz["batcher"]["coalescing_ratio"]),
            underlying_calls=int(statz["batcher"]["underlying_calls"]),
            cache_hits=int(statz["cache"]["hits"]),
        )

    return asyncio.run(scenario())


# -- pytest entry point ------------------------------------------------------------


def test_serve_bench_smoke():
    """Mechanism check: all requests succeed, and batching actually batched."""
    result = measure(requests=50, concurrency=16)
    assert result.errors == 0, result.summary()
    assert result.coalescing_ratio > 0 or result.cache_hits > 0, result.summary()
    assert result.underlying_calls < result.requests, result.summary()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run (50 requests); asserts coalescing happened at all",
    )
    parser.add_argument(
        "--json-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="append the machine-readable JSON result line to FILE",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        result = measure(requests=50, concurrency=16)
        assert result.errors == 0, result.summary()
        assert (
            result.coalescing_ratio > 0 or result.cache_hits > 0
        ), result.summary()
    else:
        result = measure()
    print(result.summary())
    print(result.json_line())
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        with args.json_out.open("a") as fh:
            fh.write(result.json_line() + "\n")


if __name__ == "__main__":
    main()
