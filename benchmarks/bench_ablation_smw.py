"""Ablation A2: rank-one SMW closure vs dense (I + G)^{-1} G inversion.

The paper's eqs. (31)-(34) replace an (in principle infinite) matrix
inversion with scalar arithmetic.  This bench quantifies both the speed gap
(scalar vs O(K^3) solve per frequency) and the truncation error the dense
route carries at finite K.
"""

import numpy as np
import pytest

from repro.core.operators import FeedbackOperator
from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.openloop import open_loop_operator

RATIO = 0.1


@pytest.fixture(scope="module")
def pll(loop_at_ratio):
    return loop_at_ratio(RATIO)


@pytest.fixture(scope="module")
def eval_points(reference_omega0):
    return [1j * w * reference_omega0 for w in np.linspace(0.05, 0.4, 8)]


@pytest.mark.benchmark(group="ablation-smw")
def test_smw_closed_form(benchmark, pll, eval_points):
    closed = ClosedLoopHTM(pll)

    def smw_sweep():
        return [closed.h00(s) for s in eval_points]

    values = benchmark(smw_sweep)
    assert all(np.isfinite(v) for v in values)


@pytest.mark.benchmark(group="ablation-smw")
@pytest.mark.parametrize("order", [8, 16, 32])
def test_dense_inversion(benchmark, pll, eval_points, order):
    feedback = FeedbackOperator(open_loop_operator(pll))

    def dense_sweep():
        return [feedback.htm(s, order).element(0, 0) for s in eval_points]

    values = benchmark(dense_sweep)
    assert all(np.isfinite(v) for v in values)


def test_dense_converges_to_smw(pll, eval_points):
    """Dense truncation approaches the SMW value as K grows — and the SMW
    result with the matching truncated lambda matches the dense matrix
    exactly, isolating truncation as the only difference."""
    closed_exact = ClosedLoopHTM(pll)
    feedback = FeedbackOperator(open_loop_operator(pll))
    s = eval_points[3]
    exact = closed_exact.h00(s)
    errs = []
    for order in (8, 16, 32, 64):
        dense = feedback.htm(s, order).element(0, 0)
        errs.append(abs(dense - exact) / abs(exact))
    assert errs[-1] < errs[0]
    assert errs[-1] < 5e-3
    # Matched-truncation identity.
    order = 16
    closed_matched = ClosedLoopHTM(pll, method="truncated", harmonics=order)
    dense = feedback.htm(s, order).element(0, 0)
    assert closed_matched.h00(s) == pytest.approx(dense, rel=1e-8)
