"""Scalar-vs-batched operator evaluation — the ``dense_grid`` speedup bench.

Evaluates the brute-force closed-loop operator ``(I + G)^{-1} G`` of a
typical loop (ratio 0.2, truncation order 8) over a 200-point baseband grid
two ways:

* ``scalar_stack`` — the pre-batching protocol: one :meth:`dense` call per
  grid point, stacked;
* ``batched_stack`` — one :meth:`dense_grid` call (grid cache cleared first,
  so the timing measures evaluation, not memoization).

``measure()`` returns the recorded speedup and the maximum relative
divergence between the two stacks; ``main()`` prints a small report.  The
tier-1 suite imports this module through
``tests/unit/test_grid_eval_smoke.py`` and enforces the equality bound on a
tiny grid; the full-size speedup assertion lives here (run with
``PYTHONPATH=src python -m pytest benchmarks/bench_grid_eval.py`` or
``PYTHONPATH=src python benchmarks/bench_grid_eval.py``).
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.grid import FrequencyGrid
from repro.core.memo import grid_cache
from repro.core.operators import FeedbackOperator, HarmonicOperator
from repro.pll.design import design_typical_loop
from repro.pll.openloop import open_loop_operator

RATIO = 0.2
POINTS = 200
ORDER = 8


def closed_loop_operator(
    ratio: float = RATIO, omega0: float = 2 * np.pi
) -> tuple[HarmonicOperator, float]:
    """The dense closed-loop operator of a typical loop, plus its ``omega0``."""
    pll = design_typical_loop(omega0=omega0, omega_ug=ratio * omega0)
    return FeedbackOperator(open_loop_operator(pll)), pll.omega0


def scalar_stack(op: HarmonicOperator, s_arr: np.ndarray, order: int) -> np.ndarray:
    """Point-by-point evaluation — the pre-batching calling convention."""
    return np.stack([op.dense(complex(s), order) for s in s_arr])


def batched_stack(op: HarmonicOperator, s_arr: np.ndarray, order: int) -> np.ndarray:
    """One cold vectorized grid evaluation (memoization defeated)."""
    grid_cache.clear()
    return op.dense_grid(s_arr, order)


@dataclass(frozen=True)
class GridEvalResult:
    """Timing comparison of the two evaluation protocols."""

    points: int
    order: int
    scalar_seconds: float
    batched_seconds: float
    max_rel_err: float

    @property
    def speedup(self) -> float:
        return self.scalar_seconds / self.batched_seconds

    def summary(self) -> str:
        return (
            f"grid eval ({self.points} points, order {self.order}): "
            f"scalar {self.scalar_seconds * 1e3:.1f} ms, "
            f"batched {self.batched_seconds * 1e3:.1f} ms "
            f"-> {self.speedup:.1f}x, max rel err {self.max_rel_err:.2e}"
        )

    def json_line(self) -> str:
        return json.dumps(
            {
                "kind": "bench_grid_eval",
                "points": self.points,
                "order": self.order,
                "scalar_seconds": round(self.scalar_seconds, 6),
                "batched_seconds": round(self.batched_seconds, 6),
                "speedup": round(self.speedup, 3),
                "max_rel_err": self.max_rel_err,
            },
            sort_keys=True,
        )


def measure(
    points: int = POINTS,
    order: int = ORDER,
    repeats: int = 3,
    ratio: float = RATIO,
) -> GridEvalResult:
    """Time both protocols (best of ``repeats``) and cross-check equality.

    The relative error is the scaled residual ``max|B - S| / max|S|`` —
    well-defined at the stack's structural zeros.
    """
    op, omega0 = closed_loop_operator(ratio)
    grid = FrequencyGrid.baseband(omega0, points=points)
    s_arr = grid.s

    reference = scalar_stack(op, s_arr, order)
    batched = np.asarray(batched_stack(op, s_arr, order))
    max_rel_err = float(
        np.max(np.abs(batched - reference)) / np.max(np.abs(reference))
    )

    t_scalar = min(
        _timed(scalar_stack, op, s_arr, order) for _ in range(repeats)
    )

    def cold_grid_eval():
        return op.dense_grid(s_arr, order)

    t_batched = min(
        # Clear outside the timed region: the comparison is evaluation vs
        # evaluation, with memoization defeated rather than measured.
        (grid_cache.clear(), _timed(cold_grid_eval))[1]
        for _ in range(repeats)
    )
    return GridEvalResult(
        points=points,
        order=order,
        scalar_seconds=t_scalar,
        batched_seconds=t_batched,
        max_rel_err=max_rel_err,
    )


def _timed(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


# -- pytest entry points ---------------------------------------------------------


def test_batched_speedup_and_agreement():
    """The tentpole target: >= 5x on the 200-point, order-8 sweep."""
    result = measure()
    assert result.max_rel_err < 1e-9, result.summary()
    assert result.speedup >= 5.0, result.summary()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI-sized run (40 points, order 4, 1 repeat) — exercises "
        "the bench path without asserting the full-size speedup",
    )
    parser.add_argument(
        "--json-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="append the machine-readable JSON result line to FILE",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        result = measure(points=40, order=4, repeats=1)
    else:
        result = measure()
    print(result.summary())
    print(result.json_line())
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        with args.json_out.open("a") as fh:
            fh.write(result.json_line() + "\n")


if __name__ == "__main__":
    main()
