"""Bench for paper Fig. 6: closed-loop |H00| curves with simulation marks.

Checks the paper's qualitative findings — bandwidth extends and peaking
grows with omega_UG/omega_0 — and the quantitative 2% HTM-vs-simulation
agreement, while timing the full figure regeneration.
"""

import numpy as np
import pytest

from repro.experiments.fig6 import run_fig6


@pytest.mark.benchmark(group="fig6")
def test_fig6_full_figure(benchmark):
    result = benchmark(
        run_fig6,
        ratios=(0.05, 0.1, 0.2),
        points=120,
        mark_points=4,
        measure_cycles=150,
        discard_cycles=100,
    )
    # Claim C1 at the marks.
    assert result.max_mark_error() < 0.02
    # Peaking grows from the slowest to the fastest loop (paper: "peaking at
    # the passband's edge becomes worse").
    assert result.curves[-1].peaking_db > result.curves[0].peaking_db
    # The fast loop's H00 visibly departs from the LTI prediction.
    fast = result.curves[-1]
    assert np.max(np.abs(fast.h00_db - fast.lti_db)) > 1.0


@pytest.mark.benchmark(group="fig6")
def test_fig6_htm_curve_only(benchmark, loop_at_ratio):
    """The pure HTM sweep — the 'matter of seconds' path of claim C2."""
    from repro.pll.closedloop import ClosedLoopHTM

    pll = loop_at_ratio(0.1)
    closed = ClosedLoopHTM(pll)
    omega = np.logspace(np.log10(0.03), np.log10(3.0), 200) * 0.1 * pll.omega0

    response = benchmark(closed.frequency_response, omega)
    assert response.shape == omega.shape
    assert abs(response[0]) == pytest.approx(1.0, abs=0.05)
