"""Distributed-tracing overhead — the span-event sink regression gate.

The trace layer (:mod:`repro.obs.trace`) extends the obs "free when off"
promise: with no sink configured and no context installed, every
``record_event`` call is a single attribute read, and hot paths guard the
surrounding ``time.time()`` bookkeeping on one global.  When tracing *is*
on, each campaign point appends one JSONL span line — cheap, but not free.
This bench pins both sides to numbers:

* ``untraced`` — a serial campaign with obs enabled but no trace context
  and no sink: the default path every ``REPRO_OBS=1`` user runs.
* ``traced`` — the same campaign with a root :class:`TraceContext` stamped
  into the manifest and a ``<store>.trace/`` sink configured, i.e. the
  full distributed-tracing write path per point.

Interleaved best-of-``repeats`` timing (same discipline as
``bench_obs_overhead``); the traced-path overhead must stay under **25%**
for these fast (~ms) points — real campaign points are slower, so their
relative cost is lower still.

Run with ``PYTHONPATH=src python benchmarks/bench_trace.py`` (or through
pytest); ``--smoke`` shrinks the campaign for CI, ``--json-out FILE``
appends the machine-readable result line (``kind: "bench_trace"``).
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.campaign import CampaignSpec, ListSpace, run_campaign
from repro.core.grid import FrequencyGrid
from repro.core.memo import grid_cache
from repro.obs import spans as obs
from repro.obs import trace as obs_trace

try:  # package import under pytest, flat import as a script
    from benchmarks.bench_grid_eval import closed_loop_operator
except ImportError:
    from bench_grid_eval import closed_loop_operator

POINTS = 40
REPEATS = 5
ATTEMPTS = 3  # re-measure before declaring a regression (noise gate)
TRACE_OVERHEAD_BOUND = 0.25  # one JSONL append per ~ms point: < 25%


def _trace_task(params):
    """A realistically numeric (but quick) campaign point."""
    op, omega0 = _trace_task.op
    s_arr = FrequencyGrid.baseband(omega0 * params["scale"], points=120).s
    grid = op.dense_grid(s_arr, 6)
    return {"peak": float(np.abs(grid).max())}


_trace_task.op = None  # populated lazily so import stays cheap


@dataclass(frozen=True)
class TraceOverheadResult:
    """Serial campaign timings with tracing off vs on."""

    points: int
    repeats: int
    untraced_seconds: float
    traced_seconds: float
    events: int

    @property
    def trace_overhead(self) -> float:
        """Relative cost of the span-event sink over plain obs."""
        return self.traced_seconds / self.untraced_seconds - 1.0

    def summary(self) -> str:
        return (
            f"trace overhead ({self.points} campaign points, best of "
            f"{self.repeats}): untraced {self.untraced_seconds * 1e3:.1f} ms, "
            f"traced {self.traced_seconds * 1e3:.1f} ms "
            f"({100 * self.trace_overhead:+.2f}%, "
            f"{self.events} span events recorded)"
        )

    def json_line(self) -> str:
        return json.dumps(
            {
                "kind": "bench_trace",
                "points": self.points,
                "repeats": self.repeats,
                "untraced_seconds": round(self.untraced_seconds, 6),
                "traced_seconds": round(self.traced_seconds, 6),
                "trace_overhead": round(self.trace_overhead, 4),
                "events": self.events,
            },
            sort_keys=True,
        )


def _campaign_spec(points: int) -> CampaignSpec:
    if _trace_task.op is None:
        _trace_task.op = closed_loop_operator()
    return CampaignSpec.create(
        name="bench-trace",
        space=ListSpace.of([{"scale": 1.0 + 0.01 * i} for i in range(points)]),
        task=_trace_task,
    )


def _timed_campaign(spec: CampaignSpec, root: Path, trace=None) -> float:
    store = root / "run.jsonl"
    grid_cache.clear()
    start = time.perf_counter()
    run_campaign(spec, store, trace=trace)
    return time.perf_counter() - start


def measure(points: int = POINTS, repeats: int = REPEATS) -> TraceOverheadResult:
    """Time serial campaigns untraced vs traced, interleaved best-of-N."""
    spec = _campaign_spec(points)
    was_enabled = obs.enabled()
    t_untraced = float("inf")
    t_traced = float("inf")
    events = 0
    try:
        obs.enable()
        for _ in range(repeats):
            # Untraced: obs on, but neither context nor sink — so every
            # record_event call site reduces to its guard.
            prev = obs_trace.campaign_context()
            obs_trace.set_campaign(None)
            try:
                with tempfile.TemporaryDirectory() as tmp:
                    t_untraced = min(
                        t_untraced, _timed_campaign(spec, Path(tmp))
                    )
            finally:
                obs_trace.set_campaign(prev)
            # Traced: a root context flows through the executor, which
            # configures a <store>.trace/ shard and records per-point spans.
            with tempfile.TemporaryDirectory() as tmp:
                root = Path(tmp)
                t_traced = min(
                    t_traced,
                    _timed_campaign(spec, root, trace=obs_trace.new_context()),
                )
                events = len(
                    obs_trace.load_store_events(root / "run.jsonl")
                )
    finally:
        (obs.enable if was_enabled else obs.disable)()
        obs.reset()
        grid_cache.clear()
    return TraceOverheadResult(
        points=points,
        repeats=repeats,
        untraced_seconds=t_untraced,
        traced_seconds=t_traced,
        events=events,
    )


def measure_gated(
    points: int = POINTS, repeats: int = REPEATS, attempts: int = ATTEMPTS
) -> TraceOverheadResult:
    """Measure up to ``attempts`` times; return the first in-bound result.

    A handful of JSONL appends cannot cost a quarter of a numeric campaign
    — an out-of-bound sample means the runner was busy.  Retrying before
    failing keeps the gate meaningful on loaded CI machines; a *real*
    regression fails every attempt.  The last result is returned if none
    passes.
    """
    result = measure(points, repeats)
    for _ in range(attempts - 1):
        if result.trace_overhead < TRACE_OVERHEAD_BOUND:
            break
        result = measure(points, repeats)
    return result


# -- pytest entry points ---------------------------------------------------------


def test_trace_overhead_in_bound():
    """Per-point span recording stays under the traced-path bound."""
    result = measure_gated(points=12, repeats=3)
    assert result.trace_overhead < TRACE_OVERHEAD_BOUND, result.summary()
    assert result.events >= 12, result.summary()


def test_untraced_campaign_records_no_events():
    """Without a context, a campaign store grows no trace shards."""
    spec = _campaign_spec(4)
    was_enabled = obs.enabled()
    try:
        obs.disable()
        with tempfile.TemporaryDirectory() as tmp:
            store = Path(tmp) / "run.jsonl"
            run_campaign(spec, store)
            assert not obs_trace.trace_dir(store).exists()
            assert obs_trace.load_store_events(store) == []
    finally:
        (obs.enable if was_enabled else obs.disable)()
        obs.reset()
        grid_cache.clear()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI-sized run (12 points, 3 repeats); the bound is still "
        "asserted",
    )
    parser.add_argument(
        "--json-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="append the machine-readable JSON result line to FILE",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        result = measure_gated(points=12, repeats=3)
    else:
        result = measure_gated()
    print(result.summary())
    print(result.json_line())
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        with args.json_out.open("a") as fh:
            fh.write(result.json_line() + "\n")
    if result.trace_overhead >= TRACE_OVERHEAD_BOUND:
        raise SystemExit(
            f"trace overhead {100 * result.trace_overhead:.2f}% "
            f">= {100 * TRACE_OVERHEAD_BOUND:.0f}% bound"
        )


if __name__ == "__main__":
    main()
