"""Structured-vs-dense closed-loop evaluation — the ``evaluate()`` bench.

Evaluates the closed-loop operator ``(I + G)^{-1} G`` of a typical loop
(ratio 0.2, truncation order 8) over a 200-point baseband grid two ways:

* ``dense_stack`` — the brute-force oracle: one :meth:`dense_grid` call,
  which assembles the full ``(L, N, N)`` open-loop stack and solves a
  dense ``N x N`` system per point;
* ``structured_stack`` — one :meth:`evaluate` call: the rank-one
  structure of the sampled loop closes through the Sherman-Morrison
  scalar formula, O(N) per point, and densifies only at the end.

The bench asserts the two stacks agree (the oracle is an independent
code path — :meth:`FeedbackOperator._dense_grid` never routes through
the structured kernels) and reports the speedup plus the structure tag
the evaluation produced.  ``main()`` prints a human summary and one
machine-readable JSON line (``kind: "bench_structured"``) for the
``repro bench compare`` gate, like the sibling benches.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.grid import FrequencyGrid
from repro.core.memo import grid_cache
from repro.core.operators import FeedbackOperator, HarmonicOperator
from repro.pll.design import design_typical_loop
from repro.pll.openloop import open_loop_operator

RATIO = 0.2
POINTS = 200
ORDER = 8


def closed_loop_operator(
    ratio: float = RATIO, omega0: float = 2 * np.pi
) -> tuple[HarmonicOperator, float]:
    """The closed-loop operator of a typical loop, plus its ``omega0``."""
    pll = design_typical_loop(omega0=omega0, omega_ug=ratio * omega0)
    return FeedbackOperator(open_loop_operator(pll)), pll.omega0


def dense_stack(op: HarmonicOperator, s_arr: np.ndarray, order: int) -> np.ndarray:
    """The brute-force oracle: full dense assembly + per-point solve."""
    grid_cache.clear()
    return np.asarray(op.dense_grid(s_arr, order))


def structured_stack(op: HarmonicOperator, s_arr: np.ndarray, order: int):
    """One cold structured evaluation (memoization defeated)."""
    grid_cache.clear()
    return op.evaluate(s_arr, order)


@dataclass(frozen=True)
class StructuredBenchResult:
    """Timing comparison of the structured path against the dense oracle."""

    points: int
    order: int
    structure: str
    dense_seconds: float
    structured_seconds: float
    max_rel_err: float

    @property
    def speedup(self) -> float:
        return self.dense_seconds / self.structured_seconds

    def summary(self) -> str:
        return (
            f"structured eval ({self.points} points, order {self.order}, "
            f"kind {self.structure!r}): dense {self.dense_seconds * 1e3:.1f} ms, "
            f"structured {self.structured_seconds * 1e3:.1f} ms "
            f"-> {self.speedup:.1f}x, max rel err {self.max_rel_err:.2e}"
        )

    def json_line(self) -> str:
        return json.dumps(
            {
                "kind": "bench_structured",
                "points": self.points,
                "order": self.order,
                "structure": self.structure,
                "dense_seconds": round(self.dense_seconds, 6),
                "structured_seconds": round(self.structured_seconds, 6),
                "speedup": round(self.speedup, 3),
                "max_rel_err": self.max_rel_err,
            },
            sort_keys=True,
        )


def measure(
    points: int = POINTS,
    order: int = ORDER,
    repeats: int = 3,
    ratio: float = RATIO,
) -> StructuredBenchResult:
    """Time both paths (best of ``repeats``) and cross-check the oracle.

    The relative error is the scaled residual ``max|S - D| / max|D|`` —
    well-defined at the stack's structural zeros.
    """
    op, omega0 = closed_loop_operator(ratio)
    grid = FrequencyGrid.baseband(omega0, points=points)
    s_arr = grid.s

    structured = structured_stack(op, s_arr, order)
    reference = dense_stack(op, s_arr, order)
    max_rel_err = float(
        np.max(np.abs(np.asarray(structured.to_dense()) - reference))
        / np.max(np.abs(reference))
    )

    t_dense = min(
        _timed(dense_stack, op, s_arr, order) for _ in range(repeats)
    )
    t_structured = min(
        _timed(structured_stack, op, s_arr, order) for _ in range(repeats)
    )
    return StructuredBenchResult(
        points=points,
        order=order,
        structure=structured.kind,
        dense_seconds=t_dense,
        structured_seconds=t_structured,
        max_rel_err=max_rel_err,
    )


def _timed(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


# -- pytest entry points ---------------------------------------------------------


def test_structured_speedup_and_agreement():
    """The tentpole target: >= 5x over the dense oracle, agreement to 1e-9."""
    result = measure()
    assert result.structure == "rank_one", result.summary()
    assert result.max_rel_err < 1e-9, result.summary()
    assert result.speedup >= 5.0, result.summary()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI-sized run (40 points, order 4, 1 repeat) — exercises "
        "the bench path without asserting the full-size speedup",
    )
    parser.add_argument(
        "--json-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="append the machine-readable JSON result line to FILE",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        result = measure(points=40, order=4, repeats=1)
    else:
        result = measure()
    print(result.summary())
    print(result.json_line())
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        with args.json_out.open("a") as fh:
            fh.write(result.json_line() + "\n")


if __name__ == "__main__":
    main()
