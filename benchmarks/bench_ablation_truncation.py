"""Ablation A3: HTM truncation order — cost and convergence.

How large must K be before truncated quantities stabilise?  For this loop's
relative-degree-2 gain the dense baseband element converges like O(1/K);
the automatic selector finds the knee, and cost grows as K^3 per point.
"""

import numpy as np
import pytest

from repro.core.operators import FeedbackOperator
from repro.core.truncation import choose_truncation_order, truncation_error_estimate
from repro.pll.openloop import open_loop_operator

RATIO = 0.1


@pytest.fixture(scope="module")
def closed_operator(loop_at_ratio):
    return FeedbackOperator(open_loop_operator(loop_at_ratio(RATIO)))


@pytest.mark.benchmark(group="ablation-truncation")
@pytest.mark.parametrize("order", [4, 16, 64])
def test_dense_evaluation_cost(benchmark, closed_operator, reference_omega0, order):
    s = 1j * 0.1 * reference_omega0
    htm = benchmark(closed_operator.htm, s, order)
    assert htm.order == order


@pytest.mark.benchmark(group="ablation-truncation")
def test_automatic_selection(benchmark, closed_operator, reference_omega0):
    omega = np.array([0.07, 0.2]) * reference_omega0
    report = benchmark(
        choose_truncation_order, closed_operator, omega, 1e-3, 2, 256
    )
    assert report.order <= 256
    assert report.achieved_change <= 1e-3


def test_error_falls_with_order(closed_operator, reference_omega0):
    omega = [0.1 * reference_omega0]
    errors = [
        truncation_error_estimate(closed_operator, omega, order=k) for k in (4, 8, 16, 32)
    ]
    assert all(b < a for a, b in zip(errors, errors[1:]))
