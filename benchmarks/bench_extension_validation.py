"""Extension benches: pole search, Floquet map, symbolic build — the
cross-validation machinery beyond the paper's figures."""

import numpy as np
import pytest

from repro.pll.poles import find_closed_loop_poles
from repro.simulator.floquet import floquet_multipliers
from repro.symbolic import effective_gain_expression

RATIO = 0.1


@pytest.mark.benchmark(group="extension-validation")
def test_pole_search(benchmark, loop_at_ratio):
    pll = loop_at_ratio(RATIO)
    poles = benchmark(find_closed_loop_poles, pll)
    assert len(poles) == 3
    assert all(p.residual < 1e-9 for p in poles)


@pytest.mark.benchmark(group="extension-validation")
def test_floquet_map(benchmark, loop_at_ratio):
    pll = loop_at_ratio(RATIO)
    result = benchmark(floquet_multipliers, pll)
    assert result.is_stable


@pytest.mark.benchmark(group="extension-validation")
def test_symbolic_build_and_eval(benchmark, loop_at_ratio, reference_omega0):
    pll = loop_at_ratio(RATIO)

    def build_and_eval():
        expr = effective_gain_expression(pll)
        return expr.evaluate({"s": 1j * 0.1 * reference_omega0})

    value = benchmark(build_and_eval)
    assert np.isfinite(value)
