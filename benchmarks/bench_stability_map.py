"""Extension bench: the stability map over the design plane.

Not a paper figure — the design chart the paper's analysis motivates
(Gardner-style limits from the z-domain baseline).  Timed because each
boundary point is a bisection over full loop designs.
"""

import numpy as np
import pytest

from repro.experiments.stability_map import run_stability_map


@pytest.mark.benchmark(group="extension-stability-map")
def test_stability_map(benchmark):
    result = benchmark(run_stability_map, separations=(2.0, 4.0, 8.0), tol=3e-3)
    assert np.all((result.stability_limits > 0.2) & (result.stability_limits < 0.35))
