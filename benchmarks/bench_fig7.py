"""Bench for paper Fig. 7: effective unity-gain frequency and phase margin.

Regenerates the sweep over omega_UG/omega_0 and asserts the paper's story:
bandwidth extension grows above 1, effective phase margin collapses below
the (horizontal) LTI prediction, ~9-11% degradation at ratio 0.1.
"""

import numpy as np
import pytest

from repro.experiments.fig7 import run_fig7


@pytest.mark.benchmark(group="fig7")
def test_fig7_sweep(benchmark):
    result = benchmark(run_fig7, ratio_min=0.01, ratio_max=0.26, points=10)
    pm = result.phase_margin_eff_deg
    ext = result.bandwidth_extension
    assert np.all(np.diff(pm) < 0)
    assert np.all(np.diff(ext) > 0)
    assert pm[0] == pytest.approx(result.phase_margin_lti_deg, abs=1.0)
    assert pm[-1] < 25.0
    assert ext[-1] > 1.3
    # Claim C3.
    assert 0.06 < result.degradation_at(0.1) < 0.15
    # Independent z-domain boundary agrees with the margin collapse point.
    assert 0.25 < result.stability_limit < 0.31


@pytest.mark.benchmark(group="fig7")
def test_fig7_single_margin_point(benchmark, loop_at_ratio):
    """One compare_margins evaluation — the unit of the Fig. 7 sweep."""
    from repro.pll.margins import compare_margins

    pll = loop_at_ratio(0.1)
    margins = benchmark(compare_margins, pll)
    assert margins.phase_margin_eff_deg < margins.phase_margin_lti_deg
