"""Bench for claim C1: HTM within 2% of the time-marching simulation."""

import pytest

from repro.experiments.accuracy import run_accuracy_claim


@pytest.mark.benchmark(group="claims")
def test_accuracy_claim(benchmark):
    result = benchmark(
        run_accuracy_claim,
        ratios=(0.05, 0.1, 0.2),
        omega_normalized=(0.3, 1.0, 2.0),
        measure_cycles=150,
        discard_cycles=100,
    )
    assert result.within_paper_claim(0.02)
    # Our exact-integration simulator agrees far tighter than the paper's 2%.
    assert result.max_relative_error < 0.01
