"""Bench for paper Fig. 5: the typical open-loop characteristic A(j omega).

Regenerates the Bode magnitude/phase data and checks the defining features:
unity gain at omega_UG, -40 dB/dec asymptotes, phase margin ~62 degrees for
the separation-4 zero/pole placement.
"""

import numpy as np
import pytest

from repro.experiments.fig5 import run_fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5_characteristic(benchmark):
    result = benchmark(run_fig5, separation=4.0, points=200)
    assert result.unity_gain_check == pytest.approx(1.0, rel=1e-6)
    assert result.phase_margin_deg == pytest.approx(61.93, abs=0.05)
    # -40 dB/dec two decades out on both sides.
    assert result.magnitude_db[0] == pytest.approx(68.0, abs=1.0)
    assert result.magnitude_db[-1] == pytest.approx(-68.0, abs=1.0)
    # Phase returns toward -180 on both ends and peaks at the crossover.
    assert result.phase_deg[0] < -175.0
    assert np.max(result.phase_deg) == pytest.approx(-118.07, abs=0.2)


@pytest.mark.benchmark(group="fig5")
def test_fig5_wide_separation(benchmark):
    """Larger zero/pole separation buys more LTI phase margin."""
    result = benchmark(run_fig5, separation=8.0, points=200)
    assert result.phase_margin_deg == pytest.approx(75.75, abs=0.1)
