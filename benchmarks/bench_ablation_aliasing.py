"""Ablation A1: closed-form coth aliasing sum vs symmetric truncation.

Design question (DESIGN.md): is the partial-fraction + coth machinery worth
it over just truncating ``sum_m A(s + j m w0)``?  Answer: the truncated sum
needs thousands of terms to reach 1e-4 absolute accuracy (O(1/M) tail) while
the closed form is exact and ~100x faster at that accuracy.
"""

import numpy as np
import pytest

from repro.core.aliasing import AliasedSum, truncated_alias_sum
from repro.pll.openloop import lti_open_loop

RATIO = 0.1


@pytest.fixture(scope="module")
def loop_gain(loop_at_ratio):
    return lti_open_loop(loop_at_ratio(RATIO)).rational


@pytest.fixture(scope="module")
def eval_grid(reference_omega0):
    return 1j * np.linspace(0.03, 0.45, 40) * reference_omega0


@pytest.mark.benchmark(group="ablation-aliasing")
def test_closed_form(benchmark, loop_gain, eval_grid, reference_omega0):
    alias = AliasedSum.of(loop_gain, reference_omega0)
    values = benchmark(alias, eval_grid)
    assert np.all(np.isfinite(values))


@pytest.mark.benchmark(group="ablation-aliasing")
@pytest.mark.parametrize("harmonics", [32, 256, 2048])
def test_truncated(benchmark, loop_gain, eval_grid, reference_omega0, harmonics):
    values = benchmark(
        truncated_alias_sum, loop_gain, eval_grid, reference_omega0, harmonics
    )
    assert np.all(np.isfinite(values))


def test_truncation_accuracy_ladder(loop_gain, eval_grid, reference_omega0):
    """Accuracy side of the trade-off: error vs closed form halves per
    doubling of M (O(1/M) tail), never reaching the closed form."""
    alias = AliasedSum.of(loop_gain, reference_omega0)
    exact = alias(eval_grid)
    scale = float(np.max(np.abs(exact)))
    errors = {}
    for harmonics in (32, 128, 512, 2048):
        approx = truncated_alias_sum(loop_gain, eval_grid, reference_omega0, harmonics)
        errors[harmonics] = float(np.max(np.abs(approx - exact))) / scale
    assert errors[128] < errors[32]
    assert errors[512] < errors[128]
    assert errors[2048] < errors[512]
    assert errors[2048] > 1e-9  # truncation never attains the closed form
