"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table/figure/claim of the paper (see
DESIGN.md section 3) and asserts the reproduced *shape* while
pytest-benchmark records the runtime.
"""

import numpy as np
import pytest

from repro.pll.design import design_typical_loop

W0 = 2 * np.pi


@pytest.fixture(scope="session")
def reference_omega0():
    """Normalised reference frequency used across all benches."""
    return W0


@pytest.fixture(scope="session")
def loop_at_ratio():
    """Factory: PLL designed at a given w_UG / w0 ratio."""

    def factory(ratio: float, separation: float = 4.0):
        return design_typical_loop(
            omega0=W0, omega_ug=ratio * W0, separation=separation
        )

    return factory
