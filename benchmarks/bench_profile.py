"""Sampling-profiler overhead — the "cheap when on" regression gate.

The profiler's design bound is **< 5% overhead at the default 97 Hz**:
a SIGPROF tick costs one walk of ``sys._current_frames()`` plus a dict
update, ~10 µs, and at 97 Hz that is under 0.1% of a CPU-bound second —
the 5% gate leaves room for single-core CI runners where the sampler's
bookkeeping competes with the measured work.

The measured workload is the same serial campaign as
``bench_obs_overhead``'s live-telemetry gate (obs enabled, realistic
numerics per point, ~100 ms per run — comfortably above the comparison
noise floor), timed two ways:

* ``obs`` — observability on, no profiler (the comparison baseline);
* ``profiled`` — identical run with the process profiler sampling at
  97 Hz in signal mode (CPU clock), the exact ``--profile`` code path.

Interleaved best-of-N with the retry-before-fail discipline of the other
overhead gates.  Run with ``PYTHONPATH=src python
benchmarks/bench_profile.py``; ``--smoke`` shrinks the campaign for CI,
``--json-out FILE`` appends the ``kind: "bench_profile"`` result line.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.memo import grid_cache
from repro.obs import profile as obs_profile
from repro.obs import spans as obs

try:  # package import under pytest, flat import as a script
    from benchmarks.bench_obs_overhead import _campaign_spec, _timed_campaign
except ImportError:
    from bench_obs_overhead import _campaign_spec, _timed_campaign

CAMPAIGN_POINTS = 40
REPEATS = 5
ATTEMPTS = 3  # re-measure before declaring a regression (noise gate)
PROFILE_HZ = 97
PROFILE_OVERHEAD_BOUND = 0.05  # the ISSUE acceptance bound: < 5% at 97 Hz


@dataclass(frozen=True)
class ProfileOverheadResult:
    """Serial campaign timings with the sampler off vs on at ``hz``."""

    points: int
    repeats: int
    hz: int
    obs_seconds: float
    profiled_seconds: float
    samples: int

    @property
    def profile_overhead(self) -> float:
        """Relative cost of 97 Hz sampling over an obs-only campaign."""
        return self.profiled_seconds / self.obs_seconds - 1.0

    def summary(self) -> str:
        return (
            f"profiler overhead ({self.points} campaign points, best of "
            f"{self.repeats}): obs-only {self.obs_seconds * 1e3:.1f} ms, "
            f"obs+profiler@{self.hz}Hz {self.profiled_seconds * 1e3:.1f} ms "
            f"({100 * self.profile_overhead:+.2f}%), "
            f"{self.samples} samples in the last profiled run"
        )

    def json_line(self) -> str:
        return json.dumps(
            {
                "kind": "bench_profile",
                "points": self.points,
                "repeats": self.repeats,
                "hz": self.hz,
                "obs_seconds": round(self.obs_seconds, 6),
                "profiled_seconds": round(self.profiled_seconds, 6),
                "profile_overhead": round(self.profile_overhead, 4),
                "samples": self.samples,
            },
            sort_keys=True,
        )


def measure(
    points: int = CAMPAIGN_POINTS, repeats: int = REPEATS, hz: int = PROFILE_HZ
) -> ProfileOverheadResult:
    """Time serial campaigns with and without the 97 Hz sampler.

    The profiler is started and stopped around each profiled run — the
    lifecycle a ``--profile`` campaign pays — but no sink is configured,
    so the delta isolates sampling itself (shard flushes are one atomic
    write per second, already covered by the stream gate).  Interleaved
    best-of-N, same discipline as ``bench_obs_overhead.measure``.
    """
    spec = _campaign_spec(points)
    was_enabled = obs.enabled()
    t_obs = float("inf")
    t_profiled = float("inf")
    samples = 0
    try:
        obs.enable()
        for _ in range(repeats):
            with tempfile.TemporaryDirectory() as tmp:
                t_obs = min(t_obs, _timed_campaign(spec, Path(tmp)))
            with tempfile.TemporaryDirectory() as tmp:
                profiler = obs_profile.start(hz=hz)
                try:
                    t_profiled = min(
                        t_profiled, _timed_campaign(spec, Path(tmp))
                    )
                finally:
                    final = obs_profile.stop()
                samples = int(final.get("samples", profiler.samples))
    finally:
        obs_profile.stop()
        (obs.enable if was_enabled else obs.disable)()
        obs.reset()
        grid_cache.clear()
    return ProfileOverheadResult(
        points=points,
        repeats=repeats,
        hz=hz,
        obs_seconds=t_obs,
        profiled_seconds=t_profiled,
        samples=samples,
    )


def measure_gated(
    points: int = CAMPAIGN_POINTS,
    repeats: int = REPEATS,
    hz: int = PROFILE_HZ,
    attempts: int = ATTEMPTS,
) -> ProfileOverheadResult:
    """Measure up to ``attempts`` times; return the first in-bound result.

    A 97 Hz sampler cannot cost 5% of a numerics-bound campaign — an
    out-of-bound sample means a loaded runner, not a regression.  A real
    regression fails every attempt; the last result is returned if none
    passes.
    """
    result = measure(points, repeats, hz)
    for _ in range(attempts - 1):
        if result.profile_overhead < PROFILE_OVERHEAD_BOUND:
            break
        result = measure(points, repeats, hz)
    return result


# -- pytest entry point -----------------------------------------------------------


def test_profiler_overhead_under_five_percent():
    """The acceptance bound: sampling at 97 Hz costs < 5% of the work."""
    result = measure_gated(points=20, repeats=3)
    assert result.profile_overhead < PROFILE_OVERHEAD_BOUND, result.summary()
    assert result.samples > 0, "the profiled run must actually sample"


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI-sized run (20 points, 3 repeats); the <5%% bound is "
        "still asserted",
    )
    parser.add_argument(
        "--json-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="append the machine-readable JSON result line to FILE",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        result = measure_gated(points=20, repeats=3)
    else:
        result = measure_gated()
    print(result.summary())
    print(result.json_line())
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        with args.json_out.open("a") as fh:
            fh.write(result.json_line() + "\n")
    if result.profile_overhead >= PROFILE_OVERHEAD_BOUND:
        raise SystemExit(
            f"profiler overhead {100 * result.profile_overhead:.2f}% "
            f">= {100 * PROFILE_OVERHEAD_BOUND:.0f}% bound at {result.hz} Hz"
        )


if __name__ == "__main__":
    main()
