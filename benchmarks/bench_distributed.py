"""Distributed campaign throughput — lease-worker scaling and vectorization.

Two independent measurements of the multi-host execution stack:

* **Worker scaling** — the same campaign run by 1 vs N elastic lease
  workers sharing one store.  The workers here are in-process threads
  (each with an explicit worker id, so they get private shards exactly
  like separate hosts would) over a sleep-bound task, so the ratio
  isolates what the bench is about: the *coordination cost* of the lease
  protocol — claims, renewals, done markers, merged-record refreshes —
  not process startup or GIL contention.  N workers over ideally
  parallel work should approach Nx; the gate catches the protocol
  getting chattier.
* **Vectorization** — one stacked batch evaluation of the ``margins``
  adapter vs the same points through the scalar adapter.  The batch path
  shares response samples across the stacked design axis (the scalar
  path evaluates each response twice); outputs are asserted bitwise
  identical, so this gate catches the fast path silently degrading to
  scalar.

``main()`` prints a human summary plus one machine-readable JSON line
(``kind: "bench_distributed"``) for harness scraping.  Run with
``PYTHONPATH=src python benchmarks/bench_distributed.py [--smoke]``.
"""

from __future__ import annotations

import argparse
import json
import math
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.campaign import CampaignSpec, GridSpace, ResultStore
from repro.campaign.lease import run_worker
from repro.campaign.tasks import get_batch_task, get_task

WORKERS = 4
POINTS = 120
MIN_SECONDS = 0.02
VEC_DESIGNS = 24


@dataclass(frozen=True)
class DistributedBenchResult:
    """Lease-worker scaling plus vectorized-batch speedup."""

    points: int
    workers: int
    one_worker_seconds: float
    multi_worker_seconds: float
    vec_designs: int
    scalar_seconds: float
    vectorized_seconds: float
    identical: bool
    duplicates: int

    @property
    def worker_speedup(self) -> float:
        return self.one_worker_seconds / self.multi_worker_seconds

    @property
    def vectorize_speedup(self) -> float:
        return self.scalar_seconds / self.vectorized_seconds

    def summary(self) -> str:
        return (
            f"lease workers ({self.points} points): "
            f"1 worker {self.one_worker_seconds:.2f} s, "
            f"{self.workers} workers {self.multi_worker_seconds:.2f} s "
            f"-> {self.worker_speedup:.2f}x, {self.duplicates} duplicate(s); "
            f"vectorized margins ({self.vec_designs} designs): "
            f"scalar {self.scalar_seconds:.3f} s, "
            f"batch {self.vectorized_seconds:.3f} s "
            f"-> {self.vectorize_speedup:.2f}x, identical={self.identical}"
        )

    def json_line(self) -> str:
        return json.dumps(
            {
                "kind": "bench_distributed",
                "points": self.points,
                "workers": self.workers,
                "one_worker_seconds": round(self.one_worker_seconds, 4),
                "multi_worker_seconds": round(self.multi_worker_seconds, 4),
                "worker_speedup": round(self.worker_speedup, 3),
                "vec_designs": self.vec_designs,
                "scalar_seconds": round(self.scalar_seconds, 4),
                "vectorized_seconds": round(self.vectorized_seconds, 4),
                "vectorize_speedup": round(self.vectorize_speedup, 3),
                "identical": self.identical,
                "duplicates": self.duplicates,
            },
            sort_keys=True,
        )


def _campaign_spec(points: int, min_seconds: float) -> CampaignSpec:
    ratios = [round(0.02 + 0.002 * i, 4) for i in range(points // 4)]
    return CampaignSpec.create(
        name="bench-distributed",
        space=GridSpace.of(ratio=ratios, separation=[3.0, 4.0, 5.0, 6.0]),
        task="design_summary",
        defaults={"min_seconds": min_seconds},
    )


def _run_workers(spec: CampaignSpec, n: int, tmp: Path) -> tuple[float, int]:
    """Wall time for n threaded lease workers to cover the campaign."""
    store_path = tmp / f"bench-{n}.jsonl"
    ResultStore.create(store_path, spec)
    reports = []

    def entry(i: int) -> None:
        reports.append(
            run_worker(
                store_path,
                worker=f"bench-w{i}",
                batch_size=8,
                heartbeat_interval=None,
                max_idle=5.0,
                # Tight re-check cadence: the default (ttl/5) is tuned for
                # long-lived cluster workers, not a sub-second bench where
                # the tail worker would idle a full poll period.
                poll_interval=0.02,
            )
        )

    start = time.perf_counter()
    threads = [
        threading.Thread(target=entry, args=(i,), daemon=True)
        for i in range(n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start

    store = ResultStore.open(store_path)
    records = store.merged_point_records()
    assert len(records) == len(spec), "lease workers lost points"
    assert all(r["status"] == "ok" for r in records)
    counts = store.terminal_record_counts()
    duplicates = sum(v - 1 for v in counts.values())
    assert duplicates == 0, f"{duplicates} duplicate terminal record(s)"
    return elapsed, sum(r.duplicates for r in reports)


def _identical(scalar: dict, batch: dict) -> bool:
    if scalar.keys() != batch.keys():
        return False
    for key, a in scalar.items():
        b = batch[key]
        if not (a == b or (math.isnan(a) and math.isnan(b))):
            return False
    return True


def _measure_vectorize(designs: int) -> tuple[float, float, bool]:
    """Scalar-vs-stacked ``margins`` evaluation over one design axis."""
    params = [
        {"ratio": 0.03 + 0.25 * i / designs, "separation": 4.0}
        for i in range(designs)
    ]
    scalar_fn = get_task("margins")
    batch_fn = get_batch_task("margins")

    start = time.perf_counter()
    scalar_out = [scalar_fn(dict(p)) for p in params]
    t_scalar = time.perf_counter() - start

    start = time.perf_counter()
    batch_out = batch_fn([dict(p) for p in params])
    t_batch = time.perf_counter() - start

    identical = all(
        not isinstance(b, Exception)
        and _identical(
            {k: float(v) for k, v in a.items()},
            {k: float(v) for k, v in b.items()},
        )
        for a, b in zip(scalar_out, batch_out)
    )
    return t_scalar, t_batch, identical


def measure(
    points: int = POINTS,
    workers: int = WORKERS,
    min_seconds: float = MIN_SECONDS,
    vec_designs: int = VEC_DESIGNS,
) -> DistributedBenchResult:
    spec = _campaign_spec(points, min_seconds)
    with TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        t_one, _ = _run_workers(spec, 1, tmp)
        t_multi, duplicates = _run_workers(spec, workers, tmp)
    t_scalar, t_batch, identical = _measure_vectorize(vec_designs)
    return DistributedBenchResult(
        points=len(spec),
        workers=workers,
        one_worker_seconds=t_one,
        multi_worker_seconds=t_multi,
        vec_designs=vec_designs,
        scalar_seconds=t_scalar,
        vectorized_seconds=t_batch,
        identical=identical,
        duplicates=duplicates,
    )


# -- pytest entry points ---------------------------------------------------------


def test_workers_scale_and_vectorization_matches():
    """Identity always; the scaling targets on the full-size run."""
    result = measure()
    assert result.identical, result.summary()
    assert result.duplicates == 0, result.summary()
    assert result.worker_speedup >= 2.0, result.summary()
    assert result.vectorize_speedup >= 1.2, result.summary()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI-sized run (40 points, 2 workers, 8 designs) — "
        "exercises the full protocol without asserting scaling targets",
    )
    parser.add_argument(
        "--json-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="append the machine-readable JSON result line to FILE",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        result = measure(points=40, workers=2, min_seconds=0.02, vec_designs=8)
    else:
        result = measure()
    print(result.summary())
    print(result.json_line())
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        with args.json_out.open("a") as fh:
            fh.write(result.json_line() + "\n")


if __name__ == "__main__":
    main()
