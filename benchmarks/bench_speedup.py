"""Bench for claim C2: HTM evaluation in seconds vs minutes of simulation.

Two benchmarks over the same 6-point frequency sweep; compare their recorded
means to read off the speedup factor (paper: "a matter of seconds" vs
"several minutes" — we assert at least an order of magnitude).
"""

import numpy as np
import pytest

from repro.pll.closedloop import ClosedLoopHTM
from repro.simulator.transfer_extraction import measure_closed_loop_transfer

RATIO = 0.1
POINTS = 6


def _omegas(pll):
    return np.logspace(np.log10(0.1), np.log10(2.0), POINTS) * RATIO * pll.omega0


@pytest.mark.benchmark(group="speedup")
def test_htm_path(benchmark, loop_at_ratio):
    pll = loop_at_ratio(RATIO)
    omegas = _omegas(pll)

    def htm_sweep():
        closed = ClosedLoopHTM(pll)
        return closed.frequency_response(omegas)

    response = benchmark(htm_sweep)
    assert np.all(np.isfinite(response))


@pytest.mark.benchmark(group="speedup")
def test_simulation_path(benchmark, loop_at_ratio):
    pll = loop_at_ratio(RATIO)
    omegas = _omegas(pll)

    def simulation_sweep():
        return [
            measure_closed_loop_transfer(
                pll, float(w), measure_cycles=150, discard_cycles=100
            ).response
            for w in omegas
        ]

    responses = benchmark(simulation_sweep)
    assert len(responses) == POINTS


@pytest.mark.benchmark(group="speedup")
def test_speedup_factor(benchmark):
    """Direct claim check with wall-clock timing inside one benchmark run."""
    from repro.experiments.accuracy import run_speedup_claim

    result = benchmark(
        run_speedup_claim, frequency_points=5, measure_cycles=120, discard_cycles=80
    )
    assert result.speedup > 10.0
