"""Disabled-observability overhead — the "free when off" regression gate.

The obs layer promises that instrumentation costs nothing measurable when
disabled (no ``REPRO_OBS=1``): every call site guards on one module-global
bool, and ``obs.span`` returns a shared no-op singleton.  This bench pins
that promise to a number.

It times a cold ``dense_grid`` sweep of the brute-force closed-loop
operator two ways:

* ``baseline`` — the pre-instrumentation body of ``dense_grid`` inlined
  (validate, then ``grid_cache.fetch``), bypassing the obs guard entirely;
* ``instrumented`` — the public ``dense_grid`` method with obs disabled,
  i.e. the exact code every caller runs by default.

Both paths clear the grid cache outside the timed region, so each sample
measures one full evaluation.  With best-of-``repeats`` timing the
disabled-path overhead must stay under **2%** (the ISSUE acceptance bound);
in practice it is one bool read against milliseconds of numerics, far below
timer noise.  An enabled-path timing is reported for context but not
asserted — spans are allowed to cost what they cost.

Run with ``PYTHONPATH=src python benchmarks/bench_obs_overhead.py`` (or
through pytest); ``--smoke`` shrinks the grid for CI, ``--json-out FILE``
appends the machine-readable result line (``kind: "bench_obs_overhead"``).
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro._validation import check_order
from repro.campaign import CampaignSpec, ListSpace, run_campaign
from repro.core.grid import FrequencyGrid, as_s_grid
from repro.core.memo import grid_cache
from repro.core.operators import HarmonicOperator
from repro.obs import spans as obs

try:  # package import under pytest, flat import as a script
    from benchmarks.bench_grid_eval import closed_loop_operator
except ImportError:
    from bench_grid_eval import closed_loop_operator

POINTS = 200
ORDER = 8
REPEATS = 25
ATTEMPTS = 3  # re-measure before declaring a regression (noise gate)
OVERHEAD_BOUND = 0.02  # the ISSUE acceptance bound: < 2% when disabled

CAMPAIGN_POINTS = 40
CAMPAIGN_REPEATS = 5
LIVE_OVERHEAD_BOUND = 0.05  # heartbeats + streaming vs obs-only: < 5%


def baseline_eval(op: HarmonicOperator, s, order: int) -> np.ndarray:
    """The pre-instrumentation ``dense_grid`` body: validate + fetch."""
    s_arr = as_s_grid("s", s)
    order = check_order("order", order, minimum=0)
    return grid_cache.fetch(op, s_arr, order, op._dense_grid)


@dataclass(frozen=True)
class ObsOverheadResult:
    """Cold-evaluation timings with instrumentation off/absent/on."""

    points: int
    order: int
    repeats: int
    baseline_seconds: float
    disabled_seconds: float
    enabled_seconds: float

    @property
    def disabled_overhead(self) -> float:
        """Relative cost of the disabled obs guard vs no guard at all."""
        return self.disabled_seconds / self.baseline_seconds - 1.0

    @property
    def enabled_overhead(self) -> float:
        return self.enabled_seconds / self.baseline_seconds - 1.0

    def summary(self) -> str:
        return (
            f"obs overhead ({self.points} points, order {self.order}, "
            f"best of {self.repeats}): baseline "
            f"{self.baseline_seconds * 1e3:.2f} ms, disabled "
            f"{self.disabled_seconds * 1e3:.2f} ms "
            f"({100 * self.disabled_overhead:+.2f}%), enabled "
            f"{self.enabled_seconds * 1e3:.2f} ms "
            f"({100 * self.enabled_overhead:+.2f}%)"
        )

    def json_line(self) -> str:
        return json.dumps(
            {
                "kind": "bench_obs_overhead",
                "points": self.points,
                "order": self.order,
                "repeats": self.repeats,
                "baseline_seconds": round(self.baseline_seconds, 6),
                "disabled_seconds": round(self.disabled_seconds, 6),
                "enabled_seconds": round(self.enabled_seconds, 6),
                "disabled_overhead": round(self.disabled_overhead, 4),
                "enabled_overhead": round(self.enabled_overhead, 4),
            },
            sort_keys=True,
        )


def _best_cold(fn, repeats: int) -> float:
    """Best-of-``repeats`` cold timing; cache cleared outside the clock."""
    best = float("inf")
    for _ in range(repeats):
        grid_cache.clear()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(
    points: int = POINTS, order: int = ORDER, repeats: int = REPEATS
) -> ObsOverheadResult:
    """Time baseline / disabled / enabled cold sweeps of one operator."""
    op, omega0 = closed_loop_operator()
    s_arr = FrequencyGrid.baseband(omega0, points=points).s

    was_enabled = obs.enabled()
    try:
        obs.disable()
        # Interleave baseline/disabled samples so clock drift and thermal
        # throttling hit both variants alike; best-of-N then discards
        # warm-up and scheduler outliers.
        t_baseline = float("inf")
        t_disabled = float("inf")
        for _ in range(repeats):
            t_baseline = min(
                t_baseline,
                _best_cold(lambda: baseline_eval(op, s_arr, order), 1),
            )
            t_disabled = min(
                t_disabled,
                _best_cold(lambda: op.dense_grid(s_arr, order), 1),
            )
        obs.enable()
        t_enabled = _best_cold(lambda: op.dense_grid(s_arr, order), repeats)
    finally:
        (obs.enable if was_enabled else obs.disable)()
        obs.reset()
        grid_cache.clear()
    return ObsOverheadResult(
        points=points,
        order=order,
        repeats=repeats,
        baseline_seconds=t_baseline,
        disabled_seconds=t_disabled,
        enabled_seconds=t_enabled,
    )


def measure_gated(
    points: int = POINTS,
    order: int = ORDER,
    repeats: int = REPEATS,
    attempts: int = ATTEMPTS,
) -> ObsOverheadResult:
    """Measure up to ``attempts`` times; return the first in-bound result.

    A single bool read cannot cost 2% of milliseconds of numerics — an
    out-of-bound sample means the machine was busy, not that the code
    regressed.  Retrying before failing keeps the gate meaningful on
    loaded single-core CI runners; a *real* regression fails every
    attempt.  The last (worst) result is returned if none passes.
    """
    result = measure(points, order, repeats)
    for _ in range(attempts - 1):
        if result.disabled_overhead < OVERHEAD_BOUND:
            break
        result = measure(points, order, repeats)
    return result


# -- live-telemetry overhead (heartbeats + streaming metrics) --------------------


def _campaign_task(params):
    """A realistically numeric (but quick) campaign point."""
    op, omega0 = _campaign_task.op
    s_arr = FrequencyGrid.baseband(omega0 * params["scale"], points=120).s
    grid = op.dense_grid(s_arr, 6)
    return {"peak": float(np.abs(grid).max())}


_campaign_task.op = None  # populated lazily so import stays cheap


@dataclass(frozen=True)
class LiveOverheadResult:
    """Serial campaign timings with obs-only vs full live telemetry."""

    points: int
    repeats: int
    campaign_obs_seconds: float
    campaign_live_seconds: float

    @property
    def live_overhead(self) -> float:
        """Relative cost of heartbeats + streaming over plain obs."""
        return self.campaign_live_seconds / self.campaign_obs_seconds - 1.0

    def summary(self) -> str:
        return (
            f"live telemetry overhead ({self.points} campaign points, best "
            f"of {self.repeats}): obs-only "
            f"{self.campaign_obs_seconds * 1e3:.1f} ms, "
            f"obs+heartbeats+stream {self.campaign_live_seconds * 1e3:.1f} ms "
            f"({100 * self.live_overhead:+.2f}%)"
        )

    def json_line(self) -> str:
        return json.dumps(
            {
                "kind": "bench_obs_stream",
                "points": self.points,
                "repeats": self.repeats,
                "campaign_obs_seconds": round(self.campaign_obs_seconds, 6),
                "campaign_live_seconds": round(self.campaign_live_seconds, 6),
                "live_overhead": round(self.live_overhead, 4),
            },
            sort_keys=True,
        )


def _campaign_spec(points: int) -> CampaignSpec:
    if _campaign_task.op is None:
        _campaign_task.op = closed_loop_operator()
    return CampaignSpec.create(
        name="bench-live",
        space=ListSpace.of(
            [{"scale": 1.0 + 0.01 * i} for i in range(points)]
        ),
        task=_campaign_task,
    )


def _timed_campaign(
    spec: CampaignSpec, root: Path, heartbeat_interval=None, **kwargs
) -> float:
    store = root / "run.jsonl"
    grid_cache.clear()
    start = time.perf_counter()
    run_campaign(spec, store, heartbeat_interval=heartbeat_interval, **kwargs)
    return time.perf_counter() - start


def measure_live(
    points: int = CAMPAIGN_POINTS, repeats: int = CAMPAIGN_REPEATS
) -> LiveOverheadResult:
    """Time serial campaigns: obs enabled vs obs + heartbeats + stream.

    Both variants write the run manifest and fold per-point memory probes —
    the delta isolates exactly what ``heartbeat_interval`` + streaming add:
    two emitter daemon threads and their atomic side-channel writes.
    Interleaved best-of-N, same discipline as :func:`measure`.
    """
    spec = _campaign_spec(points)
    was_enabled = obs.enabled()
    t_obs = float("inf")
    t_live = float("inf")
    try:
        obs.enable()
        for _ in range(repeats):
            with tempfile.TemporaryDirectory() as tmp:
                t_obs = min(t_obs, _timed_campaign(spec, Path(tmp)))
            with tempfile.TemporaryDirectory() as tmp:
                root = Path(tmp)
                t_live = min(
                    t_live,
                    _timed_campaign(
                        spec,
                        root,
                        heartbeat_interval=0.2,
                        stream_path=root / "run.jsonl.stream.jsonl",
                        stream_interval=0.2,
                    ),
                )
    finally:
        (obs.enable if was_enabled else obs.disable)()
        obs.reset()
        grid_cache.clear()
    return LiveOverheadResult(
        points=points,
        repeats=repeats,
        campaign_obs_seconds=t_obs,
        campaign_live_seconds=t_live,
    )


def measure_live_gated(
    points: int = CAMPAIGN_POINTS,
    repeats: int = CAMPAIGN_REPEATS,
    attempts: int = ATTEMPTS,
) -> LiveOverheadResult:
    """Same retry-before-fail discipline as :func:`measure_gated`."""
    result = measure_live(points, repeats)
    for _ in range(attempts - 1):
        if result.live_overhead < LIVE_OVERHEAD_BOUND:
            break
        result = measure_live(points, repeats)
    return result


# -- pytest entry points ---------------------------------------------------------


def test_disabled_overhead_under_two_percent():
    """The acceptance bound: instrumentation is free when off."""
    result = measure_gated()
    assert result.disabled_overhead < OVERHEAD_BOUND, result.summary()


def test_live_telemetry_overhead_under_five_percent():
    """Heartbeats + streaming must stay under 5% of an obs-only campaign."""
    result = measure_live_gated(points=20, repeats=3)
    assert result.live_overhead < LIVE_OVERHEAD_BOUND, result.summary()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI-sized run (40 points, order 4, 10 repeats); the <2%% "
        "bound is still asserted",
    )
    parser.add_argument(
        "--json-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="append the machine-readable JSON result line to FILE",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        result = measure_gated(points=40, order=4, repeats=10)
        live = measure_live_gated(points=20, repeats=3)
    else:
        result = measure_gated()
        live = measure_live_gated()
    for item in (result, live):
        print(item.summary())
        print(item.json_line())
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        with args.json_out.open("a") as fh:
            fh.write(result.json_line() + "\n")
            fh.write(live.json_line() + "\n")
    if result.disabled_overhead >= OVERHEAD_BOUND:
        raise SystemExit(
            f"disabled obs overhead {100 * result.disabled_overhead:.2f}% "
            f">= {100 * OVERHEAD_BOUND:.0f}% bound"
        )
    if live.live_overhead >= LIVE_OVERHEAD_BOUND:
        raise SystemExit(
            f"live telemetry overhead {100 * live.live_overhead:.2f}% "
            f">= {100 * LIVE_OVERHEAD_BOUND:.0f}% bound"
        )


if __name__ == "__main__":
    main()
